"""Result cache: in-memory LRU over an optional disk layer.

Keyed by the job digest (a SHA-256 over the canonicalized submit
payload, see :func:`repro.service.jobs.payload_digest`), so a repeat
``submit`` of an unchanged benchmark/config is answered without running
the pipeline at all.  The disk layer lives beside the parse cache under
``.repro_cache/results/`` and stores plain JSON — results are JSON-safe
dicts by construction (they crossed the process-pool boundary), and JSON
keeps a daemon restart cheap without pickle's trust/compat hazards.

Robust against concurrent writers the same way the parse cache is:
atomic ``tmp + os.replace`` writes, and corrupt/truncated entries are
evicted and treated as misses rather than crashing the server.

The disk tier is *bounded*: when the entries under ``directory`` exceed
``max_bytes`` (default from ``REPRO_CACHE_MAX_BYTES``; unset = 256 MiB,
``0`` = unlimited), the oldest entries (by mtime, ties broken by path
so eviction order is deterministic) are removed until the tier fits
again, and :meth:`ResultCache.sweep` deletes corrupt or truncated
entries wholesale at daemon startup.  The tier's byte total is kept as
a running count (one scan at construction, per-store deltas after
that), so a store within budget never rescans the directory; the full
scan happens only inside an actual eviction, where it doubles as
self-healing against external writers.  Both paths are counted in the
obs registry (``repro_result_cache_evictions_total``,
``repro_result_cache_swept_total``, ``repro_result_cache_disk_bytes``).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.obs import metrics as obs_metrics

DEFAULT_CAPACITY = 128

#: environment knob bounding the on-disk tier (bytes; 0 = unlimited)
MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def resolve_max_bytes(max_bytes: Optional[int] = None) -> int:
    """Disk budget: argument > ``REPRO_CACHE_MAX_BYTES`` > 256 MiB."""
    if max_bytes is not None:
        return max(0, int(max_bytes))
    raw = os.environ.get(MAX_BYTES_ENV, "").strip()
    if not raw:
        return DEFAULT_MAX_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        raise ValueError(f"{MAX_BYTES_ENV}={raw!r} is not an integer "
                         f"byte count (0 disables the bound)") from None


class ResultCache:
    """Thread-safe LRU of job results, with optional disk persistence."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 directory: Optional[str] = None,
                 max_bytes: Optional[int] = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.directory = directory
        self.max_bytes = resolve_max_bytes(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict]" = OrderedDict()
        self._hits = 0        # served from memory
        self._disk_hits = 0   # served by loading the disk layer
        self._misses = 0
        self._evictions = 0   # disk entries removed by the size bound
        self._m_evicted = obs_metrics.counter(
            "repro_result_cache_evictions_total",
            "disk result-cache entries removed by the size bound")
        self._m_swept = obs_metrics.counter(
            "repro_result_cache_swept_total",
            "corrupt disk result-cache entries removed by sweep()")
        self._m_disk_bytes = obs_metrics.gauge(
            "repro_result_cache_disk_bytes",
            "bytes used by the on-disk result-cache tier")
        # running disk-tier byte total; guarded by its own lock so disk
        # accounting never nests inside _lock the other way around
        # (order is always _lock -> _disk_lock)
        self._disk_lock = threading.Lock()
        self._disk_bytes = self._scan_disk_bytes()
        self._m_disk_bytes.set(self._disk_bytes)

    # -- disk layer --------------------------------------------------

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.json")

    def _load_disk(self, digest: str) -> Optional[Dict]:
        if not self.directory:
            return None
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            # corrupt/truncated: evict, treat as miss
            size = self._entry_size(path)
            try:
                os.remove(path)
                self._account(-size)
            except OSError:
                pass
            return None
        return entry if isinstance(entry, dict) else None

    def _store_disk(self, digest: str, result: Dict) -> None:
        if not self.directory:
            return
        path = self._path(digest)
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(result, fh, sort_keys=True)
            before = self._entry_size(path)
            os.replace(tmp, path)
            self._account(self._entry_size(path) - before)
            if self.max_bytes and self._disk_bytes > self.max_bytes:
                self._evict_disk()
        except Exception:
            pass  # best-effort: memory layer still serves this process

    @staticmethod
    def _entry_size(path: str) -> int:
        try:
            return os.stat(path).st_size
        except OSError:
            return 0

    def _account(self, delta: int) -> None:
        """Apply a byte delta to the running disk-tier total."""
        with self._disk_lock:
            self._disk_bytes = max(0, self._disk_bytes + delta)
            total = self._disk_bytes
        self._m_disk_bytes.set(total)

    def _scan_disk_bytes(self) -> int:
        if not self.directory or not os.path.isdir(self.directory):
            return 0
        return sum(size for _, _, size in self._disk_entries())

    def _reset_disk_bytes(self) -> None:
        """Re-derive the running total from the directory."""
        total = self._scan_disk_bytes()
        with self._disk_lock:
            self._disk_bytes = total
        self._m_disk_bytes.set(total)

    def _disk_entries(self):
        """``(path, mtime, size)`` for every entry, oldest first; mtime
        ties break by path so eviction order is deterministic on
        filesystems with coarse timestamps."""
        entries = []
        for name in os.listdir(self.directory):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.directory, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            entries.append((path, st.st_mtime, st.st_size))
        entries.sort(key=lambda e: (e[1], e[0]))
        return entries

    def _evict_disk(self) -> None:
        """Drop oldest disk entries until the tier fits ``max_bytes``.

        Only called when the running total says the tier is over
        budget; the directory scan here re-derives the total, healing
        any drift from writers outside this process.
        """
        if not self.directory or not self.max_bytes:
            return
        entries = self._disk_entries()
        total = sum(size for _, _, size in entries)
        evicted = 0
        for path, _mtime, size in entries:
            if total <= self.max_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            evicted += 1
        with self._disk_lock:
            self._disk_bytes = total
            self._evictions += evicted
        self._m_disk_bytes.set(total)
        if evicted:
            self._m_evicted.inc(evicted)

    def sweep(self) -> int:
        """Remove corrupt/truncated disk entries; returns how many.

        Run at daemon startup so a crash mid-write (or a bad disk) never
        leaves junk that every later lookup has to re-discover.
        """
        if not self.directory or not os.path.isdir(self.directory):
            return 0
        removed = 0
        for name in list(os.listdir(self.directory)):
            path = os.path.join(self.directory, name)
            if name.endswith(".tmp"):
                # orphaned temp file from an interrupted atomic write
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
                continue
            if not name.endswith(".json"):
                continue
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    entry = json.load(fh)
                if not isinstance(entry, dict):
                    raise ValueError("not an object")
            except Exception:
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
        if removed:
            self._m_swept.inc(removed)
            self._reset_disk_bytes()
        return removed

    # -- public API --------------------------------------------------

    def get(self, digest: str) -> Optional[Dict]:
        """The cached result for ``digest``, or None (a miss).

        The disk probe and the memory insert happen under one lock
        acquisition, so a concurrent ``put`` for the same digest cannot
        interleave between them and be overwritten by stale disk state.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                self._hits += 1
                return entry
            entry = self._load_disk(digest)
            if entry is not None:
                self._entries[digest] = entry
                self._entries.move_to_end(digest)
                self._shrink()
                self._disk_hits += 1
            else:
                self._misses += 1
            return entry

    def put(self, digest: str, result: Dict) -> None:
        with self._lock:
            self._entries[digest] = result
            self._entries.move_to_end(digest)
            self._shrink()
        self._store_disk(digest, result)

    def stats(self) -> Dict[str, int]:
        """Lookup counters: memory hits, disk hits, misses, evictions."""
        with self._lock:
            return {"hits": self._hits, "disk_hits": self._disk_hits,
                    "misses": self._misses, "evictions": self._evictions}

    def _shrink(self) -> None:
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        """Whether a ``get`` would hit — consults memory *and* disk, so a
        daemon restart (warm disk, cold memory) still reports entries."""
        with self._lock:
            if digest in self._entries:
                return True
        if self.directory:
            return os.path.exists(self._path(digest))
        return False

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
        if disk and self.directory and os.path.isdir(self.directory):
            for name in os.listdir(self.directory):
                if name.endswith(".json"):
                    try:
                        os.remove(os.path.join(self.directory, name))
                    except OSError:
                        pass
            self._reset_disk_bytes()
