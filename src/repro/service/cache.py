"""Result cache: in-memory LRU over an optional disk layer.

Keyed by the job digest (a SHA-256 over the canonicalized submit
payload, see :func:`repro.service.jobs.payload_digest`), so a repeat
``submit`` of an unchanged benchmark/config is answered without running
the pipeline at all.  The disk layer lives beside the parse cache under
``.repro_cache/results/`` and stores plain JSON — results are JSON-safe
dicts by construction (they crossed the process-pool boundary), and JSON
keeps a daemon restart cheap without pickle's trust/compat hazards.

Robust against concurrent writers the same way the parse cache is:
atomic ``tmp + os.replace`` writes, and corrupt/truncated entries are
evicted and treated as misses rather than crashing the server.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, Optional

DEFAULT_CAPACITY = 128


class ResultCache:
    """Thread-safe LRU of job results, with optional disk persistence."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 directory: Optional[str] = None):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.directory = directory
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Dict]" = OrderedDict()
        self._hits = 0        # served from memory
        self._disk_hits = 0   # served by loading the disk layer
        self._misses = 0

    # -- disk layer --------------------------------------------------

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.json")

    def _load_disk(self, digest: str) -> Optional[Dict]:
        if not self.directory:
            return None
        path = self._path(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            try:
                os.remove(path)  # corrupt/truncated: evict, treat as miss
            except OSError:
                pass
            return None
        return entry if isinstance(entry, dict) else None

    def _store_disk(self, digest: str, result: Dict) -> None:
        if not self.directory:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(result, fh, sort_keys=True)
            os.replace(tmp, self._path(digest))
        except Exception:
            pass  # best-effort: memory layer still serves this process

    # -- public API --------------------------------------------------

    def get(self, digest: str) -> Optional[Dict]:
        """The cached result for ``digest``, or None (a miss).

        The disk probe and the memory insert happen under one lock
        acquisition, so a concurrent ``put`` for the same digest cannot
        interleave between them and be overwritten by stale disk state.
        """
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                self._hits += 1
                return entry
            entry = self._load_disk(digest)
            if entry is not None:
                self._entries[digest] = entry
                self._entries.move_to_end(digest)
                self._shrink()
                self._disk_hits += 1
            else:
                self._misses += 1
            return entry

    def put(self, digest: str, result: Dict) -> None:
        with self._lock:
            self._entries[digest] = result
            self._entries.move_to_end(digest)
            self._shrink()
        self._store_disk(digest, result)

    def stats(self) -> Dict[str, int]:
        """Lookup counters: memory hits, disk hits, and misses."""
        with self._lock:
            return {"hits": self._hits, "disk_hits": self._disk_hits,
                    "misses": self._misses}

    def _shrink(self) -> None:
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        """Whether a ``get`` would hit — consults memory *and* disk, so a
        daemon restart (warm disk, cold memory) still reports entries."""
        with self._lock:
            if digest in self._entries:
                return True
        if self.directory:
            return os.path.exists(self._path(digest))
        return False

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
        if disk and self.directory and os.path.isdir(self.directory):
            for name in os.listdir(self.directory):
                if name.endswith(".json"):
                    try:
                        os.remove(os.path.join(self.directory, name))
                    except OSError:
                        pass
