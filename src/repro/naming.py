"""Naming conventions for compiler-generated entities.

Annotation translation creates capture arrays (``GU1$A3``), region loop
variables (``Z2$A3``) and renamed locals (``T$A3``), all carrying the
``$A<site>`` suffix.  The parallelizer gives capture arrays special
treatment (iteration-scratch: private by construction, dead after the
tagged block), so the convention lives here, below both packages.

The conventional inliner uses distinct suffixes (``$I<site>`` for renamed
locals, ``$A<site>`` would collide with annotation sites only if both
inliners ran on one program, which the pipeline never does).
"""

from __future__ import annotations

GENERATED_SUFFIX_MARKER = "$A"
PATTERN_PREFIX = "PAT$"


def is_generated_name(name: str) -> bool:
    """Names created by annotation translation."""
    return GENERATED_SUFFIX_MARKER in name.upper()


def is_capture_array(name: str) -> bool:
    """``unknown()`` capture arrays: written then read within one
    iteration of any enclosing loop, dead afterwards."""
    return name.upper().startswith("GU") and is_generated_name(name)
