"""Inlining candidate selection — the Polaris default policy.

From the paper, Section II: "The default strategy inlines a procedure
call only when the procedure contains no I/O and not many statements
(<= 150 by default) and when the invocation is inside a loop nest", and
Section II-B1: "Conventional inlining typically leaves out subroutines
that make additional non-trivial procedure calls".

Additional hard requirements of the transformation itself (not tunable):
no recursion, no mid-body RETURN, no SAVE'd locals, source available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.callgraph import CallGraph
from repro.analysis.defuse import collect_accesses
from repro.fortran import ast
from repro.program import Program


@dataclass(frozen=True)
class InlinePolicy:
    max_statements: int = 150
    allow_io: bool = False
    allow_calls: bool = False
    require_loop_context: bool = True

    def rejection_reason(self, program: Program, graph: CallGraph,
                         callee_name: str,
                         in_loop: bool) -> Optional[str]:
        """None when the site should be inlined, else a reason string."""
        callee_name = callee_name.upper()
        if self.require_loop_context and not in_loop:
            return "not-in-loop"
        callee = program.procedures.get(callee_name)
        if callee is None:
            return "no-source"  # external library: the paper's key gap
        if callee.kind != "SUBROUTINE":
            return "function"
        if graph.is_recursive(callee_name):
            return "recursive"
        if ast.count_statements(callee.body) > self.max_statements:
            return "too-large"
        acc = collect_accesses(callee.body, program.symtab(callee))
        if not self.allow_calls:
            if acc.has_call:
                return "makes-calls"
            from repro.fortran.intrinsics import is_intrinsic
            for e in ast.walk_all_exprs(callee.body):
                if isinstance(e, ast.FuncRef) and not is_intrinsic(e.name):
                    return "makes-calls"
        if acc.has_io and not self.allow_io:
            return "io"
        if _has_mid_return(callee.body):
            return "mid-return"
        if any(isinstance(d, ast.SaveDecl) for d in callee.decls):
            return "save"
        if acc.has_goto:
            return "goto"
        if acc.has_opaque:
            # ENTRY points (multiple entries cannot be spliced) or
            # unlowered tolerant-frontend statements
            return "unanalyzable"
        if any(isinstance(d, ast.EquivalenceDecl) for d in callee.decls):
            # splicing renames locals, which breaks storage association
            return "equivalence"
        if any(isinstance(s, ast.Return) and s.alt is not None
               for s in ast.walk_stmts(callee.body)):
            return "alternate-return"
        return None


def _has_mid_return(body: list) -> bool:
    """RETURN anywhere except as the final top-level statement."""
    returns = [s for s in ast.walk_stmts(body) if isinstance(s, ast.Return)]
    if not returns:
        return False
    if len(returns) > 1:
        return True
    return not (body and body[-1] is returns[0])
