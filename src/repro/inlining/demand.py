"""Demand-driven inlining (Way & Pollock, arXiv cs/0604043).

The up-front pipelines pay the inlining cost everywhere; demand-driven
inlining pays it only where the analyzer needs it.  The Polaris driver
carries a :class:`DemandInliner`; when legality analysis of a candidate
loop fails on an opaque CALL (:class:`~repro.polaris.report.LoopVerdict`
reason ``call``), it asks the inliner to *resolve* that callee inside
the loop, then re-analyzes.  Resolution prefers the cheap summary:

1. **annotation** — the callee has a (hand-written or inferred)
   annotation: every CALL site in the loop subtree is replaced with the
   translated :class:`~repro.fortran.ast.TaggedBlock`, exactly as the
   up-front :class:`~repro.annotations.inliner.AnnotationInliner` would,
   so the reverse inliner restores the calls afterwards;
2. **body** — no annotation, but the conventional-inlining profitability
   policy accepts the callee: the body is spliced in textually.  Sites
   whose binding plan would force caller-wide array linearization are
   refused (that rewrite rebuilds the loop out from under the driver);
3. **fallback** — neither applies: the call stays opaque, the loop
   stays serial, and the refusal reasons (inference + body policy) are
   recorded.

Every resolution emits a :class:`~repro.trace.decisions.SiteDecision`,
giving the per-site audit trail the paper's methodology discussion asks
for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.analysis.callgraph import build_callgraph
from repro.annotations.inliner import (AnnotationInlineResult,
                                       AnnotationInliner)
from repro.annotations.registry import AnnotationRegistry
from repro.annotations.translate import TranslateOptions
from repro.errors import InlineError
from repro.fortran import ast
from repro.inlining.conventional import ConventionalInliner
from repro.inlining.heuristics import InlinePolicy
from repro.program import Program
from repro.trace.decisions import SiteDecision
from repro.trace.tracer import NULL_TRACER


@dataclass
class DemandInliner:
    """Resolves opaque call sites on demand for the Polaris driver."""

    registry: AnnotationRegistry
    options: TranslateOptions = field(default_factory=TranslateOptions)
    policy: InlinePolicy = field(default_factory=InlinePolicy)
    #: outcomes from :func:`repro.annotations.infer.infer_annotations`,
    #: used to attribute sources and to surface refusal reasons
    inference: Optional[object] = None
    #: callee names whose annotations are hand-written (for attribution)
    hand_names: FrozenSet[str] = frozenset()
    #: every decision taken, in order (also sent to the tracer)
    decisions: List[SiteDecision] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._counter = [0]
        self._ann_inliner = AnnotationInliner(self.registry, self.options)
        self._ann_result = AnnotationInlineResult()
        self._body_inliner = ConventionalInliner(self.policy)
        #: (loop identity, callee) pairs already attempted — resolving
        #: the same pair twice cannot make progress
        self._attempted: Set[Tuple[int, str]] = set()

    # ------------------------------------------------------------------
    def resolve(self, program: Program, unit: ast.ProgramUnit,
                loop: ast.DoLoop, callee: str, tracer=None) -> bool:
        """Try to make ``callee`` transparent inside ``loop``.

        Returns True when the loop body changed (the caller must refresh
        its symbol table and re-analyze)."""
        tracer = tracer or NULL_TRACER
        callee = callee.upper()
        key = (id(loop), callee)
        if key in self._attempted:
            return False
        self._attempted.add(key)
        if callee in self.registry:
            return self._resolve_annotation(program, unit, loop, callee,
                                            tracer)
        return self._resolve_body(program, unit, loop, callee, tracer)

    # ------------------------------------------------------------------
    def _record(self, tracer, unit: ast.ProgramUnit, callee: str,
                site_id: int, action: str, source: str = "",
                reason: str = "") -> None:
        decision = SiteDecision(unit.name, callee, site_id, action,
                                source=source, reason=reason)
        self.decisions.append(decision)
        tracer.site(decision)

    def _infer_reason(self, callee: str) -> str:
        outcome = getattr(self.inference, "outcomes", {}).get(callee) \
            if self.inference is not None else None
        if outcome is not None and outcome.reason:
            return outcome.reason
        return "no annotation available"

    # ------------------------------------------------------------------
    def _resolve_annotation(self, program: Program, unit: ast.ProgramUnit,
                            loop: ast.DoLoop, callee: str, tracer) -> bool:
        source = "hand" if callee in self.hand_names else "inferred"
        changed = [False]
        sites_before = len(self._ann_result.sites)

        def make(call: ast.CallStmt) -> Optional[List[ast.Stmt]]:
            block = self._ann_inliner._site(program, unit, call,
                                            self._ann_result, self._counter)
            site = self._ann_result.sites[-1]
            if block is None:
                self._record(tracer, unit, callee, site.site_id,
                             "fallback", source=source,
                             reason=f"translation failed: {site.reason}")
                return None
            changed[0] = True
            self._record(tracer, unit, callee, site.site_id,
                         "annotation", source=source)
            return [block]

        loop.body[:] = self._rewrite_calls(loop.body, callee, make)
        if changed[0]:
            program.invalidate(unit)
            return True
        if len(self._ann_result.sites) == sites_before:
            # no CALL statement found: the opaque reference is a function
            self._record(tracer, unit, callee, 0, "fallback",
                         source=source,
                         reason="no CALL site (function reference)")
        return False

    # ------------------------------------------------------------------
    def _resolve_body(self, program: Program, unit: ast.ProgramUnit,
                      loop: ast.DoLoop, callee: str, tracer) -> bool:
        infer_reason = self._infer_reason(callee)
        graph = build_callgraph(program)
        rejection = self.policy.rejection_reason(program, graph, callee,
                                                 in_loop=True)
        if rejection is not None:
            self._record(tracer, unit, callee, 0, "fallback",
                         reason=f"{infer_reason}; body: {rejection}")
            return False
        callee_unit = program.procedures[callee]
        changed = [False]

        def make(call: ast.CallStmt) -> Optional[List[ast.Stmt]]:
            self._counter[0] += 1
            site_id = self._counter[0]
            problem = self._plan_problem(program, unit, callee_unit, call,
                                         site_id)
            if problem is None:
                try:
                    stmts = self._body_inliner._expand(
                        program, unit, callee_unit, call, site_id, {})
                except InlineError as exc:
                    problem = f"binding: {exc}"
                else:
                    changed[0] = True
                    self._record(tracer, unit, callee, site_id, "body")
                    return stmts
            self._record(tracer, unit, callee, site_id, "fallback",
                         reason=f"{infer_reason}; body: {problem}")
            return None

        loop.body[:] = self._rewrite_calls(loop.body, callee, make)
        if changed[0]:
            program.invalidate(unit)
            return True
        return False

    def _plan_problem(self, program: Program, caller: ast.ProgramUnit,
                      callee: ast.ProgramUnit, call: ast.CallStmt,
                      site_id: int) -> Optional[str]:
        """Pre-flight the binding plan: demand expansion happens inside a
        loop the driver is holding, so plans that require rewriting the
        whole caller (array linearization) are refused up front."""
        from repro.inlining.binding import plan_bindings
        callee_table = program.symtab(callee)
        caller_table = program.symtab(caller)
        rename = self._body_inliner._local_rename_map(callee, callee_table,
                                                      site_id)
        try:
            plan = plan_bindings(callee.name, callee.params, call.args,
                                 callee_table, caller_table, rename,
                                 site_id)
        except InlineError as exc:
            return f"binding: {exc}"
        if plan.linearize_caller:
            return ("requires caller array linearization of "
                    + ", ".join(sorted(plan.linearize_caller)))
        return None

    # ------------------------------------------------------------------
    def _rewrite_calls(self, body: List[ast.Stmt], callee: str,
                       make) -> List[ast.Stmt]:
        """Replace each ``CALL callee`` in the subtree with ``make(call)``
        (kept verbatim when it returns None).  Mutates nested blocks in
        place so statement identities the driver holds stay valid."""
        out: List[ast.Stmt] = []
        for s in body:
            if isinstance(s, ast.CallStmt) and s.name.upper() == callee:
                replacement = make(s)
                if replacement is None:
                    out.append(s)
                else:
                    out.extend(replacement)
            else:
                if isinstance(s, ast.DoLoop):
                    s.body[:] = self._rewrite_calls(s.body, callee, make)
                elif isinstance(s, ast.IfBlock):
                    for _, arm in s.arms:
                        arm[:] = self._rewrite_calls(arm, callee, make)
                elif isinstance(s, ast.TaggedBlock):
                    s.body[:] = self._rewrite_calls(s.body, callee, make)
                elif isinstance(s, ast.OmpParallelDo):
                    s.loop.body[:] = self._rewrite_calls(s.loop.body,
                                                         callee, make)
                out.append(s)
        return out
