"""Conventional procedure inlining — the paper's baseline.

Implements the Polaris default strategy (Section II): inline a call site
when the callee is small (<= 150 statements), contains no I/O and no
further procedure calls, and the site sits inside a loop nest.  The
binding rules in :mod:`repro.inlining.binding` faithfully reproduce the
two pathologies of Section II-A: forward substitution of indirect
(subscripted) actuals into the callee's subscripts, and linearization of
mismatched array shapes across the *whole caller*.
"""

from repro.inlining.conventional import ConventionalInliner, InlineResult  # noqa: F401
from repro.inlining.heuristics import InlinePolicy  # noqa: F401
