"""Formal/actual binding for conventional inlining.

This module encodes how a Polaris-style textual inliner instantiates a
callee body at a call site — including, deliberately, the two behaviours
the paper identifies as sources of lost parallelism:

* **indirect actuals substitute forward** into the callee's subscripts:
  binding ``X2`` to ``T(IX(7)+1)`` turns ``X2(I)`` into ``T(IX(7)+I)`` — a
  subscripted subscript (Figures 2-3);
* **mismatched array shapes linearize**: when the formal's shape cannot be
  aligned with the actual's, the *caller's array is redeclared
  one-dimensional* ("without any explicit shape information", Figures 4-5)
  and every reference to it in the whole caller is rewritten through the
  column-major linearization formula.  With symbolic extents this
  produces index*symbol products that no dependence test can analyze.

Bindings that cannot be implemented faithfully raise
:class:`~repro.errors.InlineError`; the driver leaves such sites as calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.symbolic import exprs_equivalent
from repro.errors import InlineError
from repro.fortran import ast
from repro.fortran.symbols import SymbolTable, VarInfo


@dataclass
class LinearBinding:
    """Bind array formal ``formal`` to a linearized view of caller array
    ``actual_name``: ``F(i1..ir)`` becomes
    ``A(base_offset + lin(i1..ir) )`` with the column-major formula over
    the *formal's* declared dims (rewritten into caller terms)."""

    actual_name: str
    #: element offset of the actual reference within A, 0-based, in caller
    #: terms
    base_offset: ast.Expr
    #: formal dims, already rewritten into caller terms
    formal_dims: Tuple[ast.Dim, ...]


@dataclass
class BindingPlan:
    #: formal name -> replacement expression (scalars and array elements)
    scalar_map: Dict[str, ast.Expr] = field(default_factory=dict)
    #: formal array name -> (caller array, base subscripts, formal lower
    #: bounds): F(i1..ir) rewrites to A(base_k + (i_k - lower_k))
    array_direct: Dict[str, Tuple[str, Tuple[ast.Expr, ...],
                                  Tuple[ast.Expr, ...]]] = \
        field(default_factory=dict)
    #: formal array name -> linearized binding
    array_linear: Dict[str, LinearBinding] = field(default_factory=dict)
    #: temp copy-in statements to emit before the inlined body
    pre: List[ast.Stmt] = field(default_factory=list)
    #: copy-out statements to emit after the inlined body
    post: List[ast.Stmt] = field(default_factory=list)
    #: caller arrays that must be relinearized unit-wide
    linearize_caller: Set[str] = field(default_factory=set)
    #: declarations for generated temporaries
    temp_decls: List[ast.Decl] = field(default_factory=list)


def element_offset(subs: Sequence[ast.Expr],
                   dims: Sequence[ast.Dim]) -> ast.Expr:
    """0-based column-major element offset of ``A(subs)`` given declared
    ``dims``.  Fortran stores column-major: offset = (s1-l1) +
    (s2-l2)*D1 + (s3-l3)*D1*D2 + ..."""
    if len(subs) != len(dims):
        raise InlineError("subscript rank mismatch in offset computation")
    total: Optional[ast.Expr] = None
    stride: Optional[ast.Expr] = None
    for sub, dim in zip(subs, dims):
        delta: ast.Expr = ast.BinOp("-", ast.clone(sub),
                                    ast.clone(dim.lower))
        term = delta if stride is None else ast.BinOp(
            "*", delta, ast.clone(stride))
        total = term if total is None else ast.BinOp("+", total, term)
        extent = _extent(dim)
        if extent is None:
            stride = None  # assumed-size: only legal for the last dim
        else:
            stride = extent if stride is None else ast.BinOp(
                "*", ast.clone(stride), extent)
    assert total is not None
    return total


def linear_index(subs: Sequence[ast.Expr],
                 dims: Sequence[ast.Dim]) -> ast.Expr:
    """1-based linearized subscript: ``element_offset + 1``."""
    return ast.BinOp("+", element_offset(subs, dims), ast.IntLit(1))


def _extent(dim: ast.Dim) -> Optional[ast.Expr]:
    if dim.upper is None:
        return None
    if dim.lower == ast.IntLit(1):
        return ast.clone(dim.upper)
    return ast.BinOp("+", ast.BinOp("-", ast.clone(dim.upper),
                                    ast.clone(dim.lower)), ast.IntLit(1))


def total_size(dims: Sequence[ast.Dim]) -> Optional[ast.Expr]:
    total: Optional[ast.Expr] = None
    for d in dims:
        e = _extent(d)
        if e is None:
            return None
        total = e if total is None else ast.BinOp("*", total, e)
    return total


def _dims_congruent(a: Sequence[ast.Dim], b: Sequence[ast.Dim],
                    ignore_last: bool = True) -> bool:
    """Shapes produce the same memory layout: equal extents on every
    dimension (the last may differ/assume-size when ``ignore_last``)."""
    if len(a) != len(b):
        return False
    last = len(a) - 1
    for k, (da, db) in enumerate(zip(a, b)):
        if k == last and ignore_last:
            continue
        ea, eb = _extent(da), _extent(db)
        if ea is None or eb is None:
            return False
        if not exprs_equivalent(ea, eb):
            return False
    return True


def plan_bindings(callee_name: str,
                  formals: Sequence[str],
                  actuals: Sequence[ast.Expr],
                  callee_table: SymbolTable,
                  caller_table: SymbolTable,
                  rename: Dict[str, str],
                  site_id: int) -> BindingPlan:
    """Compute the binding plan for one call site.

    ``rename`` maps callee local names to their site-unique caller names;
    formal dims mentioning callee locals/formals are rewritten through it
    (and through scalar bindings) into caller terms.
    """
    if len(formals) != len(actuals):
        raise InlineError(
            f"{callee_name}: call passes {len(actuals)} arguments for "
            f"{len(formals)} formals")
    plan = BindingPlan()
    scalar_formal_map: Dict[str, ast.Expr] = {}

    # first pass: scalars (their values may appear in array dim exprs)
    for formal, actual in zip(formals, actuals):
        finfo = callee_table.info(formal)
        if finfo.is_array:
            continue
        _bind_scalar(plan, formal, finfo, actual, caller_table, site_id)
        scalar_formal_map[formal.upper()] = plan.scalar_map[formal.upper()]

    def to_caller_terms(e: ast.Expr) -> ast.Expr:
        def rewrite(n: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(n, ast.Var):
                u = n.name.upper()
                if u in scalar_formal_map:
                    return ast.clone(scalar_formal_map[u])
                if u in rename:
                    return ast.Var(rename[u])
            elif isinstance(n, (ast.ArrayRef, ast.FuncRef)) \
                    and n.name.upper() in rename:
                args = n.subs if isinstance(n, ast.ArrayRef) else n.args
                return ast.ArrayRef(rename[n.name.upper()], args)
            return None
        return ast.map_expr(ast.clone(e), rewrite)

    # second pass: arrays
    for formal, actual in zip(formals, actuals):
        finfo = callee_table.info(formal)
        if not finfo.is_array:
            continue
        fdims = tuple(ast.Dim(to_caller_terms(d.lower),
                              to_caller_terms(d.upper)
                              if d.upper is not None else None)
                      for d in finfo.dims)
        _bind_array(plan, formal, fdims, actual, caller_table)
    return plan


def _bind_scalar(plan: BindingPlan, formal: str, finfo: VarInfo,
                 actual: ast.Expr, caller_table: SymbolTable,
                 site_id: int) -> None:
    formal = formal.upper()
    if isinstance(actual, ast.Var) and not caller_table.is_array(actual.name):
        plan.scalar_map[formal] = actual
        return
    if isinstance(actual, ast.ArrayRef):
        # by-reference element binding: safe as long as nothing the
        # subscripts mention can change inside the callee; the driver
        # verified the callee is call-free, so only writes to the names
        # themselves matter — conservatively require the callee not write
        # the formal when subscripts are non-trivial (checked by caller via
        # copy-in/copy-out fallback below when needed)
        plan.scalar_map[formal] = actual
        return
    # expression actual: copy into a temp (no copy-out: writing to an
    # expression argument is non-conforming Fortran anyway)
    tmp = f"{formal}$A{site_id}"
    plan.pre.append(ast.Assign(ast.Var(tmp), ast.clone(actual)))
    plan.scalar_map[formal] = ast.Var(tmp)
    plan.temp_decls.append(ast.TypeDecl(finfo.typename,
                                        [ast.Entity(tmp)]))


def _bind_array(plan: BindingPlan, formal: str, fdims: Tuple[ast.Dim, ...],
                actual: ast.Expr, caller_table: SymbolTable) -> None:
    formal = formal.upper()
    if isinstance(actual, ast.Var):
        ainfo = caller_table.info(actual.name)
        if not ainfo.is_array:
            raise InlineError(
                f"array formal {formal} bound to scalar {actual.name}")
        adims = ainfo.dims
        if len(fdims) == len(adims) and _dims_congruent(fdims, adims):
            base = tuple(ast.clone(d.lower) for d in adims)
            lowers = tuple(ast.clone(d.lower) for d in fdims)
            plan.array_direct[formal] = (ainfo.name, base, lowers)
            return
        plan.array_linear[formal] = LinearBinding(
            ainfo.name, ast.IntLit(0), fdims)
        plan.linearize_caller.add(ainfo.name)
        return
    if isinstance(actual, ast.ArrayRef):
        ainfo = caller_table.info(actual.name)
        if ainfo.dims is None:
            raise InlineError(
                f"array formal {formal} bound to element of scalar")
        adims = ainfo.dims
        subs = actual.subs
        if len(subs) != len(adims):
            raise InlineError(
                f"element actual {actual.name} has rank {len(subs)} but "
                f"declared rank {len(adims)}")
        if len(fdims) == len(adims) == 1:
            # 1-D view into 1-D array: pure offset binding (Figure 2-3)
            plan.array_direct[formal] = (ainfo.name, (ast.clone(subs[0]),),
                                         (ast.clone(fdims[0].lower),))
            return
        if len(fdims) == len(adims) and _dims_congruent(fdims, adims) \
                and all(exprs_equivalent(s, d.lower)
                        for s, d in zip(subs[:-1], adims[:-1])):
            # congruent leading dims, offset applies to the last dim only
            base = tuple(ast.clone(d.lower) for d in adims[:-1]) \
                + (ast.clone(subs[-1]),)
            lowers = tuple(ast.clone(d.lower) for d in fdims)
            plan.array_direct[formal] = (ainfo.name, base, lowers)
            return
        plan.array_linear[formal] = LinearBinding(
            ainfo.name, element_offset(subs, adims), fdims)
        plan.linearize_caller.add(ainfo.name)
        return
    raise InlineError(f"array formal {formal} bound to expression")
