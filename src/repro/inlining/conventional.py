"""The conventional (textual) inliner.

Walks every unit, finds CALL sites the policy accepts, and splices in the
callee body with:

* callee locals renamed site-uniquely (``T$I3``);
* statement labels renumbered into a fresh range;
* formals substituted per the :mod:`repro.inlining.binding` plan
  (including the caller-wide array linearization the paper describes);
* the callee's local declarations, COMMON blocks and PARAMETERs merged
  into the caller;
* a trailing RETURN dropped.

Loops inside the spliced body keep their ``origin`` stamps, so Table II
counts a loop once no matter how many copies inlining created.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import build_callgraph
from repro.errors import InlineError
from repro.fortran import ast
from repro.fortran.symbols import SymbolTable
from repro.inlining.binding import (BindingPlan, linear_index, plan_bindings,
                                    total_size)
from repro.inlining.heuristics import InlinePolicy
from repro.program import Program


@dataclass
class SiteRecord:
    caller: str
    callee: str
    inlined: bool
    reason: str = ""


@dataclass
class InlineResult:
    sites: List[SiteRecord] = field(default_factory=list)

    @property
    def inlined_count(self) -> int:
        return sum(1 for s in self.sites if s.inlined)

    def reasons(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for s in self.sites:
            if not s.inlined:
                out[s.reason] = out.get(s.reason, 0) + 1
        return out


@dataclass
class ConventionalInliner:
    policy: InlinePolicy = field(default_factory=InlinePolicy)

    def run(self, program: Program) -> InlineResult:
        result = InlineResult()
        graph = build_callgraph(program)
        site_counter = [0]
        for unit in program.units:
            self._inline_in_unit(program, unit, graph, result, site_counter)
        program.resolve()  # re-run resolution: new code may use functions
        return result

    # ------------------------------------------------------------------
    def _inline_in_unit(self, program: Program, unit: ast.ProgramUnit,
                        graph, result: InlineResult,
                        site_counter: List[int]) -> None:
        #: arrays to relinearize once the unit is fully processed, with
        #: their original multi-dimensional declarations captured at plan
        #: time (declarations are rewritten at the end)
        pending_linearize: Dict[str, Tuple[ast.Dim, ...]] = {}

        def process(body: List[ast.Stmt], in_loop: bool) -> List[ast.Stmt]:
            out: List[ast.Stmt] = []
            for s in body:
                if isinstance(s, ast.DoLoop):
                    s.body[:] = process(s.body, True)
                    out.append(s)
                elif isinstance(s, ast.IfBlock):
                    for _, arm in s.arms:
                        arm[:] = process(arm, in_loop)
                    out.append(s)
                elif isinstance(s, ast.CallStmt):
                    expansion = self._try_site(program, unit, s, in_loop,
                                               graph, result, site_counter,
                                               pending_linearize)
                    if expansion is None:
                        out.append(s)
                    else:
                        out.extend(expansion)
                else:
                    out.append(s)
            return out

        unit.body = process(unit.body, False)
        if pending_linearize:
            self._linearize_caller_arrays(unit, pending_linearize)
        program.invalidate(unit)

    # ------------------------------------------------------------------
    def _try_site(self, program: Program, caller: ast.ProgramUnit,
                  call: ast.CallStmt, in_loop: bool, graph,
                  result: InlineResult, site_counter: List[int],
                  pending_linearize: Dict[str, Tuple[ast.Dim, ...]]
                  ) -> Optional[List[ast.Stmt]]:
        reason = self.policy.rejection_reason(program, graph, call.name,
                                              in_loop)
        if reason is not None:
            result.sites.append(SiteRecord(caller.name, call.name.upper(),
                                           False, reason))
            return None
        callee = program.procedures[call.name.upper()]
        site_counter[0] += 1
        site_id = site_counter[0]
        try:
            stmts = self._expand(program, caller, callee, call, site_id,
                                 pending_linearize)
        except InlineError as exc:
            result.sites.append(SiteRecord(caller.name, call.name.upper(),
                                           False, f"binding: {exc}"))
            return None
        result.sites.append(SiteRecord(caller.name, call.name.upper(), True))
        return stmts

    # ------------------------------------------------------------------
    def _expand(self, program: Program, caller: ast.ProgramUnit,
                callee: ast.ProgramUnit, call: ast.CallStmt, site_id: int,
                pending_linearize: Dict[str, Tuple[ast.Dim, ...]]
                ) -> List[ast.Stmt]:
        callee_table = program.symtab(callee)
        caller_table = program.symtab(caller)

        self._merge_commons(caller, callee, caller_table)

        rename = self._local_rename_map(callee, callee_table, site_id)
        plan = plan_bindings(callee.name, callee.params, call.args,
                             callee_table, caller_table, rename, site_id)

        body = ast.clone(callee.body)
        if body and isinstance(body[-1], ast.Return) \
                and body[-1].label is None:
            body = body[:-1]
        body = self._apply_renames(body, rename, plan, callee_table)
        body = self._renumber_labels(body, caller, site_id)

        self._merge_declarations(caller, callee, callee_table, rename, plan)

        for name in plan.linearize_caller:
            if name not in pending_linearize:
                dims = caller_table.info(name).dims
                if dims is None:
                    raise InlineError(f"cannot linearize scalar {name}")
                pending_linearize[name] = dims
        program.invalidate(caller)
        return plan.pre + body + plan.post

    # ------------------------------------------------------------------
    def _local_rename_map(self, callee: ast.ProgramUnit,
                          table: SymbolTable, site_id: int) -> Dict[str, str]:
        from repro.analysis.defuse import collect_accesses
        rename: Dict[str, str] = {}
        formals = set(table.formals)
        names: Set[str] = set(table.variables)
        # implicitly-declared locals (used without a declaration) must be
        # renamed too, or they would capture caller variables
        acc = collect_accesses(callee.body, table)
        names |= acc.scalar_reads | acc.scalar_writes
        names |= {a for a, _, _ in acc.array_accesses}
        for name in sorted(names):
            info = table.variables.get(name)
            if name in formals:
                continue
            if info is not None and info.common_block is not None:
                continue
            rename[name] = f"{name}$I{site_id}"
        return rename

    # ------------------------------------------------------------------
    def _apply_renames(self, body: List[ast.Stmt], rename: Dict[str, str],
                       plan: BindingPlan,
                       callee_table: SymbolTable) -> List[ast.Stmt]:

        def rewrite(e: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(e, ast.Var):
                u = e.name.upper()
                if u in plan.scalar_map:
                    return ast.clone(plan.scalar_map[u])
                if u in plan.array_direct:
                    name, base, _ = plan.array_direct[u]
                    return ast.Var(name)  # whole-array reference
                if u in plan.array_linear:
                    return ast.Var(plan.array_linear[u].actual_name)
                if u in rename:
                    return ast.Var(rename[u])
                return None
            if isinstance(e, ast.ArrayRef):
                u = e.name.upper()
                if u in plan.array_direct:
                    name, base, lowers = plan.array_direct[u]
                    subs = tuple(
                        _offset_sub(sub, b, lo)
                        for sub, b, lo in zip(e.subs, base, lowers))
                    return ast.ArrayRef(name, subs)
                if u in plan.array_linear:
                    lb = plan.array_linear[u]
                    lin = linear_index(e.subs, lb.formal_dims)
                    if lb.base_offset != ast.IntLit(0):
                        lin = ast.BinOp("+", ast.clone(lb.base_offset), lin)
                    return ast.ArrayRef(lb.actual_name, (lin,))
                if u in plan.scalar_map:
                    raise InlineError(
                        f"scalar formal {u} used with subscripts")
                if u in rename:
                    return ast.ArrayRef(rename[u], e.subs)
                return None
            if isinstance(e, ast.FuncRef) and e.name.upper() in rename:
                return ast.FuncRef(rename[e.name.upper()], e.args)
            return None

        body = ast.map_stmt_exprs(body, rewrite)

        def fix_loop_vars(s: ast.Stmt) -> Optional[List[ast.Stmt]]:
            if not isinstance(s, ast.DoLoop):
                return None
            var = s.var.upper()
            if var in rename:
                s.var = rename[var]
            elif var in plan.scalar_map:
                repl = plan.scalar_map[var]
                if isinstance(repl, ast.Var):
                    s.var = repl.name
                else:
                    raise InlineError(
                        f"DO variable {var} is a formal bound to a "
                        f"non-variable actual")
            return None

        return ast.map_stmts(body, fix_loop_vars)

    # ------------------------------------------------------------------
    def _renumber_labels(self, body: List[ast.Stmt],
                         caller: ast.ProgramUnit,
                         site_id: int) -> List[ast.Stmt]:
        used: Set[int] = set()
        for s in ast.walk_stmts(caller.body):
            if getattr(s, "label", None):
                used.add(s.label)
            if isinstance(s, ast.DoLoop) and s.term_label:
                used.add(s.term_label)
        mapping: Dict[int, int] = {}
        next_label = [max(used, default=0) // 1000 * 1000
                      + 1000 * (1 + site_id % 50)]

        def fresh(old: int) -> int:
            if old not in mapping:
                next_label[0] += 1
                mapping[old] = next_label[0]
            return mapping[old]

        def fix(s: ast.Stmt) -> Optional[List[ast.Stmt]]:
            if getattr(s, "label", None):
                s.label = fresh(s.label)
            if isinstance(s, ast.DoLoop) and s.term_label:
                s.term_label = fresh(s.term_label)
            if isinstance(s, ast.Goto):
                return [ast.Goto(fresh(s.target), s.label)]
            return None

        return ast.map_stmts(body, fix)

    # ------------------------------------------------------------------
    def _merge_commons(self, caller: ast.ProgramUnit,
                       callee: ast.ProgramUnit,
                       caller_table: SymbolTable) -> None:
        caller_blocks = {d.block.upper(): d for d in
                         caller.find_decls(ast.CommonDecl)}
        for d in callee.find_decls(ast.CommonDecl):
            mine = caller_blocks.get(d.block.upper())
            if mine is None:
                caller.decls.append(ast.clone(d))
            elif mine.entities != d.entities:
                raise InlineError(
                    f"COMMON /{d.block}/ layout differs between "
                    f"{caller.name} and {callee.name}")

    # ------------------------------------------------------------------
    def _merge_declarations(self, caller: ast.ProgramUnit,
                            callee: ast.ProgramUnit,
                            callee_table: SymbolTable,
                            rename: Dict[str, str],
                            plan: BindingPlan) -> None:
        for name, new_name in sorted(rename.items()):
            info = callee_table.variables.get(name)
            if info is None or info.is_parameter:
                continue
            dims = info.dims
            entity = ast.Entity(new_name, ast.clone(dims) if dims else None)
            caller.decls.append(ast.TypeDecl(info.typename, [entity]))
        # PARAMETER constants used by the callee body
        for d in callee.find_decls(ast.ParameterDecl):
            pairs = [(rename.get(n.upper(), n.upper()), ast.clone(e))
                     for n, e in d.assignments]
            caller.decls.append(ast.ParameterDecl(pairs))
        for d in callee.find_decls(ast.DataDecl):
            targets = []
            for t in d.targets:
                def rw(e: ast.Expr) -> Optional[ast.Expr]:
                    if isinstance(e, ast.Var) and e.name.upper() in rename:
                        return ast.Var(rename[e.name.upper()])
                    if isinstance(e, ast.ArrayRef) \
                            and e.name.upper() in rename:
                        return ast.ArrayRef(rename[e.name.upper()], e.subs)
                    return None
                targets.append(ast.map_expr(ast.clone(t), rw))
            if targets:
                caller.decls.append(ast.DataDecl(targets,
                                                 ast.clone(d.values)))
        caller.decls.extend(plan.temp_decls)

    # ------------------------------------------------------------------
    def _linearize_caller_arrays(
            self, caller: ast.ProgramUnit,
            pending: Dict[str, Tuple[ast.Dim, ...]]) -> None:
        """Redeclare each array 1-D and rewrite every reference in the
        caller through the column-major formula (the paper's 'without any
        explicit shape information' behaviour).  Runs once per unit after
        all sites are expanded; references that are already 1-D (emitted
        by the per-site linear bindings) are left alone."""
        dims_of = {name: dims for name, dims in pending.items()
                   if len(dims) > 1}
        if not dims_of:
            return

        def rewrite(e: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(e, ast.ArrayRef) and e.name.upper() in dims_of:
                dims = dims_of[e.name.upper()]
                if len(e.subs) == len(dims):
                    return ast.ArrayRef(e.name,
                                        (linear_index(e.subs, dims),))
                if len(e.subs) == 1:
                    return None  # already linearized by a site binding
                raise InlineError(f"rank mismatch linearizing {e.name}")
            return None

        caller.body = ast.map_stmt_exprs(caller.body, rewrite)

        # rewrite declarations to a single flat dimension
        for name, dims in dims_of.items():
            flat = total_size(dims)
            new_dims = (ast.Dim(ast.IntLit(1),
                                flat if flat is not None else None),)
            self._replace_entity_dims(caller, name, new_dims)

    def _replace_entity_dims(self, caller: ast.ProgramUnit, name: str,
                             new_dims: Tuple[ast.Dim, ...]) -> None:
        for d in caller.decls:
            entities = getattr(d, "entities", None)
            if entities is None:
                continue
            for e in entities:
                if e.name.upper() == name and e.dims is not None:
                    e.dims = ast.clone(new_dims)


def _offset_sub(sub: ast.Expr, base: ast.Expr, lower: ast.Expr) -> ast.Expr:
    """``base + (sub - lower)``, simplified when base == lower."""
    if base == lower:
        return ast.clone(sub)
    return ast.BinOp("+", ast.clone(base),
                     ast.BinOp("-", ast.clone(sub), ast.clone(lower)))
