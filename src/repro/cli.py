"""Command-line interface.

::

    python -m repro parallelize in.f [in2.f ...] [--annotations a.ann]
                                [--config annotation] [--output out.f]
    python -m repro report      in.f ... [--annotations a.ann]
    python -m repro run         in.f ... [--machine intel-mac] [--inputs 1 2]
    python -m repro verify      in.f ... --annotations a.ann
    python -m repro generate    in.f ...           # derive annotations
    python -m repro check       in.f ... --annotations a.ann  # soundness
    python -m repro table1 | table2 | figure20     # paper artifacts
    python -m repro ablation                       # hand/inferred/demand
    python -m repro bench NAME                     # one PERFECT substitute
    python -m repro serve [--port N] [-j N]        # parallelization daemon
    python -m repro submit NAME|file.f ...         # run a job on the daemon
    python -m repro svc-status [--metrics]         # daemon health/metrics
    python -m repro cluster gateway|shard|worker   # distributed tier
    python -m repro loadtest [--sessions N]        # concurrent-session replay

``parallelize`` runs the paper's full Figure-15 pipeline and writes (or
prints) the optimized source: the original program plus OpenMP
directives.
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter
from typing import Dict, Optional, Sequence

from repro.program import Program

_MACHINES = {"intel-mac": None, "amd-opteron": None, "serial": None}


def _print_profile(timings: Dict[str, float],
                   test_stats: Optional[Dict[str, int]] = None,
                   cprofile_text: str = "") -> None:
    from repro.obs.profile import render_profile_report
    print(render_profile_report(timings, test_stats, cprofile_text),
          file=sys.stderr)


def _maybe_cprofile(args, fn, *fn_args, **fn_kwargs):
    """Run ``fn`` under cProfile when ``--profile-top N`` was given;
    returns ``(result, top-N text or "")``."""
    top = getattr(args, "profile_top", None)
    if top:
        from repro.obs.profile import profile_call
        return profile_call(fn, *fn_args, top=top, **fn_kwargs)
    return fn(*fn_args, **fn_kwargs), ""


def _load_program(paths: Sequence[str]) -> Program:
    sources: Dict[str, str] = {}
    for path in paths:
        with open(path) as fh:
            sources[path] = fh.read()
    return Program.from_sources(sources)


def _load_registry(path: Optional[str]):
    from repro.annotations import AnnotationRegistry
    if not path:
        return AnnotationRegistry()
    with open(path) as fh:
        return AnnotationRegistry.from_text(fh.read())


def _machine(name: str):
    from repro.runtime.machine import AMD_OPTERON, INTEL_MAC
    return {"intel-mac": INTEL_MAC, "amd-opteron": AMD_OPTERON,
            "serial": None}[name]


def _make_tracer(args):
    """A live tracer when ``--trace FILE`` was given, else None."""
    if not getattr(args, "trace", None):
        return None
    from repro.trace import Tracer
    return Tracer(label=f"repro {args.command}")


def _write_trace(tracer, path: str) -> None:
    """Write the Chrome trace-event JSON plus the sibling JSONL decision
    log (``out.json`` -> ``out.decisions.jsonl``)."""
    import os
    from repro.trace import write_chrome, write_decisions_jsonl
    write_chrome(tracer, path)
    decisions_path = os.path.splitext(path)[0] + ".decisions.jsonl"
    write_decisions_jsonl(tracer.decisions, decisions_path)
    print(f"trace: {path} ({len(tracer.events)} events); "
          f"decisions: {decisions_path} ({len(tracer.decisions)} loops)",
          file=sys.stderr)


def _select_benchmarks(args):
    """Benchmark objects for ``--benchmarks``, or None (= the full suite)."""
    names = getattr(args, "benchmarks", None)
    if not names:
        return None
    from repro.perfect import get_benchmark
    return [get_benchmark(name) for name in names]


def _pipeline(program: Program, registry, config: str,
              annotations_mode: str = "hand", tracer=None):
    from repro.annotations import AnnotationInliner, ReverseInliner
    from repro.inlining import ConventionalInliner
    from repro.polaris import Polaris
    t0 = perf_counter()
    demand = None
    if config == "conventional":
        ConventionalInliner().run(program)
    elif config == "annotation":
        if annotations_mode != "hand":
            from repro.annotations.infer import infer_annotations
            from repro.inlining.demand import DemandInliner
            hand = registry if annotations_mode == "demand" else None
            inference = infer_annotations(program, hand=hand)
            registry = inference.registry()
            if annotations_mode == "demand":
                demand = DemandInliner(
                    registry, inference=inference,
                    hand_names=frozenset(hand.names()))
        if demand is None:
            AnnotationInliner(registry).run(program)
    inline_seconds = perf_counter() - t0
    report = Polaris(demand=demand).run(program, tracer)
    if config != "none":
        report.add_timing("inline", inline_seconds)
    if config == "annotation":
        t0 = perf_counter()
        ReverseInliner(registry).run(program)
        report.add_timing("reverse", perf_counter() - t0)
    return report


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------

def cmd_parallelize(args) -> int:
    if getattr(args, "tolerant", False) or getattr(args, "json", False):
        return _cmd_parallelize_tolerant(args)
    t0 = perf_counter()
    program = _load_program(args.files)
    parse_seconds = perf_counter() - t0
    registry = _load_registry(args.annotations)
    tracer = None
    if getattr(args, "explain", False):
        from repro.trace import Tracer
        tracer = Tracer(label="parallelize")
    report, cprofile_text = _maybe_cprofile(
        args, _pipeline, program, registry, args.config,
        getattr(args, "annotations_mode", "hand"), tracer)
    report.add_timing("parse", parse_seconds)
    text = "".join(program.unparse().values())
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output} "
              f"({report.parallel_count()} loops parallelized)")
    else:
        print(text, end="")
    if tracer is not None:
        for d in tracer.decisions:
            print(d.describe(), file=sys.stderr)
    if args.report:
        print(report.describe(), file=sys.stderr)
    if args.profile or cprofile_text:
        _print_profile(report.timings, report.test_stats, cprofile_text)
    return 0


def _cmd_parallelize_tolerant(args) -> int:
    """``repro parallelize --tolerant``: real-world ``.f`` ingestion via
    the tolerant fixed-form frontend (:mod:`repro.fortran.fixedform`)."""
    import json
    from repro.fortran.fixedform import parallelize_source
    sources: Dict[str, str] = {}
    for path in args.files:
        with open(path) as fh:
            sources[path] = fh.read()
    annotations = ""
    if args.annotations:
        with open(args.annotations) as fh:
            annotations = fh.read()
    mode = getattr(args, "annotations_mode", "hand")
    if mode == "hand" and not annotations:
        # nothing hand-written to apply: infer annotations from callee
        # bodies, the right default for arbitrary ingested programs
        mode = "inferred"
    result = parallelize_source(sources, config=args.config,
                                annotations_mode=mode,
                                annotations_text=annotations,
                                tolerant=getattr(args, "tolerant", True))
    if getattr(args, "json", False):
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        from repro.fortran.fixedform import Diagnostic
        for d in result["diagnostics"]:
            print(Diagnostic.from_dict(d).describe(), file=sys.stderr)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(result["output"])
            print(f"wrote {args.output} "
                  f"({result['parallel_count']} loops parallelized, "
                  f"{len(result['diagnostics'])} diagnostics)")
        else:
            print(result["output"], end="")
        if getattr(args, "explain", False):
            for loop in result["loops"]:
                print(loop["explanation"], file=sys.stderr)
    return 0


def cmd_report(args) -> int:
    if args.out:
        return _cmd_report_dashboard(args)
    if not args.files:
        print("repro report: needs source files (or --out FILE for the "
              "HTML dashboard)", file=sys.stderr)
        return 2
    t0 = perf_counter()
    program = _load_program(args.files)
    parse_seconds = perf_counter() - t0
    registry = _load_registry(args.annotations)
    report, cprofile_text = _maybe_cprofile(
        args, _pipeline, program, registry, args.config,
        getattr(args, "annotations_mode", "hand"))
    report.add_timing("parse", parse_seconds)
    if args.profile or cprofile_text:
        _print_profile(report.timings, report.test_stats, cprofile_text)
    print(report.describe())
    print(f"\n{report.parallel_count()} loops parallelized")
    reasons = report.reasons_histogram()
    if reasons:
        print("serial loops by reason:",
              ", ".join(f"{k}={v}" for k, v in sorted(reasons.items())))
    return 0


def _cmd_report_dashboard(args) -> int:
    from repro.obs.dashboard import (CountMismatchError, collect,
                                     write_dashboard)
    try:
        data = collect(benchmarks=args.benchmarks, jobs=args.jobs,
                       include_figure20=args.figure20,
                       history_path=args.history)
    except CountMismatchError as exc:
        print(f"repro report: count verification failed: {exc}",
              file=sys.stderr)
        return 1
    write_dashboard(args.out, data)
    print(f"wrote {args.out} ({len(data.rows)} benchmarks, "
          f"{len(data.decisions)} loop decisions)")
    return 0


def cmd_run(args) -> int:
    from repro.runtime import make_interpreter
    program = _load_program(args.files)
    machine = _machine(args.machine)
    interp = make_interpreter(program, machine=machine,
                              honor_directives=machine is not None,
                              inputs=[float(x) for x in args.inputs])
    result = interp.run()
    for line in result.output:
        print(line)
    if result.stop_message:
        print(f"STOP '{result.stop_message}'", file=sys.stderr)
    print(f"[simulated cost: {result.cost:.0f} work units"
          + (f" on {args.machine}" if machine else " (serial)") + "]",
          file=sys.stderr)
    return 0


def cmd_verify(args) -> int:
    from repro.runtime import diff_test
    program = _load_program(args.files)
    registry = _load_registry(args.annotations)
    report = _pipeline(program, registry, args.config,
                       getattr(args, "annotations_mode", "hand"))
    result = diff_test(program, _machine("intel-mac"),
                       inputs=[float(x) for x in args.inputs])
    print(f"{report.parallel_count()} loops parallelized; "
          f"verification: {result.explain()}")
    return 0 if result.passed else 1


def cmd_generate(args) -> int:
    from repro.annotations.generate import generate_all, render_annotation
    program = _load_program(args.files)
    results = generate_all(program)
    failures = 0
    for name, res in results.items():
        if res.ok:
            print(f"# {name}: derived automatically"
                  + (f" ({res.omitted_error_checks} error-handling "
                     f"conditionals omitted)" if res.omitted_error_checks
                     else ""))
            print(render_annotation(res.annotation))
            print()
        else:
            failures += 1
            print(f"# {name}: NOT derivable — {res.reason}")
    return 0 if failures == 0 else 2


def cmd_check(args) -> int:
    from repro.annotations.soundness import check_registry
    program = _load_program(args.files)
    registry = _load_registry(args.annotations)
    reports = check_registry(program, registry)
    bad = 0
    for name, rep in sorted(reports.items()):
        status = "SOUND" if rep.sound else "UNSOUND"
        print(f"{name}: {status}")
        for v in rep.violations:
            bad += 1
            print(f"  violation: {v}")
        for w in rep.warnings:
            print(f"  warning:   {w}")
    return 0 if bad == 0 else 1


def cmd_diagnose(args) -> int:
    from repro.polaris.explain import diagnose_program
    program = _load_program(args.files)
    for diag in diagnose_program(program):
        if args.all or not diag.parallel:
            print(diag.describe())
    return 0


def cmd_table1(args) -> int:
    from repro.experiments.table1 import render_table1
    tracer = _make_tracer(args)
    print(render_table1(jobs=args.jobs, tracer=tracer))
    if tracer is not None:
        _write_trace(tracer, args.trace)
    return 0


def cmd_table2(args) -> int:
    from repro.experiments.table2 import render_table2, table2_rows
    from repro.obs.profile import merge_test_stats
    from repro.polaris.report import merge_timings
    if getattr(args, "service", None):
        from repro.cluster.backend import table2_rows_via_service
        from repro.cluster.shardcache import parse_shard_spec
        from repro.service.client import ServiceError
        try:
            host, port = parse_shard_spec(args.service)
            rows = table2_rows_via_service(
                host, port, benchmarks=_select_benchmarks(args),
                annotations=getattr(args, "annotations_mode", "hand"))
        except (ValueError, ServiceError) as exc:
            print(f"repro table2: service error: {exc}", file=sys.stderr)
            return 2
        print(render_table2(rows))
        return 0
    tracer = _make_tracer(args)
    rows, cprofile_text = _maybe_cprofile(
        args, table2_rows, jobs=args.jobs,
        benchmarks=_select_benchmarks(args), tracer=tracer,
        annotations=getattr(args, "annotations_mode", "hand"))
    print(render_table2(rows))
    if args.profile or cprofile_text:
        timings: Dict[str, float] = {}
        test_stats: Dict[str, int] = {}
        for row in rows:
            merge_timings(timings, row.timings)
            merge_test_stats(test_stats, row.test_stats)
        _print_profile(timings, test_stats, cprofile_text)
    if tracer is not None:
        _write_trace(tracer, args.trace)
    return 0


def cmd_ablation(args) -> int:
    from repro.experiments.ablation import ablation_rows, render_ablation
    tracer = _make_tracer(args)
    rows = ablation_rows(jobs=args.jobs,
                         benchmarks=_select_benchmarks(args),
                         tracer=tracer)
    print(render_ablation(rows))
    if tracer is not None:
        _write_trace(tracer, args.trace)
    flips = sum(r.flips() for r in rows)
    if flips:
        print(f"repro ablation: UNSOUND — inference flipped {flips} "
              f"loop verdict{'s' if flips != 1 else ''}",
              file=sys.stderr)
        return 1
    return 0


def cmd_figure20(args) -> int:
    from repro.experiments.figure20 import figure20_all, render_figure20
    from repro.polaris.report import merge_timings
    tracer = _make_tracer(args)
    cells, cprofile_text = _maybe_cprofile(
        args, figure20_all, jobs=args.jobs,
        benchmarks=_select_benchmarks(args), tracer=tracer)
    print(render_figure20(cells))
    if args.profile or cprofile_text:
        timings: Dict[str, float] = {}
        for cell in cells:
            merge_timings(timings, cell.timings)
        _print_profile(timings, cprofile_text=cprofile_text)
    if tracer is not None:
        _write_trace(tracer, args.trace)
    return 0


def cmd_bench(args) -> int:
    from repro.experiments.figure20 import figure20_cells, render_figure20
    from repro.experiments.table2 import render_table2, table2_row
    from repro.perfect import get_benchmark
    from repro.polaris.report import merge_timings
    bench = get_benchmark(args.name)
    tracer = _make_tracer(args)
    row, cprofile_text = _maybe_cprofile(
        args, table2_row, bench, tracer=tracer,
        annotations=getattr(args, "annotations_mode", "hand"))
    print(render_table2([row]))
    print()
    cells = figure20_cells(bench, jobs=args.jobs, tracer=tracer)
    print(render_figure20(cells))
    if args.profile or cprofile_text:
        timings = dict(row.timings)
        for cell in cells:
            merge_timings(timings, cell.timings)
        _print_profile(timings, row.test_stats, cprofile_text)
    if tracer is not None:
        _write_trace(tracer, args.trace)
    return 0


def _drain_on_sigterm(stop_fn, what: str) -> None:
    """SIGTERM = finish in-flight jobs, then exit (graceful drain).

    The handler hands the (possibly slow) drain to a thread so the
    signal context returns immediately; SIGINT keeps its fast-stop
    KeyboardInterrupt behavior.
    """
    import signal
    import threading

    def handler(signum, frame):
        print(f"{what}: SIGTERM received, draining", file=sys.stderr)
        threading.Thread(target=stop_fn, daemon=True).start()

    signal.signal(signal.SIGTERM, handler)


def cmd_serve(args) -> int:
    from repro.perfect.suite import cache_dir, disk_cache_enabled
    from repro.service.server import ParallelizationServer
    import os
    directory = None
    if args.cache_dir:
        directory = args.cache_dir
    elif disk_cache_enabled():
        directory = os.path.join(cache_dir(), "results")
    server = ParallelizationServer(
        host=args.host, port=args.port, jobs=args.jobs,
        queue_capacity=args.queue_capacity, cache_dir=directory,
        default_deadline=args.default_deadline,
        max_retries=args.max_retries,
        drain_timeout=args.drain_timeout,
        telemetry_dir=args.telemetry_dir,
        run_id=args.run_id)
    host, port = server.start()
    print(f"repro service listening on {host}:{port} "
          f"({server.workers} worker{'s' if server.workers != 1 else ''}, "
          f"queue capacity {server.queue.capacity})", flush=True)
    _drain_on_sigterm(lambda: server.stop(drain=True), "repro serve")
    try:
        server.wait()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        server.stop()
    return 0


def cmd_cluster_gateway(args) -> int:
    from repro.cluster.gateway import ClusterGateway
    from repro.cluster.shardcache import LocalShard, ShardedCache
    if args.shard:
        shards = ShardedCache.from_specs(args.shard)
    else:
        shards = ShardedCache({"local": LocalShard(
            capacity=args.cache_capacity, directory=args.cache_dir)})
    gateway = ClusterGateway(
        host=args.host, port=args.port, shards=shards,
        queue_capacity=args.queue_capacity,
        default_deadline=args.default_deadline,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
        drain_timeout=args.drain_timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        local_workers=args.local_workers,
        inline=True if args.inline else None,
        telemetry_dir=args.telemetry_dir,
        telemetry_interval=args.telemetry_interval,
        run_id=args.run_id)
    host, port = gateway.start_background()
    print(f"repro cluster gateway listening on {host}:{port} "
          f"({len(shards.shard_names)} cache shard"
          f"{'s' if len(shards.shard_names) != 1 else ''}, "
          f"{args.local_workers} local worker"
          f"{'s' if args.local_workers != 1 else ''})", flush=True)
    _drain_on_sigterm(lambda: gateway.stop(drain=True),
                      "repro cluster gateway")
    try:
        gateway.wait()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
        gateway.stop()
        gateway.wait(timeout=10.0)
    return 0


def cmd_cluster_shard(args) -> int:
    from repro.cluster.shardcache import CacheShardServer
    shard = CacheShardServer(host=args.host, port=args.port,
                             capacity=args.capacity,
                             directory=args.cache_dir,
                             max_bytes=args.max_bytes)
    host, port = shard.start()
    print(f"repro cache shard listening on {host}:{port} "
          f"(capacity {args.capacity})", flush=True)
    _drain_on_sigterm(shard.stop, "repro cluster shard")
    try:
        shard.wait()
    except KeyboardInterrupt:
        shard.stop()
    return 0


def cmd_cluster_worker(args) -> int:
    from repro.cluster.shardcache import parse_shard_spec
    from repro.cluster.workers import WorkerNode
    try:
        host, port = parse_shard_spec(args.gateway)
    except ValueError as exc:
        print(f"repro cluster worker: {exc}", file=sys.stderr)
        return 2
    node = WorkerNode(host, port, name=args.name,
                      threads=args.threads, jobs=args.jobs,
                      pull_wait=args.pull_wait,
                      heartbeat_interval=args.heartbeat_interval,
                      inline=True if args.inline else None)
    print(f"repro worker {node.name}: {args.threads} thread"
          f"{'s' if args.threads != 1 else ''} pulling from "
          f"{host}:{port}", flush=True)
    _drain_on_sigterm(node.stop, "repro cluster worker")
    try:
        node.run()
    except KeyboardInterrupt:
        node.stop()
        node.wait(timeout=10.0)
    return 0


def cmd_loadtest(args) -> int:
    import json
    from repro.cluster.loadtest import append_history, run_loadtest
    slo_spec = None
    if args.slo:
        from repro.obs.slo import load_slo_spec
        try:
            slo_spec = load_slo_spec(args.slo)
        except (OSError, ValueError) as exc:
            print(f"repro loadtest: bad SLO spec: {exc}", file=sys.stderr)
            return 2
    cluster = None
    host, port = args.host, args.port
    if args.spawn:
        import tempfile
        from repro.cluster.topology import LocalCluster
        cluster = LocalCluster(shards=args.spawn_shards,
                               workers=args.spawn_workers,
                               worker_threads=args.spawn_threads,
                               cache_dir=tempfile.mkdtemp(
                                   prefix="repro-loadtest-"))
        host, port = cluster.start()
        print(f"spawned localhost cluster: gateway {host}:{port}, "
              f"{args.spawn_shards} shards, {args.spawn_workers} workers",
              file=sys.stderr)
    try:
        report = run_loadtest(
            host, port, sessions=args.sessions,
            jobs_per_session=args.jobs_per_session,
            distinct=args.distinct, kind=args.kind,
            benchmark=args.benchmark,
            wait_timeout=args.wait_timeout,
            verify=not args.no_verify,
            trace=args.trace)
    finally:
        if cluster is not None:
            cluster.stop()
    evaluation = None
    if slo_spec is not None:
        from repro.obs.slo import evaluate_slo, measurements_from_loadtest
        evaluation = evaluate_slo(slo_spec,
                                  measurements_from_loadtest(report),
                                  source="loadtest")
        report["slo"] = evaluation
    if args.gate:
        append_history(report, path=args.history)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        lat = report["latency"]
        print(f"loadtest: {report['jobs']} jobs over "
              f"{report['sessions']} concurrent sessions in "
              f"{report['duration_seconds']}s "
              f"({report['throughput_jobs_per_sec']} jobs/s)")
        print(f"  latency: p50={lat['p50']}s p90={lat['p90']}s "
              f"p99={lat['p99']}s max={lat['max']}s")
        print(f"  outcomes: {report['outcomes']}  "
              f"deduped={report['deduped']} cached={report['cached']}")
        print(f"  lost={report['lost']} mismatches={report['mismatches']}"
              f" verified={report['verified']}")
        service = report.get("service", {})
        retried = service.get("repro_jobs_retried_total")
        steals = service.get("repro_cluster_steals_total")
        if retried is not None or steals is not None:
            print(f"  service: retries={retried} steals={steals}")
        if report.get("trace_id"):
            print(f"  trace: {report['trace_id']} "
                  f"(collect with `repro trace-collect`)")
        if evaluation is not None:
            from repro.obs.slo import render_slo
            print(render_slo(evaluation))
    if not report["ok"]:
        print("loadtest FAILED: jobs were lost or returned wrong "
              "results", file=sys.stderr)
        return 1
    if evaluation is not None and not evaluation["ok"]:
        print("loadtest SLO VIOLATED: "
              + ", ".join(evaluation["violations"]), file=sys.stderr)
        return 3
    return 0


def _submit_payload(args) -> dict:
    from repro.perfect.suite import benchmark_names
    names = {n.lower() for n in benchmark_names()}
    mode = getattr(args, "annotations_mode", "hand")
    if getattr(args, "parallelize", False):
        sources = {}
        for path in args.targets:
            with open(path) as fh:
                sources[path] = fh.read()
        annotations = ""
        if args.annotations:
            with open(args.annotations) as fh:
                annotations = fh.read()
        payload = {"kind": "parallelize", "sources": sources,
                   "annotations": annotations, "config": args.config,
                   "tolerant": True}
        if mode != "hand":
            payload["annotations_mode"] = mode
        return payload
    if len(args.targets) == 1 and args.targets[0].lower() in names:
        payload = {"kind": "benchmark",
                   "benchmark": args.targets[0].lower(),
                   "config": args.config}
    else:
        sources = {}
        for path in args.targets:
            with open(path) as fh:
                sources[path] = fh.read()
        annotations = ""
        if args.annotations:
            with open(args.annotations) as fh:
                annotations = fh.read()
        payload = {"kind": "sources", "sources": sources,
                   "annotations": annotations, "config": args.config}
    if mode != "hand":
        payload["annotations_mode"] = mode
    return payload


def cmd_submit(args) -> int:
    import json
    from repro.service.client import ServiceClient, ServiceError
    client = ServiceClient(host=args.host, port=args.port)
    try:
        payload = _submit_payload(args)
    except OSError as exc:
        print(f"repro submit: cannot read input: {exc}", file=sys.stderr)
        return 2
    try:
        response = client.submit(payload,
                                 wait=not args.no_wait,
                                 deadline=args.timeout,
                                 wait_timeout=args.timeout)
    except ServiceError as exc:
        print(f"repro submit: error ({exc.code}): {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0 if response.get("state") in (None, "done", "queued",
                                              "running") else 1
    state = response.get("state")
    origin = "cache" if response.get("cached") else \
        "deduplicated" if response.get("deduped") else "fresh run"
    print(f"job {response.get('job_id')}: {state} ({origin})")
    result = response.get("result")
    if result:
        print(f"  config={result['config']} "
              f"parallel={result['parallel_count']} "
              f"lines={result['code_lines']}")
        if result.get("diagnostics"):
            print(f"  diagnostics={len(result['diagnostics'])}")
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(result["output"])
            print(f"  wrote {args.output}")
    elif state not in ("done", "queued", "running"):
        print(f"  error: {response.get('error')}", file=sys.stderr)
        return 1
    return 0


def cmd_fuzz(args) -> int:
    import os
    from repro.fuzz import run_campaign
    from repro.fuzz.generator import DIALECTS, GeneratorOptions
    tracer = _make_tracer(args)
    dialect = args.dialect or os.environ.get("REPRO_FUZZ_DIALECT", "core")
    if dialect not in DIALECTS:
        print(f"repro fuzz: unknown dialect {dialect!r}; "
              f"expected one of {DIALECTS}", file=sys.stderr)
        return 2
    result = run_campaign(seed=args.seed, count=args.count,
                          time_budget=args.time_budget, jobs=args.jobs,
                          tracer=tracer, corpus_dir=args.corpus_dir,
                          options=GeneratorOptions(dialect=dialect),
                          do_shrink=not args.no_shrink,
                          progress=(print if args.verbose else None))
    stats = result.stats
    print(f"fuzz campaign (seed {args.seed}): {stats.summary()}")
    if stats.parallel_loops:
        loops = ", ".join(f"{k}={v}" for k, v in
                          sorted(stats.parallel_loops.items()))
        print(f"  parallel loops: {loops}")
    if stats.features:
        top = ", ".join(f"{name} x{n}" for name, n in
                        stats.features.most_common(8))
        print(f"  features: {top}")
    for failure in result.failures:
        print(f"  FAIL {failure.describe()}", file=sys.stderr)
        if failure.corpus_path:
            print(f"       repro saved: {failure.corpus_path}",
                  file=sys.stderr)
        if args.verbose and failure.shrunk is not None:
            print(failure.shrunk.source_text(), file=sys.stderr)
    if tracer is not None:
        _write_trace(tracer, args.trace)
    return 0 if result.ok else 1


def cmd_svc_status(args) -> int:
    import json
    from repro.service.client import ServiceClient, ServiceError
    client = ServiceClient(host=args.host, port=args.port)
    try:
        if args.prometheus:
            print(client.metrics(format="prometheus")["text"], end="")
            return 0
        health = client.health()
        if args.metrics:
            health = dict(health)
            health["metrics"] = client.metrics()["metrics"]
        print(json.dumps(health, indent=2, sort_keys=True))
        return 0
    except ServiceError as exc:
        print(f"repro svc-status: error ({exc.code}): {exc}",
              file=sys.stderr)
        return 2


def cmd_top(args) -> int:
    from repro.obs.top import run_top
    slo_spec = None
    if args.slo:
        from repro.obs.slo import load_slo_spec
        try:
            slo_spec = load_slo_spec(args.slo)
        except (OSError, ValueError) as exc:
            print(f"repro top: bad SLO spec: {exc}", file=sys.stderr)
            return 2
    iterations = 1 if args.once else args.iterations
    return run_top(args.host, args.port, interval=args.interval,
                   iterations=iterations, slo_spec=slo_spec)


def cmd_trace_collect(args) -> int:
    import json
    from repro.obs.distributed import ClockModel, stitch_spans
    from repro.trace.chrome import validate_chrome_trace

    if args.telemetry_dir:
        # offline: read the spans/snapshots the gateway persisted
        from repro.obs.telemetry import SpanStore, TelemetryStore
        run_id = args.run_id
        if not run_id:
            runs = TelemetryStore.runs(args.telemetry_dir)
            if len(runs) == 1:
                run_id = runs[0]
            else:
                print("repro trace-collect: --telemetry-dir holds "
                      f"{len(runs)} runs {runs}; name one RUN_ID",
                      file=sys.stderr)
                return 2
        spans = SpanStore.load_run(args.telemetry_dir, run_id).spans()
        snapshots = TelemetryStore.load_run(
            args.telemetry_dir, run_id).snapshots()
        offsets = {}
        if snapshots:
            offsets = ((snapshots[-1].get("health") or {})
                       .get("cluster") or {}).get("clock_offsets") or {}
        decisions, site_decisions = [], []
    else:
        # live: ask the gateway (or daemon) for everything
        from repro.service.client import ServiceClient, ServiceError
        client = ServiceClient(host=args.host, port=args.port)
        try:
            export = client.trace_export(trace_id=args.trace_id)
        except ServiceError as exc:
            print(f"repro trace-collect: error ({exc.code}): {exc}",
                  file=sys.stderr)
            return 2
        run_id = args.run_id or export.get("run_id") or "run"
        spans = export.get("spans") or []
        offsets = export.get("clock_offsets") or {}
        decisions = export.get("decisions") or []
        site_decisions = export.get("site_decisions") or []

    if not spans:
        print("repro trace-collect: no spans recorded "
              "(did the run carry trace contexts?)", file=sys.stderr)
        return 1
    chrome = stitch_spans(spans, ClockModel.from_offsets(offsets),
                          trace_id=args.trace_id, label=run_id,
                          decisions=decisions,
                          site_decisions=site_decisions)
    problems = validate_chrome_trace(chrome)
    if problems:
        print("repro trace-collect: stitched trace is not valid "
              "Chrome JSON: " + "; ".join(problems), file=sys.stderr)
        return 1
    out = args.out or f"trace-{run_id}.json"
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(chrome, fh, indent=1, sort_keys=True)
    other = chrome.get("otherData", {})
    print(f"wrote {out}: {len(chrome.get('traceEvents', []))} events, "
          f"nodes={other.get('nodes')}, "
          f"traces={len(other.get('trace_ids', []))}, "
          f"decisions={len(chrome.get('loopDecisions', []))}"
          f"+{len(chrome.get('siteDecisions', []))} "
          f"(open in Perfetto / chrome://tracing)")
    return 0


# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Annotation-based inlining for interprocedural "
                    "parallelization (ICPP 2011 reproduction)")
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="structured-log threshold (format from "
                             "$REPRO_LOG=json|text; default warning, or "
                             "info when REPRO_LOG is set)")
    parser.add_argument("--backend", default=None,
                        choices=("tree", "compiled"),
                        help="runtime execution backend: the reference "
                             "tree-walker or the compiled closure backend "
                             "(default from $REPRO_BACKEND, else compiled)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_files(p, annotations=True):
        p.add_argument("files", nargs="+", help="Fortran 77 source files")
        if annotations:
            p.add_argument("--annotations", help="annotation file")
            p.add_argument("--config", default="annotation",
                           choices=("none", "conventional", "annotation"))
            add_annotations_mode(p)

    def add_annotations_mode(p, flag="--annotations-mode"):
        p.add_argument(flag, default="hand", dest="annotations_mode",
                       choices=("hand", "inferred", "demand"),
                       help="annotation source for the annotation config: "
                            "hand-written summaries, sound inference from "
                            "callee bodies, or demand-driven inlining at "
                            "opaque call sites (default hand)")

    def add_profile(p):
        p.add_argument("--profile", action="store_true",
                       help="print per-phase wall-clock timings and "
                            "dependence-test family stats to stderr")
        p.add_argument("--profile-top", type=int, default=None,
                       metavar="N",
                       help="also run under cProfile and print the N "
                            "most expensive functions (implies the "
                            "--profile report)")

    def add_jobs(p):
        p.add_argument("--jobs", "-j", type=int, default=None,
                       metavar="N",
                       help="worker processes (default: $REPRO_JOBS or 1 "
                            "= serial; 0 = one per CPU)")

    def add_trace(p):
        p.add_argument("--trace", metavar="FILE",
                       help="write a Chrome trace-event JSON (plus a "
                            "FILE-derived .decisions.jsonl per-loop "
                            "decision log); load FILE in Perfetto")

    p = sub.add_parser("parallelize", help="inline, parallelize, reverse")
    add_files(p)
    p.add_argument("--output", "-o", help="output file (default stdout)")
    p.add_argument("--report", action="store_true",
                   help="print the per-loop report to stderr")
    p.add_argument("--tolerant", action="store_true",
                   help="ingest real-world fixed-form Fortran: dialect "
                        "constructs (EQUIVALENCE, computed GOTO, ENTRY, "
                        "CHARACTER ops, ...) lower to conservative IR and "
                        "malformed statements become recorded diagnostics "
                        "instead of hard errors")
    p.add_argument("--explain", action="store_true",
                   help="print a per-loop decision explanation to stderr")
    p.add_argument("--json", action="store_true",
                   help="print the full result object (annotated source, "
                        "diagnostics, per-loop decisions) as JSON on "
                        "stdout")
    add_profile(p)
    p.set_defaults(fn=cmd_parallelize)

    p = sub.add_parser("report",
                       help="per-loop parallelization report, or (with "
                            "--out) the self-contained HTML dashboard")
    p.add_argument("files", nargs="*", help="Fortran 77 source files")
    p.add_argument("--annotations", help="annotation file")
    p.add_argument("--config", default="annotation",
                   choices=("none", "conventional", "annotation"))
    add_annotations_mode(p)
    add_profile(p)
    p.add_argument("--out", metavar="FILE",
                   help="run the evaluation and write the HTML "
                        "dashboard here instead of a per-loop report")
    p.add_argument("--benchmarks", nargs="+", metavar="NAME",
                   help="dashboard mode: restrict to these benchmarks")
    add_jobs(p)
    p.add_argument("--figure20", action="store_true",
                   help="dashboard mode: include the (slow) Figure 20 "
                        "speedup sweep")
    p.add_argument("--history", metavar="FILE",
                   default="BENCH_history.jsonl",
                   help="dashboard mode: bench-gate trajectory JSONL "
                        "(default BENCH_history.jsonl)")
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("run", help="execute a program on the simulator")
    add_files(p, annotations=False)
    p.add_argument("--machine", default="serial",
                   choices=sorted(_MACHINES))
    p.add_argument("--inputs", nargs="*", default=[],
                   help="values consumed by READ statements")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("verify",
                       help="parallelize and differential-test the result")
    add_files(p)
    p.add_argument("--inputs", nargs="*", default=[])
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("generate",
                       help="derive annotations automatically")
    add_files(p, annotations=False)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("check",
                       help="statically check annotation soundness")
    add_files(p)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("diagnose",
                       help="explain every obstacle keeping loops serial")
    add_files(p, annotations=False)
    p.add_argument("--all", action="store_true",
                   help="include parallelizable loops in the listing")
    p.set_defaults(fn=cmd_diagnose)

    for name, fn in (("table1", cmd_table1), ("table2", cmd_table2),
                     ("figure20", cmd_figure20)):
        p = sub.add_parser(name, help=f"regenerate the paper's {name}")
        add_jobs(p)
        add_trace(p)
        if fn is not cmd_table1:
            add_profile(p)
            p.add_argument("--benchmarks", nargs="+", metavar="NAME",
                           help="restrict to these benchmarks "
                                "(default: the full suite)")
        if fn is cmd_table2:
            p.add_argument("--service", metavar="HOST:PORT",
                           help="assemble the table from submissions to "
                                "a running daemon or cluster gateway "
                                "instead of an in-process pool")
            add_annotations_mode(p, flag="--annotations")
        p.set_defaults(fn=fn)

    p = sub.add_parser("bench", help="full report for one benchmark")
    p.add_argument("name")
    add_jobs(p)
    add_trace(p)
    add_profile(p)
    add_annotations_mode(p, flag="--annotations")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("ablation",
                       help="compare hand vs inferred vs demand "
                            "annotations (#par-loops per benchmark)")
    add_jobs(p)
    add_trace(p)
    p.add_argument("--benchmarks", nargs="+", metavar="NAME",
                   help="restrict to these benchmarks "
                        "(default: the full suite)")
    p.set_defaults(fn=cmd_ablation)

    def add_endpoint(p):
        p.add_argument("--host", default="127.0.0.1",
                       help="service host (default 127.0.0.1)")
        p.add_argument("--port", type=int, default=7411,
                       help="service port (default 7411)")

    p = sub.add_parser("fuzz",
                       help="differential-fuzz the three configurations")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign base seed (default 0); per-program "
                        "seeds derive deterministically from it")
    p.add_argument("--count", type=int, default=None, metavar="N",
                   help="number of programs to generate (default 100 "
                        "when no --time-budget is given)")
    p.add_argument("--time-budget", type=float, default=None,
                   metavar="SECONDS",
                   help="stop starting new batches after this much "
                        "wall-clock time")
    add_jobs(p)
    add_trace(p)
    p.add_argument("--corpus-dir", default=None, metavar="DIR",
                   help="persist failing repros here (e.g. "
                        "tests/fuzz/corpus)")
    p.add_argument("--no-shrink", action="store_true",
                   help="skip delta-debugging of failures")
    p.add_argument("--dialect", default=None,
                   choices=("core", "extended"),
                   help="generator dialect: core, or extended with "
                        "computed-GOTO and DATA productions (default "
                        "$REPRO_FUZZ_DIALECT, else core)")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="print per-batch progress and shrunk repros")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser("serve", help="run the parallelization daemon")
    add_endpoint(p)
    add_jobs(p)
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="bounded job queue size (default 64)")
    p.add_argument("--cache-dir",
                   help="result-cache directory (default: "
                        "$REPRO_CACHE_DIR/results when REPRO_DISK_CACHE "
                        "is on, else memory-only)")
    p.add_argument("--default-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="per-job deadline when the client sets none")
    p.add_argument("--max-retries", type=int, default=1,
                   help="crash retries per job (default 1)")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="on SIGTERM or `shutdown drain`, wait up to "
                        "this long for in-flight jobs (default 30)")
    p.add_argument("--telemetry-dir", default=None, metavar="DIR",
                   help="persist telemetry snapshots/events and spans "
                        "as JSONL under DIR (default: memory only)")
    p.add_argument("--run-id", default=None,
                   help="telemetry run id (default svc-<pid>)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("cluster",
                       help="distributed tier: gateway, cache shards, "
                            "worker nodes")
    csub = p.add_subparsers(dest="cluster_command", required=True)

    c = csub.add_parser("gateway",
                        help="asyncio front door + fleet coordinator")
    add_endpoint(c)
    c.add_argument("--shard", action="append", default=[],
                   metavar="HOST:PORT",
                   help="cache-shard address (repeat per shard; "
                        "default: one in-process shard)")
    c.add_argument("--queue-capacity", type=int, default=256,
                   help="bounded job queue size (default 256)")
    c.add_argument("--cache-capacity", type=int, default=512,
                   help="in-process shard LRU capacity when no --shard "
                        "is given (default 512)")
    c.add_argument("--cache-dir", default=None,
                   help="in-process shard disk tier when no --shard is "
                        "given (default: memory-only)")
    c.add_argument("--default-deadline", type=float, default=None,
                   metavar="SECONDS",
                   help="per-job deadline when the client sets none")
    c.add_argument("--max-retries", type=int, default=1,
                   help="crash retries per job (default 1)")
    c.add_argument("--retry-backoff", type=float, default=0.5,
                   metavar="SECONDS",
                   help="base of the exponential crash-retry backoff "
                        "(default 0.5)")
    c.add_argument("--heartbeat-timeout", type=float, default=5.0,
                   metavar="SECONDS",
                   help="declare a worker node dead after this many "
                        "silent seconds (default 5)")
    c.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="on SIGTERM or `shutdown drain`, wait up to "
                        "this long for in-flight jobs (default 30)")
    c.add_argument("--local-workers", type=int, default=0, metavar="N",
                   help="embed N worker loops in the gateway process "
                        "(default 0: execution comes from the fleet)")
    c.add_argument("--inline", action="store_true",
                   help="run embedded workers in-thread instead of a "
                        "process pool (tests/sandboxes)")
    c.add_argument("--telemetry-dir", default=None, metavar="DIR",
                   help="persist telemetry snapshots/events and spans "
                        "as JSONL under DIR (default: memory only)")
    c.add_argument("--telemetry-interval", type=float, default=2.0,
                   metavar="SECONDS",
                   help="seconds between background telemetry "
                        "snapshots (default 2)")
    c.add_argument("--run-id", default=None,
                   help="telemetry run id (default gw-<pid>)")
    c.set_defaults(fn=cmd_cluster_gateway)

    c = csub.add_parser("shard", help="one cache-shard node")
    add_endpoint(c)
    c.add_argument("--capacity", type=int, default=512,
                   help="memory LRU capacity (default 512)")
    c.add_argument("--cache-dir", default=None,
                   help="disk tier directory (default: memory-only)")
    c.add_argument("--max-bytes", type=int, default=None,
                   help="disk tier size bound in bytes (default: "
                        "$REPRO_CACHE_MAX_BYTES, else 256 MiB; "
                        "0 = unlimited)")
    c.set_defaults(fn=cmd_cluster_shard)

    c = csub.add_parser("worker", help="one worker node of the fleet")
    c.add_argument("--gateway", default="127.0.0.1:7411",
                   metavar="HOST:PORT",
                   help="gateway to pull work from "
                        "(default 127.0.0.1:7411)")
    c.add_argument("--name", default=None,
                   help="node name (default worker-<host>-<pid>)")
    c.add_argument("--threads", type=int, default=1,
                   help="concurrent jobs this node executes (default 1)")
    add_jobs(c)
    c.add_argument("--pull-wait", type=float, default=1.0,
                   metavar="SECONDS",
                   help="work-pull long-poll budget (default 1)")
    c.add_argument("--heartbeat-interval", type=float, default=1.0,
                   metavar="SECONDS",
                   help="seconds between heartbeats (default 1)")
    c.add_argument("--inline", action="store_true",
                   help="execute in-thread instead of a process pool "
                        "(tests/sandboxes)")
    c.set_defaults(fn=cmd_cluster_worker)

    p = sub.add_parser("loadtest",
                       help="replay concurrent client sessions against "
                            "a daemon or gateway and report latency, "
                            "throughput, and correctness")
    add_endpoint(p)
    p.add_argument("--sessions", type=int, default=1000,
                   help="concurrent client sessions (default 1000)")
    p.add_argument("--jobs-per-session", type=int, default=1,
                   help="submits each session performs (default 1)")
    p.add_argument("--distinct", type=int, default=64,
                   help="distinct payloads across the run — smaller "
                        "values exercise dedup harder (default 64)")
    p.add_argument("--kind", default="probe",
                   choices=("probe", "benchmark"),
                   help="payload kind: instant probes measure the "
                        "service, benchmark payloads soak the pipeline")
    p.add_argument("--benchmark", default="tref",
                   help="benchmark name for --kind benchmark "
                        "(default tref)")
    p.add_argument("--wait-timeout", type=float, default=120.0,
                   metavar="SECONDS",
                   help="per-job wait budget (default 120)")
    p.add_argument("--no-verify", action="store_true",
                   help="skip comparing results against a locally "
                        "computed reference")
    p.add_argument("--spawn", action="store_true",
                   help="spawn a throwaway localhost cluster (gateway + "
                        "shards + workers) and loadtest that instead of "
                        "--host/--port")
    p.add_argument("--spawn-shards", type=int, default=2,
                   help="--spawn: cache shards (default 2)")
    p.add_argument("--spawn-workers", type=int, default=2,
                   help="--spawn: worker nodes (default 2)")
    p.add_argument("--spawn-threads", type=int, default=2,
                   help="--spawn: threads per worker (default 2)")
    p.add_argument("--gate", action="store_true",
                   help="append a 'loadtest' suite record to the bench "
                        "history for the dashboard trajectory chart")
    p.add_argument("--history", default="BENCH_history.jsonl",
                   help="history JSONL for --gate "
                        "(default BENCH_history.jsonl)")
    p.add_argument("--json", action="store_true",
                   help="print the full JSON report")
    p.add_argument("--trace", action="store_true",
                   help="open one distributed trace for the run (every "
                        "submit carries the root context; stitch with "
                        "`repro trace-collect` afterwards)")
    p.add_argument("--slo", default=None, metavar="SPEC.json",
                   help="evaluate the report against a declarative SLO "
                        "spec; violations exit 3 (the CI gate)")
    p.set_defaults(fn=cmd_loadtest)

    p = sub.add_parser("submit",
                       help="submit a benchmark name or source files "
                            "to a running daemon")
    p.add_argument("targets", nargs="+",
                   help="a benchmark name (e.g. adm) or Fortran files")
    p.add_argument("--annotations", help="annotation file")
    p.add_argument("--config", default="annotation",
                   choices=("none", "conventional", "annotation"))
    p.add_argument("--parallelize", action="store_true",
                   help="submit the files as a tolerant-frontend "
                        "parallelize job: real-world dialect accepted, "
                        "response carries diagnostics and per-loop "
                        "explanations")
    add_annotations_mode(p)
    add_endpoint(p)
    p.add_argument("--timeout", type=float, default=None,
                   metavar="SECONDS", help="job deadline / wait limit")
    p.add_argument("--no-wait", action="store_true",
                   help="return the job id immediately instead of "
                        "waiting for the result")
    p.add_argument("--output", "-o",
                   help="write the optimized source to a file")
    p.add_argument("--json", action="store_true",
                   help="print the raw JSON response")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("svc-status", help="daemon health and metrics")
    add_endpoint(p)
    p.add_argument("--metrics", action="store_true",
                   help="include the JSON metrics dump")
    p.add_argument("--prometheus", action="store_true",
                   help="print Prometheus text-format metrics only")
    p.set_defaults(fn=cmd_svc_status)

    p = sub.add_parser("top",
                       help="live terminal status board: queue, "
                            "workers, shards, events, SLO burn rates")
    add_endpoint(p)
    p.add_argument("--interval", type=float, default=2.0,
                   metavar="SECONDS",
                   help="seconds between frames (default 2)")
    p.add_argument("--iterations", type=int, default=None, metavar="N",
                   help="stop after N frames (default: run forever)")
    p.add_argument("--once", action="store_true",
                   help="print a single frame and exit")
    p.add_argument("--slo", default=None, metavar="SPEC.json",
                   help="render live SLO burn rates from this spec")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("trace-collect",
                       help="stitch one run's distributed spans into a "
                            "Perfetto-loadable Chrome trace")
    p.add_argument("run_id", nargs="?", default=None,
                   help="run id (required with --telemetry-dir when "
                        "several runs are stored; otherwise defaults "
                        "to the gateway's)")
    add_endpoint(p)
    p.add_argument("--telemetry-dir", default=None, metavar="DIR",
                   help="stitch offline from persisted JSONL instead "
                        "of asking a live gateway")
    p.add_argument("--trace-id", default=None,
                   help="keep only this trace's spans")
    p.add_argument("--out", "-o", default=None,
                   help="output file (default trace-<run_id>.json)")
    p.set_defaults(fn=cmd_trace_collect)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    import os
    from repro.experiments.executor import JobsError
    from repro.obs import logging as obs_logging
    args = build_parser().parse_args(argv)
    if args.log_level:
        # export so spawned worker processes (and the service's pool)
        # inherit the threshold without re-plumbing the flag
        os.environ["REPRO_LOG_LEVEL"] = args.log_level
    if args.backend:
        # same trick: one env var reaches every make_interpreter call,
        # including worker processes
        os.environ["REPRO_BACKEND"] = args.backend
    obs_logging.configure(level=args.log_level)
    with obs_logging.log_context(run_id=obs_logging.new_run_id()):
        try:
            return args.fn(args)
        except JobsError as exc:
            print(f"repro: error: {exc}", file=sys.stderr)
            return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
