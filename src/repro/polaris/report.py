"""Parallelization reports.

A :class:`Report` records one verdict per analyzed loop: whether it was
parallelized and, if not, the first legality reason that failed.  The
Table II harness diffs reports across inlining configurations to compute
``#par-loops`` / ``#par-loss`` / ``#par-extra`` exactly the way the paper
counts them: per *original* loop (origin identity), so a loop duplicated
by inlining counts once no matter how many copies were parallelized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class LoopVerdict:
    origin: Optional[str]
    unit: str
    var: str
    parallelized: bool
    reason: str = ""          # failure reason ('' when parallelized)
    detail: str = ""          # offending variable/procedure, if any
    private: tuple = ()
    reductions: tuple = ()

    def describe(self) -> str:
        state = "PARALLEL" if self.parallelized else \
            f"serial ({self.reason}{': ' + self.detail if self.detail else ''})"
        return f"{self.unit}: DO {self.var} [{self.origin}] -> {state}"


#: canonical display order of the pipeline's timed phases
PHASES = ("parse", "normalize", "summaries", "dependence",
          "infer", "inline", "reverse", "tune")


def merge_timings(into: Dict[str, float],
                  add: Dict[str, float]) -> Dict[str, float]:
    """Accumulate per-phase wall-clock seconds (in place; returned)."""
    for phase, seconds in add.items():
        into[phase] = into.get(phase, 0.0) + seconds
    return into


@dataclass
class Report:
    verdicts: List[LoopVerdict] = field(default_factory=list)
    #: per-phase wall-clock seconds (keys from PHASES), filled by the
    #: driver and the experiment pipeline, shown by the CLI's --profile
    timings: Dict[str, float] = field(default_factory=dict)
    #: dependence-test family counters accumulated over every unit's
    #: tester (TestStats field -> count), shown by --profile
    test_stats: Dict[str, int] = field(default_factory=dict)

    def add(self, v: LoopVerdict) -> None:
        self.verdicts.append(v)

    def add_timing(self, phase: str, seconds: float) -> None:
        self.timings[phase] = self.timings.get(phase, 0.0) + seconds

    def parallel_origins(self) -> Set[str]:
        """Origins of parallelized loops (each original loop once)."""
        return {v.origin for v in self.verdicts
                if v.parallelized and v.origin is not None}

    def parallel_count(self) -> int:
        """Number of distinct original loops parallelized; generated loops
        (no origin) are excluded — they do not exist in the original
        benchmark."""
        return len(self.parallel_origins())

    def reasons_histogram(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.verdicts:
            if not v.parallelized:
                out[v.reason] = out.get(v.reason, 0) + 1
        return out

    def verdict_for(self, origin: str) -> Optional[LoopVerdict]:
        best: Optional[LoopVerdict] = None
        for v in self.verdicts:
            if v.origin == origin:
                if v.parallelized:
                    return v
                best = best or v
        return best

    def describe(self) -> str:
        return "\n".join(v.describe() for v in self.verdicts)


@dataclass(frozen=True)
class ConfigComparison:
    """Table II row fragment: a configuration measured against the
    no-inlining baseline."""

    par_loops: int
    par_loss: int
    par_extra: int

    @staticmethod
    def against_baseline(baseline: Set[str],
                         config: Set[str]) -> "ConfigComparison":
        return ConfigComparison(
            par_loops=len(config),
            par_loss=len(baseline - config),
            par_extra=len(config - baseline),
        )
