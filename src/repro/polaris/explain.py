"""Loop-by-loop dependence diagnosis.

The parallelizer's verdicts stop at the *first* blocking problem; this
module answers the developer question "everything that keeps this loop
serial", which is how one decides where an annotation would pay off:

* every pair of array references with an unresolved carried dependence,
  classified flow/anti/output, with the subscript expressions;
* every scalar with cross-iteration flow or uncomputable last value;
* every opaque call / I/O statement / control-flow obstacle.

``diagnose_program`` aggregates the diagnoses of all serial loops,
sorted so the most annotation-amenable candidates (blocked only by
calls) come first — the workflow the paper's Section III-B implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analysis.defuse import collect_accesses
from repro.analysis.loops import LoopInfo, iter_loops, loop_ctx
from repro.analysis.privatization import (ScalarClass, array_privatizable,
                                          classify_scalars)
from repro.analysis.reductions import find_reductions
from repro.analysis.sideeffects import compute_summaries
from repro.fortran import ast
from repro.fortran.unparser import expr_to_str
from repro.polaris.parallelizer import LegalityAnalyzer, _ArrayRefSite
from repro.program import Program
from repro.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class DependenceEdge:
    array: str
    kind: str  # 'flow' | 'anti' | 'output'
    source: str  # rendered reference text
    sink: str

    def describe(self) -> str:
        return (f"{self.kind} dependence on {self.array}: "
                f"{self.source} -> {self.sink}")


@dataclass
class LoopDiagnosis:
    unit: str
    var: str
    origin: Optional[str]
    parallel: bool
    obstacles: List[str] = field(default_factory=list)
    dependences: List[DependenceEdge] = field(default_factory=list)
    #: names of procedures whose annotation would remove an obstacle
    annotation_candidates: List[str] = field(default_factory=list)

    def describe(self) -> str:
        head = f"{self.unit}: DO {self.var}"
        if self.parallel:
            return f"{head}: parallelizable"
        lines = [f"{head}: serial"]
        lines += [f"  - {o}" for o in self.obstacles]
        lines += [f"  - {d.describe()}" for d in self.dependences]
        if self.annotation_candidates:
            lines.append("  annotation candidates: "
                         + ", ".join(self.annotation_candidates))
        return "\n".join(lines)


def diagnose_loop(program: Program, unit: ast.ProgramUnit,
                  info: LoopInfo,
                  summaries=None,
                  tracer: Optional[Tracer] = None) -> LoopDiagnosis:
    """Exhaustive diagnosis of one loop (does not stop at the first
    obstacle, unlike the legality analyzer)."""
    tracer = tracer or NULL_TRACER
    with tracer.span(f"diagnose {unit.name}/{info.loop.var}",
                     cat="diagnosis"):
        diag = _diagnose_loop(program, unit, info, summaries)
    if tracer.enabled:
        tracer.instant(f"diagnosis {unit.name}/{info.loop.var}",
                       cat="diagnosis", parallel=diag.parallel,
                       obstacles=len(diag.obstacles),
                       dependences=len(diag.dependences))
    return diag


def _diagnose_loop(program: Program, unit: ast.ProgramUnit,
                   info: LoopInfo, summaries=None) -> LoopDiagnosis:
    table = program.symtab(unit)
    summaries = summaries or compute_summaries(program)
    analyzer = LegalityAnalyzer(table, summaries)
    loop = info.loop
    diag = LoopDiagnosis(unit.name, loop.var, info.origin, False)

    acc = collect_accesses(loop.body, table)
    if acc.has_goto:
        diag.obstacles.append("unstructured control flow (GOTO)")
    if acc.has_stop:
        diag.obstacles.append("possible early termination (STOP)")
    if acc.has_io:
        diag.obstacles.append("program I/O in the loop body")
    if acc.has_opaque:
        diag.obstacles.append(
            "unanalyzable statement in the body (ENTRY or unlowered text)")
    for name in sorted(acc.unanalyzable):
        diag.obstacles.append(
            f"unanalyzable access to {name} (substring or assigned label)")
    for name in sorted(set(acc.scalar_reads) | set(acc.scalar_writes)
                       | {a for a, _, _ in acc.array_accesses}):
        v = table.declared(name)
        if v is not None and v.equivalenced:
            diag.obstacles.append(
                f"{name} is storage-associated via EQUIVALENCE")

    # calls
    for s in ast.walk_stmts(loop.body):
        if isinstance(s, ast.CallStmt):
            summary = summaries.get(s.name.upper())
            if summary is None or not summary.pure:
                diag.obstacles.append(
                    f"opaque call to {s.name.upper()}")
                diag.annotation_candidates.append(s.name.upper())

    # scalars
    classes = classify_scalars(loop.body, table)
    reductions = find_reductions(loop.body, table)
    inner_indices = {s.var.upper() for s in ast.walk_stmts(loop.body)
                     if isinstance(s, ast.DoLoop)}
    for name, cls in sorted(classes.items()):
        if name not in acc.scalar_writes or name in reductions \
                or name in inner_indices:
            continue
        if cls is ScalarClass.READ_FIRST:
            diag.obstacles.append(
                f"scalar {name} carries values across iterations")
        elif cls is ScalarClass.CONDITIONAL_WRITE:
            diag.obstacles.append(
                f"scalar {name} is conditionally assigned (no "
                f"computable last value)")

    # arrays: enumerate every unresolved pair
    sites = analyzer._array_sites(loop.body)
    loops_ctx = [loop_ctx(lp) for lp in info.enclosing] + [loop_ctx(loop)]
    for array, refs in sorted(sites.items()):
        if not any(r.is_write for r in refs):
            continue
        edges = _pair_edges(analyzer, array, refs, info, loops_ctx)
        if edges and array_privatizable(array, loop.body, table,
                                        loop_var=loop.var):
            continue  # resolved by privatization
        diag.dependences.extend(edges)

    diag.parallel = not diag.obstacles and not diag.dependences
    # deduplicate candidates, preserving order
    seen = set()
    diag.annotation_candidates = [
        c for c in diag.annotation_candidates
        if not (c in seen or seen.add(c))]
    return diag


def _pair_edges(analyzer: LegalityAnalyzer, array: str,
                refs: List[_ArrayRefSite], info: LoopInfo,
                loops_ctx) -> List[DependenceEdge]:
    edges: List[DependenceEdge] = []
    lvar = info.loop.var.upper()
    rank = analyzer._declared_rank(array)
    forms = [analyzer._affine_forms(r, info, rank) for r in refs]
    for i in range(len(refs)):
        for j in range(i, len(refs)):
            if not (refs[i].is_write or refs[j].is_write):
                continue
            dirs = {lp.var: "=" for lp in info.enclosing}
            dirs[lvar] = "<"
            for lp in refs[i].inner_loops + refs[j].inner_loops:
                dirs[lp.var.upper()] = "*"
            seen_ids = set()
            inner = [lp for lp in refs[i].inner_loops + refs[j].inner_loops
                     if id(lp) not in seen_ids and not seen_ids.add(id(lp))]
            all_loops = loops_ctx + [loop_ctx(lp) for lp in inner]
            # each direction is a distinct dependence with its own kind:
            # source executes in the earlier iteration
            if analyzer.tester.may_depend(forms[i], forms[j],
                                          all_loops, dirs):
                edges.append(DependenceEdge(
                    array, _kind(refs[i], refs[j]),
                    _render(array, refs[i]), _render(array, refs[j])))
            if i != j and analyzer.tester.may_depend(forms[j], forms[i],
                                                     all_loops, dirs):
                edges.append(DependenceEdge(
                    array, _kind(refs[j], refs[i]),
                    _render(array, refs[j]), _render(array, refs[i])))
    return edges


def _kind(a: _ArrayRefSite, b: _ArrayRefSite) -> str:
    if a.is_write and b.is_write:
        return "output"
    return "flow" if a.is_write else "anti"


def _render(array: str, site: _ArrayRefSite) -> str:
    if not site.subs:
        return array
    return f"{array}({','.join(expr_to_str(s) for s in site.subs)})"


def diagnose_program(program: Program,
                     tracer: Optional[Tracer] = None) -> List[LoopDiagnosis]:
    """Diagnoses for every loop in the program, annotation-amenable
    serial loops first."""
    tracer = tracer or NULL_TRACER
    with tracer.span("diagnose-program", cat="diagnosis"):
        with tracer.span("summaries", cat="diagnosis"):
            summaries = compute_summaries(program)
        out: List[LoopDiagnosis] = []
        for unit in program.units:
            for info in iter_loops(unit.body):
                out.append(diagnose_loop(program, unit, info, summaries,
                                         tracer))

    def rank(d: LoopDiagnosis) -> Tuple[int, int]:
        if d.parallel:
            return (2, 0)
        if d.annotation_candidates and not d.dependences:
            return (0, len(d.obstacles))
        return (1, len(d.obstacles) + len(d.dependences))

    return sorted(out, key=rank)
