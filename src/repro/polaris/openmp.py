"""OpenMP directive utilities.

The directive *representation* lives in the AST
(:class:`~repro.fortran.ast.OmpParallelDo`); this module provides the
operations the rest of the system needs on top of it: enumerating parallel
loops, stripping directives (to recover the serial program), and checking
clause well-formedness before unparsing.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.errors import SemanticError
from repro.fortran import ast
from repro.program import Program

#: reduction operators OpenMP (and our runtime) accept
REDUCTION_OPS = {"+", "*", "MAX", "MIN"}


def parallel_loops(body: List[ast.Stmt]) -> Iterator[ast.OmpParallelDo]:
    for s in ast.walk_stmts(body):
        if isinstance(s, ast.OmpParallelDo):
            yield s


def count_directives(program: Program) -> int:
    return sum(1 for u in program.units for _ in parallel_loops(u.body))


def strip_directives(body: List[ast.Stmt]) -> List[ast.Stmt]:
    """Return ``body`` with every OmpParallelDo unwrapped to its loop."""

    def unwrap(s: ast.Stmt):
        if isinstance(s, ast.OmpParallelDo):
            return [s.loop]
        return None

    return ast.map_stmts(body, unwrap)


def validate(omp: ast.OmpParallelDo) -> None:
    """Reject malformed clause sets before they reach the unparser or the
    runtime simulator."""
    seen = set()
    for name in omp.private:
        if name in seen:
            raise SemanticError(f"duplicate PRIVATE({name})")
        seen.add(name)
    for op, var in omp.reductions:
        if op.upper() not in REDUCTION_OPS:
            raise SemanticError(f"unsupported REDUCTION operator {op!r}")
        if var in seen:
            raise SemanticError(
                f"{var} appears in both PRIVATE and REDUCTION")
        seen.add(var)
    if omp.loop.var.upper() in seen:
        raise SemanticError(
            f"loop index {omp.loop.var} must not appear in clauses")


def disabled_copy(omp: ast.OmpParallelDo) -> ast.DoLoop:
    """The serial form of a parallel loop (used by the tuning pass)."""
    return omp.loop
