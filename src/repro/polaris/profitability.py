"""Parallelization profitability heuristics.

Polaris used "simplistic heuristics, e.g., all parallelized loops need to
exceed a certain number of iterations" (paper Section III-C2).  We model
exactly that: a loop with a *known* trip count below the threshold is not
worth the fork/join overhead; unknown trip counts are presumed large.
A loop whose body performs no memory traffic at all (rare, but generated
code can produce it) is also skipped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.defuse import collect_accesses
from repro.analysis.loops import trip_count
from repro.fortran import ast
from repro.fortran.symbols import SymbolTable


@dataclass(frozen=True)
class ProfitabilityPolicy:
    #: minimum known trip count worth parallelizing
    min_trip_count: int = 4

    def profitable(self, loop: ast.DoLoop, table: SymbolTable) -> bool:
        trips = trip_count(loop)
        if trips is not None and trips < self.min_trip_count:
            return False
        acc = collect_accesses(loop.body, table)
        if not acc.array_accesses and not acc.has_call:
            return False
        return True
