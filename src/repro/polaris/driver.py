"""The Polaris-like compiler driver.

Runs the full source-to-source automatic parallelization pipeline on a
:class:`~repro.program.Program`:

1. origin stamping (stable loop identities for Table II accounting);
2. normalization (parameter propagation, induction substitution, forward
   substitution) — the transformations the paper notes Polaris applies and
   the reverse inliner must tolerate;
3. interprocedural side-effect summaries;
4. per-loop legality + profitability, **outermost first**: when an outer
   loop is parallelized its inner loops are still analyzed and may also
   receive directives (the paper's Figure 17 shows exactly such nested
   regions); at execution time nested regions run serially, matching
   OpenMP's default;
5. OpenMP directive insertion (:class:`~repro.fortran.ast.OmpParallelDo`).

The driver mutates the program in place and returns a
:class:`~repro.polaris.report.Report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional

from repro.analysis.dependence import DependenceTester, TestStats
from repro.analysis.loops import assign_origins
from repro.analysis.normalize import normalize_unit
from repro.analysis.loops import LoopInfo
from repro.analysis.sideeffects import Summary, compute_summaries
from repro.fortran import ast
from repro.obs import metrics as obs_metrics
from repro.obs.profile import FAMILIES, accumulate_test_stats
from repro.polaris.parallelizer import LegalityAnalyzer
from repro.polaris.profitability import ProfitabilityPolicy
from repro.polaris.report import LoopVerdict, Report
from repro.program import Program
from repro.trace import NULL_TRACER, LoopDecision, Tracer

#: TestStats counters recorded as per-loop dependence-test deltas
_STAT_FIELDS = ("ziv_independent", "gcd_independent",
                "banerjee_independent", "exact_independent",
                "assumed_dependent", "cache_hits")


def _stats_snapshot(stats: TestStats) -> tuple:
    return tuple(getattr(stats, name) for name in _STAT_FIELDS)


def _stats_delta(before: tuple, after: tuple) -> Dict[str, int]:
    return {name: b - a
            for name, a, b in zip(_STAT_FIELDS, before, after) if b != a}


@dataclass(frozen=True)
class PolarisOptions:
    normalize: bool = True
    use_banerjee: bool = True
    #: also run the joint Fourier-Motzkin test (coupled subscripts)
    use_exact: bool = False
    min_trip_count: int = 4
    parallelize_nested: bool = True
    #: origins the empirical tuning pass decided to keep serial (Figure 20)
    disabled_origins: frozenset = frozenset()


class _UnitState:
    """The per-unit analysis context, rebuildable mid-run.

    Demand-driven inlining mutates the unit while its loops are being
    analyzed; :meth:`refresh` re-derives the symbol table and legality
    analyzer (keeping the dependence tester, so TestStats accumulate
    across refreshes)."""

    def __init__(self, program: Program, unit: ast.ProgramUnit,
                 summaries: Dict[str, Summary], options: PolarisOptions):
        self.program = program
        self.unit = unit
        self.summaries = summaries
        self.tester = DependenceTester(use_banerjee=options.use_banerjee,
                                       use_exact=options.use_exact)
        self.refresh()

    def refresh(self) -> None:
        self.table = self.program.symtab(self.unit)
        self.analyzer = LegalityAnalyzer(self.table, self.summaries,
                                         self.tester)


#: bound on demand-resolution retries per loop (each retry resolves one
#: distinct callee; real loops have a handful of calls)
_MAX_DEMAND_RETRIES = 16


@dataclass
class Polaris:
    options: PolarisOptions = field(default_factory=PolarisOptions)
    #: optional :class:`repro.inlining.demand.DemandInliner`; when set,
    #: loops rejected on an opaque CALL get their callees resolved on
    #: demand (annotation or body) and are re-analyzed
    demand: Optional[object] = None

    def run(self, program: Program,
            tracer: Optional[Tracer] = None) -> Report:
        tracer = tracer or NULL_TRACER
        report = Report()
        t0 = perf_counter()
        with tracer.span("normalize"):
            for unit in program.units:
                assign_origins(unit)
            program.invalidate()
            if self.options.normalize:
                for unit in program.units:
                    normalize_unit(unit, program.symtab(unit))
        report.add_timing("normalize", perf_counter() - t0)
        t0 = perf_counter()
        with tracer.span("summaries", units=len(program.units)):
            summaries = compute_summaries(program)
        report.add_timing("summaries", perf_counter() - t0)
        t0 = perf_counter()
        with tracer.span("dependence"):
            for unit in program.units:
                with tracer.span(f"unit {unit.name}", cat="unit"):
                    self._parallelize_unit(program, unit, summaries,
                                           report, tracer)
            program.invalidate()
        report.add_timing("dependence", perf_counter() - t0)
        self._observe(report)
        return report

    @staticmethod
    def _observe(report: Report) -> None:
        """Publish this run's dependence-test and verdict counts to the
        default metrics registry (worker-side deltas of these are what
        the executor merges back into the parent)."""
        stats = report.test_stats
        attempts = obs_metrics.counter(
            "repro_dep_tests_total", "dependence-test attempts by family")
        kills = obs_metrics.counter(
            "repro_dep_independent_total",
            "dependences disproved, by family")
        for name, attempts_field, kills_field in FAMILIES:
            family = name.lower()
            attempts.inc(stats.get(attempts_field, 0), family=family)
            kills.inc(stats.get(kills_field, 0), family=family)
        obs_metrics.counter(
            "repro_dep_assumed_total",
            "queries no test could disprove").inc(
                stats.get("assumed_dependent", 0))
        obs_metrics.counter(
            "repro_dep_cache_hits_total",
            "dependence queries answered from the memo table").inc(
                stats.get("cache_hits", 0))
        loops = obs_metrics.counter("repro_loops_total",
                                    "analyzed loops by verdict")
        npar = sum(1 for v in report.verdicts if v.parallelized)
        loops.inc(npar, verdict="parallel")
        loops.inc(len(report.verdicts) - npar, verdict="serial")

    # ------------------------------------------------------------------
    def _parallelize_unit(self, program: Program, unit: ast.ProgramUnit,
                          summaries: Dict[str, Summary],
                          report: Report,
                          tracer: Tracer = NULL_TRACER) -> None:
        state = _UnitState(program, unit, summaries, self.options)
        policy = ProfitabilityPolicy(self.options.min_trip_count)

        def process(body: List[ast.Stmt],
                    enclosing: List[ast.DoLoop]) -> List[ast.Stmt]:
            out: List[ast.Stmt] = []
            for s in body:
                if isinstance(s, ast.DoLoop):
                    out.append(self._try_loop(s, enclosing, state, policy,
                                              report, process, tracer))
                elif isinstance(s, ast.IfBlock):
                    out.append(ast.IfBlock(
                        [(c, process(b, enclosing)) for c, b in s.arms],
                        s.label))
                elif isinstance(s, ast.TaggedBlock):
                    out.append(ast.TaggedBlock(
                        s.callee, s.site_id, s.actuals,
                        process(s.body, enclosing), s.label))
                else:
                    out.append(s)
            return out

        unit.body = process(unit.body, [])
        accumulate_test_stats(report.test_stats, state.tester.stats)

    def _try_loop(self, loop: ast.DoLoop, enclosing: List[ast.DoLoop],
                  state: _UnitState, policy: ProfitabilityPolicy,
                  report: Report, process,
                  tracer: Tracer = NULL_TRACER) -> ast.Stmt:
        info = LoopInfo(loop, list(enclosing))
        traced = tracer.enabled
        if traced:
            stats_before = _stats_snapshot(state.tester.stats)
        verdict = state.analyzer.analyze(info)
        if self.demand is not None:
            for _ in range(_MAX_DEMAND_RETRIES):
                if verdict.parallelized or verdict.reason != "call" \
                        or not verdict.detail:
                    break
                if not self.demand.resolve(state.program, state.unit, loop,
                                           verdict.detail, tracer):
                    break
                state.refresh()
                info = LoopInfo(loop, list(enclosing))
                verdict = state.analyzer.analyze(info)
        origin = info.origin
        if verdict.parallelized and origin in self.options.disabled_origins:
            verdict = replace_verdict(verdict, False, "tuning-disabled")
        profitability = "not-evaluated"
        if verdict.parallelized:
            if policy.profitable(loop, state.table):
                profitability = "profitable"
            else:
                profitability = "unprofitable"
                verdict = replace_verdict(verdict, False, "unprofitable")
        report.add(verdict)
        if traced:
            tracer.decision(LoopDecision(
                unit=verdict.unit, var=verdict.var, origin=origin,
                parallel=verdict.parallelized, reason=verdict.reason,
                detail=verdict.detail, private=tuple(verdict.private),
                reductions=tuple(verdict.reductions),
                profitability=profitability,
                dep_tests=_stats_delta(
                    stats_before,
                    _stats_snapshot(state.tester.stats))))

        inner_body = (process(loop.body, enclosing + [loop])
                      if self.options.parallelize_nested
                      else loop.body)
        new_loop = ast.DoLoop(loop.var, loop.start, loop.stop, loop.step,
                              inner_body, loop.label, loop.term_label)
        if hasattr(loop, "origin"):
            new_loop.origin = loop.origin  # type: ignore[attr-defined]
        if not verdict.parallelized:
            return new_loop
        return ast.OmpParallelDo(new_loop, private=verdict.private,
                                 reductions=verdict.reductions)


def replace_verdict(v: LoopVerdict, parallelized: bool,
                    reason: str) -> LoopVerdict:
    return LoopVerdict(v.origin, v.unit, v.var, parallelized, reason,
                       private=v.private, reductions=v.reductions)
