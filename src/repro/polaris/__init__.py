"""A Polaris-class automatic loop parallelizer.

Composes the analyses in :mod:`repro.analysis` into loop-by-loop legality
decisions, wraps parallel loops in OpenMP directives, and records a
machine-readable report that the Table II harness consumes.

Public entry point: :class:`repro.polaris.driver.Polaris`.
"""

from repro.polaris.driver import Polaris, PolarisOptions  # noqa: F401
from repro.polaris.report import LoopVerdict, Report  # noqa: F401
