"""Loop parallelization legality analysis.

For a candidate loop ``L`` the analyzer checks, in order:

1. **control flow** — no GOTO, STOP or RETURN anywhere in the body;
2. **I/O** — no READ/WRITE/PRINT (the paper's "debugging and error
   checking" obstacle: conservative compilers must keep such loops
   serial);
3. **procedure calls** — every CALL (and user function reference) must be
   provably side-effect-free per the interprocedural summaries.  This is
   where opaque calls serialize loops in the no-inlining configuration —
   the premise of the whole paper;
4. **scalars** — every scalar written in the body must be write-first
   (privatizable), a recognized reduction, or an inner loop index;
5. **arrays** — for every array written in the body, all access pairs are
   subjected to the dependence tester under the ``(outer '=', L '<',
   inner '*')`` direction constraint in both orders; arrays with surviving
   carried dependences must pass the kill analysis (privatization).

The verdict carries the failure reason so reports can explain Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.affine import AffineForm, extract
from repro.analysis.defuse import collect_accesses
from repro.analysis.dependence import DependenceTester, LoopCtx
from repro.analysis.loops import LoopInfo, loop_ctx
from repro.analysis.privatization import (ScalarClass, array_privatizable,
                                          classify_scalars)
from repro.analysis.reductions import find_reductions
from repro.analysis.sideeffects import Summary
from repro.fortran import ast
from repro.fortran.intrinsics import is_intrinsic
from repro.fortran.symbols import SymbolTable
from repro.naming import is_capture_array
from repro.polaris.report import LoopVerdict


@dataclass
class _ArrayRefSite:
    subs: Tuple[ast.Expr, ...]
    is_write: bool
    #: loops inside L enclosing this reference
    inner_loops: Tuple[ast.DoLoop, ...]


@dataclass
class LegalityAnalyzer:
    table: SymbolTable
    summaries: Dict[str, Summary]
    tester: DependenceTester = field(default_factory=DependenceTester)

    # ------------------------------------------------------------------
    def analyze(self, info: LoopInfo) -> LoopVerdict:
        loop = info.loop
        body = loop.body

        def fail(reason: str, detail: str = "") -> LoopVerdict:
            return LoopVerdict(info.origin, self.table.unit_name, loop.var,
                               False, reason, detail)

        acc = collect_accesses(body, self.table)
        if acc.has_goto:
            return fail("control-flow", "GOTO")
        if acc.has_stop:
            return fail("control-flow", "STOP")
        for s in ast.walk_stmts(body):
            if isinstance(s, ast.Return):
                return fail("control-flow", "RETURN")
        if acc.has_io:
            return fail("io")
        if acc.has_opaque:
            return fail("unanalyzable",
                        "unlowered statement or ENTRY point in body")
        if acc.unanalyzable:
            return fail("unanalyzable", sorted(acc.unanalyzable)[0])
        equivalenced = self._equivalenced_access(acc)
        if equivalenced:
            return fail("equivalence", equivalenced)
        if loop.var.upper() in acc.scalar_writes:
            return fail("index-modified", loop.var)

        bad_call = self._check_calls(body)
        if bad_call:
            return fail("call", bad_call)

        # scalars --------------------------------------------------------
        classes = classify_scalars(body, self.table)
        reductions = find_reductions(body, self.table)
        private: List[str] = []
        red_clauses: List[Tuple[str, str]] = []
        inner_indices = {s.var.upper() for s in ast.walk_stmts(body)
                         if isinstance(s, ast.DoLoop)}
        for name, cls in sorted(classes.items()):
            written = self._scalar_written(name, acc)
            if not written:
                continue
            if name in reductions:
                red_clauses.append((reductions[name], name))
            elif cls is ScalarClass.WRITE_FIRST or name in inner_indices:
                private.append(name)
            else:
                # READ_FIRST (cross-iteration flow) and CONDITIONAL_WRITE
                # (no computable last value) both keep the loop serial
                return fail("scalar-dep", name)

        # arrays ---------------------------------------------------------
        sites = self._array_sites(body)
        loops_ctx = [loop_ctx(lp) for lp in info.enclosing] + [loop_ctx(loop)]
        for array, refs in sorted(sites.items()):
            if not any(r.is_write for r in refs):
                continue
            if is_capture_array(array):
                # unknown() capture arrays are iteration-scratch by
                # construction: written before read within the tagged
                # block, dead afterwards
                private.append(array)
                continue
            if self._carried(array, refs, info, loops_ctx):
                if array_privatizable(array, body, self.table,
                                      loop_var=loop.var):
                    private.append(array)
                else:
                    return fail("array-dep", array)

        return LoopVerdict(info.origin, self.table.unit_name, loop.var, True,
                           private=tuple(private),
                           reductions=tuple(red_clauses))

    # ------------------------------------------------------------------
    def _check_calls(self, body: Sequence[ast.Stmt]) -> Optional[str]:
        for s in ast.walk_stmts(body):
            if isinstance(s, ast.CallStmt):
                summary = self.summaries.get(s.name.upper())
                if summary is None or not summary.pure:
                    return s.name.upper()
        for e in ast.walk_all_exprs(body):
            if isinstance(e, ast.FuncRef) and not is_intrinsic(e.name):
                summary = self.summaries.get(e.name.upper())
                if summary is None or not summary.pure:
                    return e.name.upper()
        return None

    def _scalar_written(self, name: str, acc) -> bool:
        return name in acc.scalar_writes

    def _equivalenced_access(self, acc) -> Optional[str]:
        """First accessed name that is storage-associated via EQUIVALENCE
        (aliasing makes the per-array dependence model unsound)."""
        accessed = (set(acc.scalar_reads) | set(acc.scalar_writes)
                    | {name for name, _, _ in acc.array_accesses}
                    | set(acc.call_args))
        for name in sorted(accessed):
            v = self.table.declared(name)
            if v is not None and v.equivalenced:
                return name
        return None

    # ------------------------------------------------------------------
    def _array_sites(
            self, body: Sequence[ast.Stmt]
    ) -> Dict[str, List[_ArrayRefSite]]:
        sites: Dict[str, List[_ArrayRefSite]] = {}

        def note(name: str, subs: Tuple[ast.Expr, ...], w: bool,
                 inner: Tuple[ast.DoLoop, ...]) -> None:
            if not self.table.is_array(name):
                return
            sites.setdefault(name.upper(), []).append(
                _ArrayRefSite(subs, w, inner))

        def expr_refs(e: Optional[ast.Expr],
                      inner: Tuple[ast.DoLoop, ...]) -> None:
            if e is None:
                return
            for n in ast.walk_expr(e):
                if isinstance(n, ast.ArrayRef) and self.table.is_array(n.name):
                    note(n.name, n.subs, False, inner)
                elif isinstance(n, ast.Var) and self.table.is_array(n.name):
                    note(n.name, (), False, inner)

        def walk(stmts: Sequence[ast.Stmt],
                 inner: Tuple[ast.DoLoop, ...]) -> None:
            for s in stmts:
                if isinstance(s, ast.Assign):
                    expr_refs(s.value, inner)
                    if isinstance(s.target, ast.ArrayRef):
                        for sub in s.target.subs:
                            expr_refs(sub, inner)
                        note(s.target.name, s.target.subs, True, inner)
                    elif isinstance(s.target, ast.Var) \
                            and self.table.is_array(s.target.name):
                        note(s.target.name, (), True, inner)
                elif isinstance(s, ast.IfBlock):
                    for cond, arm in s.arms:
                        expr_refs(cond, inner)
                        walk(arm, inner)
                elif isinstance(s, ast.DoLoop):
                    expr_refs(s.start, inner)
                    expr_refs(s.stop, inner)
                    expr_refs(s.step, inner)
                    walk(s.body, inner + (s,))
                elif isinstance(s, ast.CallStmt):
                    # calls are rejected earlier unless pure; pure calls
                    # read their arguments only
                    for a in s.args:
                        expr_refs(a, inner)
                elif isinstance(s, ast.IoStmt):
                    for item in s.items:
                        expr_refs(item, inner)
                elif isinstance(s, ast.OmpParallelDo):
                    walk([s.loop], inner)
                elif isinstance(s, ast.TaggedBlock):
                    walk(s.body, inner)

        walk(body, ())
        return sites

    # ------------------------------------------------------------------
    def _carried(self, array: str, refs: List[_ArrayRefSite], info: LoopInfo,
                 loops_ctx: List[LoopCtx]) -> bool:
        """Does loop ``info.loop`` carry a dependence among ``refs``?"""
        lvar = info.loop.var.upper()
        forms: List[Optional[List[Optional[AffineForm]]]] = []
        rank = self._declared_rank(array)
        for r in refs:
            forms.append(self._affine_forms(r, info, rank))

        n = len(refs)
        for i in range(n):
            for j in range(i, n):
                if not (refs[i].is_write or refs[j].is_write):
                    continue
                dirs = {lp.var: "=" for lp in info.enclosing}
                dirs[lvar] = "<"
                inner_vars = ({lp.var.upper() for lp in refs[i].inner_loops}
                              | {lp.var.upper() for lp in refs[j].inner_loops})
                for v in inner_vars:
                    dirs[v] = "*"
                seen_ids = set()
                inner_unique = []
                for lp in refs[i].inner_loops + refs[j].inner_loops:
                    if id(lp) not in seen_ids:
                        seen_ids.add(id(lp))
                        inner_unique.append(lp)
                all_loops = loops_ctx + [loop_ctx(lp) for lp in inner_unique]
                if self.tester.may_depend(forms[i], forms[j], all_loops, dirs):
                    return True
                if i != j and self.tester.may_depend(
                        forms[j], forms[i], all_loops, dirs):
                    return True
        return False

    def _declared_rank(self, array: str) -> int:
        infov = self.table.info(array)
        return len(infov.dims) if infov.dims else 1

    def _affine_forms(self, site: _ArrayRefSite, info: LoopInfo,
                      rank: int) -> List[Optional[AffineForm]]:
        if not site.subs:
            return [None] * rank  # whole-array access: no per-dim info
        # enclosing (outer) loop variables are deliberately NOT index vars:
        # the carried-dependence test fixes them with '=' directions, so a
        # subscript component depending on them — even opaquely, like the
        # paper's IDBEGS(ISS) — is a legitimate loop-invariant symbol that
        # cancels between the two references
        index_vars = ([info.loop.var]
                      + [lp.var for lp in site.inner_loops])
        out: List[Optional[AffineForm]] = []
        for sub in site.subs:
            if isinstance(sub, ast.RangeExpr):
                out.append(None)
            else:
                out.append(extract(sub, index_vars))
        return out
