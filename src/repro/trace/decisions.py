"""Per-loop decision records — the trace counterpart of
:class:`repro.polaris.report.LoopVerdict`.

A :class:`LoopDecision` captures everything the driver knew when it
decided a loop's fate: the legality verdict (with the failing reason and
offending symbol), which dependence tests fired while analyzing the loop
(a delta of the tester's :class:`~repro.analysis.dependence.TestStats`),
the privatization/reduction clauses, and the profitability outcome.  The
pipeline stamps each record with the benchmark, the inlining
configuration, and whether the loop's unit is execution-reachable —
exactly the information needed to recompute the paper's ``#par-loops``
per ``(benchmark, configuration)`` from a trace alone
(:func:`count_parallel`).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: profitability outcomes recorded by the driver
PROFITABILITY_OUTCOMES = ("profitable", "unprofitable", "not-evaluated")

#: actions a call site can receive from demand-driven inlining
SITE_ACTIONS = ("annotation", "body", "fallback")


@dataclass
class LoopDecision:
    """One loop's journey through the parallelizer."""

    unit: str
    var: str
    origin: Optional[str]
    parallel: bool
    reason: str = ""                   # failure reason ('' when parallel)
    detail: str = ""                   # offending symbol/procedure
    private: Tuple[str, ...] = ()
    reductions: Tuple = ()
    profitability: str = "not-evaluated"
    #: nonzero TestStats deltas while analyzing this loop, e.g.
    #: {"banerjee_independent": 3, "assumed_dependent": 1}
    dep_tests: Dict[str, int] = field(default_factory=dict)
    # stamped by the experiment pipeline:
    benchmark: str = ""
    config: str = ""
    #: is the loop's unit execution-reachable in the final program?
    #: (the Table II counting protocol only counts reachable copies)
    reachable: bool = True

    def to_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["private"] = list(self.private)
        d["reductions"] = [list(r) if isinstance(r, (tuple, list)) else r
                           for r in self.reductions]
        return d

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "LoopDecision":
        return LoopDecision(
            unit=str(d.get("unit", "")),
            var=str(d.get("var", "")),
            origin=d.get("origin"),  # type: ignore[arg-type]
            parallel=bool(d.get("parallel", False)),
            reason=str(d.get("reason", "")),
            detail=str(d.get("detail", "")),
            private=tuple(d.get("private", ()) or ()),
            reductions=tuple(tuple(r) if isinstance(r, list) else r
                             for r in (d.get("reductions", ()) or ())),
            profitability=str(d.get("profitability", "not-evaluated")),
            dep_tests=dict(d.get("dep_tests", {}) or {}),
            benchmark=str(d.get("benchmark", "")),
            config=str(d.get("config", "")),
            reachable=bool(d.get("reachable", True)),
        )

    def describe(self) -> str:
        state = "PARALLEL" if self.parallel else \
            f"serial ({self.reason}{': ' + self.detail if self.detail else ''})"
        where = f"{self.benchmark}/{self.config}: " if self.benchmark else ""
        return f"{where}{self.unit}: DO {self.var} [{self.origin}] -> {state}"


@dataclass
class SiteDecision:
    """One call site's fate under demand-driven inlining.

    Emitted by :class:`repro.inlining.demand.DemandInliner` each time the
    legality analyzer asks it to resolve an opaque call inside a
    candidate loop, and by :func:`repro.annotations.infer.infer_annotations`
    for callees it had to refuse (``site_id`` 0, empty ``unit``).
    """

    unit: str                          # caller unit ('' for inference records)
    callee: str
    site_id: int                       # 0 for inference-time fallback records
    action: str                        # one of SITE_ACTIONS
    source: str = ""                   # "hand" | "inferred" | ""
    reason: str = ""                   # why a fallback was taken
    # stamped by the experiment pipeline:
    benchmark: str = ""
    config: str = ""

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "SiteDecision":
        return SiteDecision(
            unit=str(d.get("unit", "")),
            callee=str(d.get("callee", "")),
            site_id=int(d.get("site_id", 0) or 0),
            action=str(d.get("action", "")),
            source=str(d.get("source", "")),
            reason=str(d.get("reason", "")),
            benchmark=str(d.get("benchmark", "")),
            config=str(d.get("config", "")),
        )

    def describe(self) -> str:
        where = f"{self.benchmark}/{self.config}: " if self.benchmark else ""
        site = f"{self.unit}#{self.site_id}" if self.unit else "infer"
        tail = f" ({self.reason})" if self.reason else ""
        src = f" [{self.source}]" if self.source else ""
        return f"{where}{site}: CALL {self.callee} -> {self.action}{src}{tail}"


def count_parallel(decisions: Iterable[LoopDecision]
                   ) -> Dict[Tuple[str, str], int]:
    """Distinct parallelized origins per ``(benchmark, config)``.

    Implements the paper's counting protocol: each *original* loop
    (origin identity) counts once, only execution-reachable copies
    count, and generated loops (no origin) are excluded — so the result
    matches ``Table2Row.configs[kind].par_loops`` exactly.
    """
    origins: Dict[Tuple[str, str], Set[str]] = {}
    for d in decisions:
        if d.parallel and d.reachable and d.origin is not None:
            origins.setdefault((d.benchmark, d.config), set()).add(d.origin)
    return {key: len(vals) for key, vals in origins.items()}


def write_decisions_jsonl(decisions: Iterable[LoopDecision],
                          path: str) -> None:
    """Write decisions as one compact JSON object per line."""
    with open(path, "w", encoding="utf-8") as fh:
        for d in decisions:
            fh.write(json.dumps(d.to_dict(), sort_keys=True,
                                separators=(",", ":")) + "\n")


def read_decisions_jsonl(path: str) -> List[LoopDecision]:
    out: List[LoopDecision] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(LoopDecision.from_dict(json.loads(line)))
    return out
