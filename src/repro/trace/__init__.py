"""``repro.trace`` — span-based structured tracing for the pipeline.

The paper's headline evidence is *per-loop* accounting: which loops each
inlining configuration parallelizes, and which are lost or extra
(Tables I/II).  This package mechanizes that attribution:

* a :class:`Tracer` records nested **spans** (parse, normalize,
  inline/annotate, dependence analysis, parallelize, reverse-inline,
  tune) and **per-loop decision records** (:class:`LoopDecision`: loop
  origin, which dependence tests fired, privatization/reduction
  verdicts, profitability outcome, final parallel/serial decision with
  its reason);
* traces export as Chrome trace-event JSON (loadable in
  ``chrome://tracing`` or Perfetto) and decisions as a compact JSONL
  log;
* child traces produced inside executor worker processes merge back
  into the parent trace (:meth:`Tracer.merge`), one process lane each.

Tracing is off by default: every instrumentation point accepts an
optional tracer and falls back to the shared :data:`NULL_TRACER`, whose
spans are a cached no-op context manager and whose ``decision()``
returns immediately — the instrumented pipeline stays within noise of
the uninstrumented one.
"""

from repro.trace.chrome import validate_chrome_trace, write_chrome
from repro.trace.decisions import (LoopDecision, SiteDecision,
                                   count_parallel, read_decisions_jsonl,
                                   write_decisions_jsonl)
from repro.trace.tracer import NULL_TRACER, Tracer

__all__ = [
    "Tracer", "NULL_TRACER", "LoopDecision", "SiteDecision",
    "count_parallel",
    "read_decisions_jsonl", "write_decisions_jsonl",
    "validate_chrome_trace", "write_chrome",
]
