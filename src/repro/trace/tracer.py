"""The tracer: nested spans, instant events, decision records.

Events follow the Chrome trace-event format (complete events, ``ph:
"X"``, microsecond timestamps) so a trace loads directly in
``chrome://tracing`` / Perfetto.  A tracer is cheap to carry around
disabled: :data:`NULL_TRACER` hands out one cached no-op context
manager and drops decisions in a single attribute test, keeping the
instrumented pipeline's overhead under measurement noise.

Cross-process story: worker processes build their own enabled tracer,
:meth:`Tracer.export` it to a plain JSON-safe dict (picklable across
the pool boundary, JSON-safe for the service result cache), and the
parent :meth:`Tracer.merge`\\ s each export back in.  Each process keeps
its own ``pid`` lane; timestamps are re-based onto the parent's clock
using the wall-clock epoch recorded at construction, so spans from
different workers line up on one timeline.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional

from repro.trace.decisions import LoopDecision, SiteDecision


class _NullSpan:
    """A reusable, reentrant no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """An open span; closing it appends one complete ('X') event."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        t = self._tracer
        start_us = (self._start - t._perf0) * 1e6
        dur_us = (time.perf_counter() - self._start) * 1e6
        event: Dict[str, Any] = {
            "name": self._name, "cat": self._cat, "ph": "X",
            "ts": round(start_us, 1), "dur": round(dur_us, 1),
            "pid": t.pid, "tid": t.tid,
        }
        if self._args:
            event["args"] = self._args
        t.events.append(event)
        return False


class Tracer:
    """Collects spans, instant events, and per-loop decision records.

    ``enabled=False`` builds a permanent no-op (see :data:`NULL_TRACER`);
    instrumentation points should write
    ``tracer = tracer or NULL_TRACER`` and call through unconditionally.
    """

    def __init__(self, enabled: bool = True, label: str = "repro",
                 pid: Optional[int] = None, tid: int = 0):
        self.enabled = enabled
        self.label = label
        self.pid = os.getpid() if pid is None else pid
        self.tid = tid
        self.events: List[Dict[str, Any]] = []
        self.decisions: List[LoopDecision] = []
        self.site_decisions: List[SiteDecision] = []
        self._perf0 = time.perf_counter()
        self._wall0 = time.time()
        # decision-record identities already merged, keyed by job — a
        # crash-retried job re-executes and its retry export repeats the
        # first attempt's decisions; counting them twice breaks the
        # Table II ↔ trace cross-check
        self._merged_decision_keys: set = set()

    # -- recording ---------------------------------------------------

    def span(self, name: str, cat: str = "pipeline", **args: Any):
        """Context manager timing one phase; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "pipeline",
                **args: Any) -> None:
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": round((time.perf_counter() - self._perf0) * 1e6, 1),
            "pid": self.pid, "tid": self.tid,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def decision(self, decision: LoopDecision) -> None:
        """Record one per-loop decision (and an instant event so the
        decision is visible on the Perfetto timeline)."""
        if not self.enabled:
            return
        self.decisions.append(decision)
        self.instant(f"loop {decision.origin or decision.var}",
                     cat="decision",
                     parallel=decision.parallel,
                     reason=decision.reason or "parallel")

    def site(self, decision: SiteDecision) -> None:
        """Record one demand-inlining call-site decision (and an instant
        event so the resolution is visible on the timeline)."""
        if not self.enabled:
            return
        self.site_decisions.append(decision)
        self.instant(f"site {decision.callee}", cat="site",
                     action=decision.action,
                     reason=decision.reason or decision.source)

    # -- merge / export ----------------------------------------------

    def export(self, job: Optional[str] = None) -> Dict[str, Any]:
        """JSON-safe snapshot for crossing a process or wire boundary.

        ``job`` (usually the payload digest) tags the export so a
        receiver can merge retried attempts of the same job without
        double-counting decisions.
        """
        out = {
            "label": self.label,
            "pid": self.pid,
            "wall0": self._wall0,
            "events": list(self.events),
            "decisions": [d.to_dict() for d in self.decisions],
            "site_decisions": [d.to_dict() for d in self.site_decisions],
        }
        if job is not None:
            out["job"] = job
        return out

    @staticmethod
    def _decision_key(job: str, kind: str, d: Dict[str, Any]) -> tuple:
        """Stable identity of one decision record within one job.

        A loop is (benchmark, config, unit, var, origin); a call site is
        (benchmark, config, unit, callee, site id).  Two attempts of the
        same job produce records with equal keys — one survives.
        """
        if kind == "loop":
            return (job, kind, d.get("benchmark", ""), d.get("config", ""),
                    d.get("unit", ""), d.get("var", ""),
                    d.get("origin") or "")
        return (job, kind, d.get("benchmark", ""), d.get("config", ""),
                d.get("unit", ""), d.get("callee", ""),
                d.get("site_id", 0))

    def merge(self, exported: Optional[Dict[str, Any]],
              pid: Optional[int] = None,
              job: Optional[str] = None) -> None:
        """Fold a child tracer's :meth:`export` into this trace.

        Child timestamps are re-based onto this tracer's clock via the
        wall-clock epochs, so worker spans land where they actually ran
        on the parent timeline.  ``pid`` overrides the child's process
        lane (useful for deterministic lane numbering in tests).

        When the export carries a job tag (or ``job`` is passed),
        decision records are deduplicated against every previous merge
        of the same job: a worker that exported partially, was
        SIGKILLed, and re-ran contributes each decision exactly once.
        Span events are *not* deduplicated — both attempts really
        consumed wall clock and belong on the timeline.
        """
        if not self.enabled or not exported:
            return
        offset_us = (float(exported.get("wall0", self._wall0))
                     - self._wall0) * 1e6
        child_pid = pid if pid is not None else exported.get("pid", 0)
        for event in exported.get("events", ()):
            merged = dict(event)
            merged["ts"] = round(float(merged.get("ts", 0.0)) + offset_us, 1)
            merged["pid"] = child_pid
            self.events.append(merged)
        job = job if job is not None else exported.get("job")
        for kind, records, cls, target in (
                ("loop", exported.get("decisions", ()),
                 LoopDecision, self.decisions),
                ("site", exported.get("site_decisions", ()),
                 SiteDecision, self.site_decisions)):
            for d in records:
                if job is not None:
                    key = self._decision_key(job, kind, d)
                    if key in self._merged_decision_keys:
                        continue
                    self._merged_decision_keys.add(key)
                target.append(cls.from_dict(d))

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object for this trace.

        ``traceEvents`` is the standard event array (plus one
        ``process_name`` metadata event per pid lane); the per-loop
        decision records ride along under the non-standard top-level key
        ``loopDecisions``, which trace viewers ignore.
        """
        pids = {e["pid"] for e in self.events} | {self.pid}
        meta = [{"name": "process_name", "ph": "M", "pid": p, "tid": 0,
                 "ts": 0,
                 "args": {"name": self.label if p == self.pid
                          else f"{self.label}-worker-{p}"}}
                for p in sorted(pids)]
        return {
            "traceEvents": meta + list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"tool": "repro.trace", "format": 1},
            "loopDecisions": [d.to_dict() for d in self.decisions],
            "siteDecisions": [d.to_dict() for d in self.site_decisions],
        }


#: the shared disabled tracer — safe to use from any thread, records
#: nothing, and never allocates per call
NULL_TRACER = Tracer(enabled=False, label="null", pid=0)
