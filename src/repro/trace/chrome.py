"""Chrome trace-event JSON: file output and structural validation.

The validator enforces the subset of the trace-event format this
package emits (the "JSON Object Format": a top-level object with a
``traceEvents`` array of complete/instant/metadata events).  It exists
so the CI smoke test — and anyone scripting against ``--trace`` output —
can assert a trace is loadable before shipping it to Perfetto.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

#: event phases this package emits
_KNOWN_PHASES = {"X", "i", "M"}


def write_chrome(tracer, path: str) -> None:
    """Write ``tracer``'s Chrome trace-event JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(tracer.to_chrome(), fh, sort_keys=True)
        fh.write("\n")


def validate_chrome_trace(obj: Any) -> List[str]:
    """Structural problems in a Chrome trace-event object (empty list =
    valid).  Checks the invariants Perfetto's importer relies on:
    the ``traceEvents`` array, per-event required keys, numeric
    non-negative timestamps, and durations on complete events."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be a JSON object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level 'traceEvents' must be an array"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if not isinstance(event.get("name", ""), str):
            problems.append(f"{where}: 'name' must be a string")
        if ph == "M":
            continue  # metadata events need no timestamp semantics
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: complete event needs non-negative 'dur'")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
    decisions = obj.get("loopDecisions", [])
    if not isinstance(decisions, list):
        problems.append("'loopDecisions' must be an array when present")
    else:
        for i, d in enumerate(decisions):
            if not isinstance(d, dict) or "unit" not in d \
                    or "parallel" not in d:
                problems.append(f"loopDecisions[{i}]: not a decision "
                                f"record (needs 'unit' and 'parallel')")
    return problems


def load_chrome_trace(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)
