"""Polaris-style normalization transformations.

Three passes run before dependence analysis (and their effects are what
the reverse inliner's pattern matcher must tolerate, per Section III-C of
the paper):

* **parameter propagation** — PARAMETER constants fold into expressions;
* **induction-variable substitution** — ``I = I + c`` inside a loop is
  removed, uses of ``I`` are rewritten to the closed form over the loop
  index, and the final value is reassigned after the loop.  This is what
  makes the paper's Figure-2 inner loop analyzable (``X2(I)`` becomes
  ``X2(I + J)`` after substitution);
* **forward substitution** — single definitions of integer scalars
  propagate into later uses within the same block scope
  (``ID = IDBEGS(ISS) + 1 + K`` flows into ``FSMP``'s subscripts), which
  turns many symbolic subscripts affine.

All passes are semantics-preserving source-to-source rewrites over the
AST; the differential tests in ``tests/runtime`` execute programs before
and after normalization and compare memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.analysis.defuse import collect_accesses
from repro.analysis.symbolic import from_expr
from repro.fortran import ast
from repro.fortran.symbols import SymbolTable, build_symbol_table


def normalize_unit(unit: ast.ProgramUnit,
                   table: Optional[SymbolTable] = None) -> ast.ProgramUnit:
    """Run all normalization passes on one unit, in place."""
    table = table or build_symbol_table(unit)
    propagate_parameters(unit, table)
    unit.body = _substitute_inductions_in(unit.body, table)
    forward_substitute_block(unit.body, table)
    return unit


# ---------------------------------------------------------------------------
# parameter propagation
# ---------------------------------------------------------------------------

def propagate_parameters(unit: ast.ProgramUnit, table: SymbolTable) -> None:
    values: Dict[str, ast.Expr] = {}
    for name, info in table.variables.items():
        if info.parameter_value is not None:
            c = from_expr(info.parameter_value).constant_value()
            if c is not None:
                values[name] = ast.IntLit(c)
            elif isinstance(info.parameter_value, ast.RealLit):
                values[name] = info.parameter_value

    def rewrite(e: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(e, ast.Var) and e.name.upper() in values:
            return ast.clone(values[e.name.upper()])
        return None

    unit.body = ast.map_stmt_exprs(unit.body, rewrite)


# ---------------------------------------------------------------------------
# induction variable substitution
# ---------------------------------------------------------------------------

@dataclass
class _Increment:
    var: str
    amount: int  # signed constant increment
    position: int  # index of the increment statement at top level


def _substitute_inductions_in(body: List[ast.Stmt],
                              table: SymbolTable) -> List[ast.Stmt]:
    """Recursively apply induction substitution, innermost loops first."""
    out: List[ast.Stmt] = []
    for s in body:
        if isinstance(s, ast.DoLoop):
            rebuilt = ast.DoLoop(s.var, s.start, s.stop, s.step,
                                 _substitute_inductions_in(s.body, table),
                                 s.label, s.term_label)
            ast.copy_loop_meta(s, rebuilt)
            out.extend(substitute_inductions(rebuilt, table))
        elif isinstance(s, ast.IfBlock):
            out.append(ast.IfBlock(
                [(c, _substitute_inductions_in(b, table)) for c, b in s.arms],
                s.label))
        elif isinstance(s, ast.TaggedBlock):
            out.append(ast.TaggedBlock(
                s.callee, s.site_id, s.actuals,
                _substitute_inductions_in(s.body, table), s.label))
        else:
            out.append(s)
    return out


def _find_increment(loop: ast.DoLoop) -> Optional[_Increment]:
    """Find the unique top-level ``V = V +- c`` statement, if any."""
    found: Optional[_Increment] = None
    for idx, s in enumerate(loop.body):
        if not isinstance(s, ast.Assign) or not isinstance(s.target, ast.Var):
            continue
        v = s.target.name.upper()
        delta = from_expr(s.value) - from_expr(ast.Var(v))
        amount = delta.constant_value()
        if amount is None or amount == 0:
            continue
        if found is not None:
            return None  # only the single-increment pattern is handled
        found = _Increment(v, amount, idx)
    return found


def substitute_inductions(loop: ast.DoLoop,
                          table: SymbolTable) -> List[ast.Stmt]:
    """Rewrite the single-increment induction pattern in ``loop``.

    Returns the replacement statement list (the rewritten loop plus the
    final-value assignment), or ``[loop]`` unchanged when the pattern does
    not apply safely.
    """
    inc = _find_increment(loop)
    if inc is None:
        return [loop]
    step = from_expr(loop.step).constant_value() if loop.step else 1
    if step != 1:
        return [loop]
    v = inc.var
    if v == loop.var.upper():
        return [loop]
    # V must not be written anywhere else in the body
    writes_elsewhere = 0
    for idx, s in enumerate(loop.body):
        acc = collect_accesses([s], table)
        if v in acc.scalar_writes or any(
                a == v and w for a, _, w in acc.array_accesses):
            writes_elsewhere += 1
        if acc.has_call and v in acc.call_args:
            return [loop]
    if writes_elsewhere != 1:  # exactly the increment itself
        return [loop]
    # the loop bounds must not depend on V
    bound_acc_names = set()
    for e in (loop.start, loop.stop):
        bound_acc_names |= from_expr(e).names_mentioned()
    if v in bound_acc_names:
        return [loop]

    # iteration number expression: (i - start); uses before the increment
    # see V + c*(i - start), uses at/after see V + c*(i - start + 1)
    base = ast.BinOp("-", ast.Var(loop.var), ast.clone(loop.start))

    def closed_form(extra: int) -> ast.Expr:
        count: ast.Expr = ast.clone(base)
        if extra:
            count = ast.BinOp("+", count, ast.IntLit(extra))
        scaled: ast.Expr = count if inc.amount == 1 else ast.BinOp(
            "*", ast.IntLit(abs(inc.amount)), count)
        op = "+" if inc.amount > 0 else "-"
        return ast.BinOp(op, ast.Var(v), scaled)

    def substitute(stmts: List[ast.Stmt], extra: int) -> List[ast.Stmt]:
        def rewrite(e: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(e, ast.Var) and e.name.upper() == v:
                return closed_form(extra)
            return None
        return ast.map_stmt_exprs(stmts, rewrite)

    before = substitute(loop.body[:inc.position], 0)
    after = substitute(loop.body[inc.position + 1:], 1)
    new_loop = ast.DoLoop(loop.var, loop.start, loop.stop, loop.step,
                          before + after, loop.label, None)
    if hasattr(loop, "origin"):
        new_loop.origin = loop.origin  # type: ignore[attr-defined]
    trip = ast.BinOp("+", ast.BinOp("-", ast.clone(loop.stop),
                                    ast.clone(loop.start)), ast.IntLit(1))
    total: ast.Expr = trip if abs(inc.amount) == 1 else ast.BinOp(
        "*", ast.IntLit(abs(inc.amount)), trip)
    final = ast.Assign(ast.Var(v), ast.BinOp(
        "+" if inc.amount > 0 else "-", ast.Var(v), total))
    # guard the final assignment against zero-trip loops: V must keep its
    # entry value when the loop body never runs
    guard = ast.IfBlock([(ast.BinOp(">=", ast.clone(loop.stop),
                                    ast.clone(loop.start)), [final])])
    return [new_loop, guard]


# ---------------------------------------------------------------------------
# forward substitution
# ---------------------------------------------------------------------------

_MAX_SUBST_NODES = 16


def _expr_size(e: ast.Expr) -> int:
    return sum(1 for _ in ast.walk_expr(e))


def _expr_names(e: ast.Expr) -> Set[str]:
    names: Set[str] = set()
    for n in ast.walk_expr(e):
        if isinstance(n, (ast.Var, ast.ArrayRef, ast.FuncRef)):
            names.add(n.name.upper())
    return names


def forward_substitute_block(body: List[ast.Stmt],
                             table: SymbolTable) -> None:
    """Propagate single integer scalar definitions into later uses, in
    place, within one block scope (recursing into nested blocks with the
    proper invalidation)."""
    _forward(body, table, {})


def _forward(body: List[ast.Stmt], table: SymbolTable,
             env: Dict[str, ast.Expr]) -> None:
    for i, s in enumerate(body):
        if getattr(s, "label", None) is not None:
            # a labeled statement is a potential GOTO join point: control
            # may arrive carrying different values than the fall-through
            # path, so no binding survives it
            env.clear()
        body[i] = s = _subst_into(s, env, table)
        _update_env(s, env, table)


def _subst_into(s: ast.Stmt, env: Dict[str, ast.Expr],
                table: SymbolTable) -> ast.Stmt:
    def rewrite(e: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(e, ast.Var) and e.name.upper() in env:
            return ast.clone(env[e.name.upper()])
        return None

    if isinstance(s, ast.Assign):
        tgt = s.target
        if isinstance(tgt, ast.ArrayRef):
            tgt = ast.ArrayRef(tgt.name,
                               tuple(ast.map_expr(x, rewrite)
                                     for x in tgt.subs))
        return ast.Assign(tgt, ast.map_expr(s.value, rewrite), s.label)
    if isinstance(s, ast.CallStmt):
        # only substitute inside non-lvalue argument positions is unsafe to
        # decide here; leave call arguments untouched (by-reference)
        return s
    if isinstance(s, ast.IfBlock):
        arms = []
        for cond, arm in s.arms:
            new_cond = ast.map_expr(cond, rewrite) if cond is not None else None
            arm_env = dict(env)
            _forward(arm, table, arm_env)
            arms.append((new_cond, arm))
        # conservatively drop every binding written in any arm
        written: Set[str] = set()
        for _, arm in s.arms:
            acc = collect_accesses(arm, table)
            written |= acc.scalar_writes
            written |= {a for a, _, w in acc.array_accesses if w}
            if acc.has_call or acc.has_io:
                env.clear()
        _invalidate(env, written)
        return ast.IfBlock(arms, s.label)
    if isinstance(s, ast.DoLoop):
        start = ast.map_expr(s.start, rewrite)
        stop = ast.map_expr(s.stop, rewrite)
        step = ast.map_expr(s.step, rewrite) if s.step is not None else None
        acc = collect_accesses(s.body, table)
        written = set(acc.scalar_writes) | {s.var.upper()} | {
            a for a, _, w in acc.array_accesses if w}
        if acc.has_call or acc.has_io:
            env.clear()
        _invalidate(env, written)
        inner_env = dict(env)
        _forward(s.body, table, inner_env)
        loop = ast.DoLoop(s.var, start, stop, step, s.body, s.label,
                          s.term_label)
        if hasattr(s, "origin"):
            loop.origin = s.origin  # type: ignore[attr-defined]
        return loop
    if isinstance(s, ast.TaggedBlock):
        inner_env = dict(env)
        _forward(s.body, table, inner_env)
        return s
    if isinstance(s, ast.IoStmt) and s.kind != "READ":
        return ast.IoStmt(s.kind, s.control,
                          tuple(ast.map_expr(x, rewrite) for x in s.items),
                          s.label)
    return s


def _update_env(s: ast.Stmt, env: Dict[str, ast.Expr],
                table: SymbolTable) -> None:
    if isinstance(s, ast.Assign) and isinstance(s.target, ast.Var) \
            and not table.is_array(s.target.name):
        v = s.target.name.upper()
        _invalidate(env, {v})
        rhs = s.value
        if (table.info(v).typename == "INTEGER"
                and v not in _expr_names(rhs)
                and _expr_size(rhs) <= _MAX_SUBST_NODES
                and not any(isinstance(n, ast.FuncRef)
                            for n in ast.walk_expr(rhs))):
            env[v] = rhs
        return
    acc = collect_accesses([s], table)
    if acc.has_call or acc.has_opaque:
        # calls and opaque/ENTRY statements may write anything
        env.clear()
        return
    written = set(acc.scalar_writes) | {
        a for a, _, w in acc.array_accesses if w}
    _invalidate(env, written)


def _invalidate(env: Dict[str, ast.Expr], written: Set[str]) -> None:
    if not written:
        return
    dead = [v for v, rhs in env.items()
            if v in written or (_expr_names(rhs) & written)]
    for v in dead:
        del env[v]
    for v in written:
        env.pop(v, None)
