"""Data dependence testing for affine subscript pairs.

The tester answers the question the parallelizer asks: *may two references
to the same array access the same element, under a given direction
constraint for each enclosing loop?*  It layers the classic test family the
Polaris literature describes:

* **ZIV** — both subscripts loop-invariant: dependence iff the symbolic
  difference is (or may be) zero;
* **GCD** — the gcd of the index coefficients must divide the constant
  difference;
* **Banerjee bounds** — the real-valued extreme of the subscript difference
  over the constrained iteration space must straddle zero.  We compute the
  extrema exactly by evaluating the (linear) difference at the vertices of
  the per-variable constraint polytopes (segment for ``=``, triangle for
  ``<``, rectangle for ``*``), with unknown loop bounds widening to
  infinity — widening is conservative because it can only *fail to
  disprove* a dependence.

All answers are conservative: ``True`` means "dependence cannot be ruled
out".  A dimension whose subscript is non-affine (``None`` affine form)
contributes no disproof, reproducing the behaviour on which the paper's
Section II-A pathologies rest.

Direction constraints are per-loop-variable: ``'='`` (same iteration),
``'<'`` (source iteration strictly earlier), ``'*'`` (unconstrained).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.affine import AffineForm

INF = math.inf


@dataclass(frozen=True)
class LoopCtx:
    """One enclosing loop: its index variable and constant bounds when
    known (``None`` = unknown/symbolic).  Loops are assumed normalized to
    step 1 by the caller; a loop with a non-unit or symbolic step should be
    passed with unknown bounds."""

    var: str
    lower: Optional[int] = None
    upper: Optional[int] = None


@dataclass
class TestStats:
    """Counts of which test disproved dependences (for the ablation
    benchmarks).

    The per-test counters count *unique* queries: a query answered from
    the memo table bumps ``cache_hits`` instead, so ablation outputs keep
    reporting how many distinct dependence problems each test solved.
    """

    ziv_independent: int = 0
    gcd_independent: int = 0
    banerjee_independent: int = 0
    exact_independent: int = 0
    assumed_dependent: int = 0
    #: repeated queries answered from the per-tester memo table
    cache_hits: int = 0
    # attempt counters: how many times each test family *ran* (per
    # subscript dimension for ZIV/GCD/Banerjee, per query for exact) —
    # kills/attempts is the family's kill rate in the --profile report
    ziv_attempts: int = 0
    gcd_attempts: int = 0
    banerjee_attempts: int = 0
    exact_attempts: int = 0

    def unique_queries(self) -> int:
        return (self.ziv_independent + self.gcd_independent
                + self.banerjee_independent + self.exact_independent
                + self.assumed_dependent)


@dataclass
class DependenceTester:
    """Configurable dependence tester.

    ``use_banerjee`` exists for the ablation study (GCD-only mode);
    ``use_exact`` additionally runs the joint Fourier-Motzkin system of
    :mod:`repro.analysis.exact` when the per-dimension tests cannot
    disprove — it is the only test that sees *coupling* between
    subscript positions.
    """

    use_banerjee: bool = True
    use_exact: bool = False
    stats: TestStats = field(default_factory=TestStats)
    #: canonicalized query -> answer; the parallelizer asks the same
    #: question for every pair of references to the same array in a nest,
    #: so whole-suite runs repeat most queries several times
    _memo: Dict[tuple, bool] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    def may_depend(self,
                   subs_a: Sequence[Optional[AffineForm]],
                   subs_b: Sequence[Optional[AffineForm]],
                   loops: Sequence[LoopCtx],
                   dirs: Dict[str, str]) -> bool:
        """May references with per-dimension affine forms ``subs_a`` and
        ``subs_b`` touch the same element under ``dirs``?

        Subscript lists of unequal length (a reshaped pair) provide no
        per-dimension information and are assumed dependent.

        Answers are memoized on the canonicalized query; ``stats``
        records hits separately from unique queries (see
        :class:`TestStats`).
        """
        key = _query_key(subs_a, subs_b, loops, dirs)
        if key in self._memo:
            self.stats.cache_hits += 1
            return self._memo[key]
        answer = self._may_depend_uncached(subs_a, subs_b, loops, dirs)
        self._memo[key] = answer
        return answer

    def _may_depend_uncached(self,
                             subs_a: Sequence[Optional[AffineForm]],
                             subs_b: Sequence[Optional[AffineForm]],
                             loops: Sequence[LoopCtx],
                             dirs: Dict[str, str]) -> bool:
        if len(subs_a) != len(subs_b):
            self.stats.assumed_dependent += 1
            return True
        disproved = False
        for fa, fb in zip(subs_a, subs_b):
            if fa is None or fb is None:
                continue  # non-affine dimension: no information
            if not self._dimension_dep(fa, fb, loops, dirs):
                disproved = True
                break
        if not disproved and self.use_exact:
            from repro.analysis.exact import ExactTester
            self.stats.exact_attempts += 1
            if not ExactTester().may_depend(subs_a, subs_b, loops, dirs):
                self.stats.exact_independent += 1
                disproved = True
        if not disproved:
            self.stats.assumed_dependent += 1
        return not disproved

    # ------------------------------------------------------------------
    def _dimension_dep(self, fa: AffineForm, fb: AffineForm,
                       loops: Sequence[LoopCtx],
                       dirs: Dict[str, str]) -> bool:
        delta = fb.remainder - fa.remainder  # solve sum(contribs) == delta
        dc = delta.constant_value()
        if dc is None:
            return True  # symbolic constant difference: cannot disprove

        involved: List[Tuple[LoopCtx, int, int, str]] = []
        for lp in loops:
            a = fa.coeff(lp.var)
            b = fb.coeff(lp.var)
            if a == 0 and b == 0:
                continue
            involved.append((lp, a, b, dirs.get(lp.var, "*")))
        # coefficients on variables not in `loops` (e.g. indices of loops
        # inner to one reference) are treated as unconstrained
        extra_vars = (set(fa.coeffs) | set(fb.coeffs)) - {
            lp.var for lp in loops}
        for v in extra_vars:
            a = fa.coeff(v)
            b = fb.coeff(v)
            if a == 0 and b == 0:
                continue
            involved.append((LoopCtx(v, None, None), a, b, "*"))

        if not involved:
            # ZIV
            self.stats.ziv_attempts += 1
            if dc != 0:
                self.stats.ziv_independent += 1
                return False
            return True

        # GCD test
        self.stats.gcd_attempts += 1
        g = 0
        for lp, a, b, d in involved:
            if d == "=":
                g = math.gcd(g, abs(a - b))
            else:
                g = math.gcd(g, math.gcd(abs(a), abs(b)))
        if g > 0 and dc % g != 0:
            self.stats.gcd_independent += 1
            return False
        if g == 0 and dc != 0:
            # every involved var contributes exactly zero (a==b under '='):
            # a degenerate ZIV disproof discovered by the GCD machinery
            self.stats.ziv_attempts += 1
            self.stats.ziv_independent += 1
            return False

        if not self.use_banerjee:
            return True

        # Banerjee bounds via polytope vertices
        self.stats.banerjee_attempts += 1
        lo_total, hi_total = 0.0, 0.0
        for lp, a, b, d in involved:
            lo, hi = _contribution_bounds(a, b, d, lp.lower, lp.upper)
            lo_total += lo
            hi_total += hi
        if dc < lo_total or dc > hi_total:
            self.stats.banerjee_independent += 1
            return False
        return True


# ---------------------------------------------------------------------------
# query canonicalization for the memo table
# ---------------------------------------------------------------------------

def _affine_key(f: Optional[AffineForm]) -> Optional[tuple]:
    """Hashable identity of an affine form as the tests see it: the index
    coefficients and the remainder polynomial's terms (every test decision
    flows from coefficient lookups and remainder differences)."""
    if f is None:
        return None
    return (tuple(sorted(f.coeffs.items())),
            tuple(sorted(f.remainder.terms.items())))


def _query_key(subs_a: Sequence[Optional[AffineForm]],
               subs_b: Sequence[Optional[AffineForm]],
               loops: Sequence[LoopCtx],
               dirs: Dict[str, str]) -> tuple:
    return (tuple(_affine_key(f) for f in subs_a),
            tuple(_affine_key(f) for f in subs_b),
            tuple((lp.var, lp.lower, lp.upper) for lp in loops),
            tuple(sorted(dirs.items())))


# ---------------------------------------------------------------------------
# per-variable contribution bounds
# ---------------------------------------------------------------------------

def _contribution_bounds(a: int, b: int, direction: str,
                         lower: Optional[int],
                         upper: Optional[int]) -> Tuple[float, float]:
    """Bounds of ``a*i - b*i'`` under the direction constraint, with
    ``i, i' in [lower, upper]`` (unknown bounds widen to +-inf)."""
    L: float = lower if lower is not None else -INF
    U: float = upper if upper is not None else INF
    if direction == "=":
        t = a - b
        return _linear_bounds(t, L, U)
    if direction == "<":
        # triangle L <= i, i+1 <= i', i' <= U; vertices expressed
        # symbolically as (bound, offset) so unknown bounds never produce
        # inf - inf: (L, L+1), (L, U), (U-1, U)
        vertices = [(("L", 0), ("L", 1)), (("L", 0), ("U", 0)),
                    (("U", -1), ("U", 0))]
        lo, hi = INF, -INF
        for vi, vj in vertices:
            vmin, vmax = _vertex_bounds(a, b, vi, vj, L, U)
            lo = min(lo, vmin)
            hi = max(hi, vmax)
        return lo, hi
    # '*' : independent rectangle
    lo_a, hi_a = _linear_bounds(a, L, U)
    lo_b, hi_b = _linear_bounds(-b, L, U)
    return lo_a + lo_b, hi_a + hi_b


def _linear_bounds(t: int, L: float, U: float) -> Tuple[float, float]:
    if t == 0:
        return 0.0, 0.0
    v1, v2 = _mul(t, L), _mul(t, U)
    return min(v1, v2), max(v1, v2)


def _vertex_bounds(a: int, b: int, vi: Tuple[str, int], vj: Tuple[str, int],
                   L: float, U: float) -> Tuple[float, float]:
    """Range of ``a*i - b*i'`` at a symbolic vertex ``i = sym_i + off_i``,
    ``i' = sym_j + off_j``.  A nonzero coefficient on an unknown bound makes
    the vertex value unbounded in both directions (the unknown bound can be
    any integer)."""
    coef_l = (a if vi[0] == "L" else 0) - (b if vj[0] == "L" else 0)
    coef_u = (a if vi[0] == "U" else 0) - (b if vj[0] == "U" else 0)
    const: float = a * vi[1] - b * vj[1]
    # fold known bounds into the constant
    if coef_l and not math.isinf(L):
        const += coef_l * L
        coef_l = 0
    if coef_u and not math.isinf(U):
        const += coef_u * U
        coef_u = 0
    if coef_u:
        # U unknown.  The '<' direction implies the loop runs at least two
        # iterations, so U >= L + 1; write U = L + t with t >= 1, which
        # keeps strong-SIV cases (a == b) exact even with symbolic bounds.
        if not math.isinf(L):
            const += coef_u * L
        else:
            coef_l += coef_u
        boundary = const + coef_u  # value at t == 1
        if coef_l:
            return -INF, INF
        return (boundary, INF) if coef_u > 0 else (-INF, boundary)
    if coef_l:
        return -INF, INF
    return const, const


def _mul(c: int, x: float) -> float:
    """c*x with the convention 0*inf == 0 (a zero coefficient kills the
    unbounded direction)."""
    if c == 0:
        return 0.0
    return c * x
