"""Affine (linear) form extraction of array subscripts over loop indices.

An :class:`AffineForm` represents a subscript as

    sum_k  coeff_k * index_k  +  remainder

where ``coeff_k`` are integer constants and ``remainder`` is a polynomial
that does **not** mention any of the loop indices (neither directly nor
inside an atom).  Subscripts that cannot be written this way — products of
two indices, an index inside an array read (``A(IDX(I))``, the paper's
"subscripted subscript"), an index under a division — are *non-affine*:
:func:`extract` returns ``None`` and dependence analysis must assume a
dependence, which is precisely the conservatism that makes conventional
inlining lose parallelism in Section II-A of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analysis.symbolic import Poly, from_expr, is_atom
from repro.fortran import ast


@dataclass(frozen=True)
class AffineForm:
    """``sum(coeffs[v] * v) + remainder`` with remainder index-free."""

    coeffs: Dict[str, int]
    remainder: Poly

    def coeff(self, var: str) -> int:
        return self.coeffs.get(var.upper(), 0)

    def is_invariant(self) -> bool:
        return not any(self.coeffs.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c}*{v}" for v, c in sorted(self.coeffs.items()) if c]
        parts.append(repr(self.remainder))
        return "Affine(" + " + ".join(parts) + ")"


def extract(e: ast.Expr, index_vars: Sequence[str]) -> Optional[AffineForm]:
    """Extract the affine form of ``e`` over ``index_vars``.

    Returns None when ``e`` is non-affine in any of the index variables.
    """
    poly = from_expr(e)
    return from_poly(poly, index_vars)


def from_poly(poly: Poly,
              index_vars: Sequence[str]) -> Optional[AffineForm]:
    indices = {v.upper() for v in index_vars}
    coeffs: Dict[str, int] = {}
    remainder_terms: Dict[tuple, int] = {}
    for mono, c in poly.terms.items():
        touching = [t for t in mono if _mentions_index(t, indices, poly)]
        if not touching:
            remainder_terms[mono] = c
            continue
        # a monomial touching an index must be exactly (index,) — a single
        # occurrence of the bare index variable
        if len(mono) == 1 and mono[0] in indices:
            var = mono[0]
            coeffs[var] = coeffs.get(var, 0) + c
            continue
        return None  # index*index, index*symbol, or index inside an atom
    remainder = Poly(remainder_terms, dict(poly.atom_names))
    return AffineForm(coeffs, remainder)


def _mentions_index(token: str, indices: set, poly: Poly) -> bool:
    if token in indices:
        return True
    if is_atom(token):
        inside = poly.atom_names.get(token, frozenset())
        return bool(inside & indices)
    return False
