"""Scalar classification and array kill (privatization) analysis.

Given a candidate parallel loop, the parallelizer must decide for every
variable written in the body whether the writes create loop-carried
dependences or whether the variable is privatizable:

* a **scalar** is privatizable when, on every execution path through one
  iteration, its first access is a write (``WRITE_FIRST``).  A scalar read
  before any write carries a dependence (``READ_FIRST``) unless it is a
  recognized reduction;
* an **array** is privatizable when every read in the iteration is covered
  by an earlier *unconditional* write region of the same iteration — the
  classic array kill analysis.  Writes aggregated over inner loops use
  region projection (:mod:`repro.analysis.regions`).

Both kinds use *lastprivate* semantics: Polaris "peels the last iteration"
(Section III-B4 of the paper) so the sequential final values survive; our
runtime simulator implements the same contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.regions import Region, project_over_loop, ref_region
from repro.fortran import ast
from repro.fortran.symbols import SymbolTable


class ScalarClass(Enum):
    READ_ONLY = "read-only"
    WRITE_FIRST = "write-first"  # privatizable
    READ_FIRST = "read-first"    # loop-carried unless a reduction
    CONDITIONAL_WRITE = "conditional-write"  # written on some paths only;
    # last-value recovery is not computable, so conservatively serial


class _State(Enum):
    UNSEEN = 0
    WRITTEN = 1
    READ_FIRST = 2


def classify_scalars(body: Sequence[ast.Stmt],
                     table: SymbolTable) -> Dict[str, ScalarClass]:
    """Classify every scalar accessed in ``body`` (one loop iteration)."""
    states: Dict[str, _State] = {}
    reads: Set[str] = set()
    writes: Set[str] = set()
    _scan(list(body), table, states, reads, writes)
    out: Dict[str, ScalarClass] = {}
    for name in reads | writes:
        st = states.get(name, _State.UNSEEN)
        if name not in writes:
            out[name] = ScalarClass.READ_ONLY
        elif st is _State.READ_FIRST:
            out[name] = ScalarClass.READ_FIRST
        elif st is _State.WRITTEN:
            out[name] = ScalarClass.WRITE_FIRST
        else:
            # written only on some paths and never read before the write:
            # lastprivate copy-out from the final iteration would be wrong
            # whenever the final iteration skips the write, so Polaris (and
            # we) keep such loops serial unless the scalar is a reduction
            out[name] = ScalarClass.CONDITIONAL_WRITE
    return out


def _read(name: str, states: Dict[str, _State], reads: Set[str]) -> None:
    reads.add(name)
    if states.get(name, _State.UNSEEN) is _State.UNSEEN:
        states[name] = _State.READ_FIRST


def _write(name: str, states: Dict[str, _State], writes: Set[str]) -> None:
    writes.add(name)
    if states.get(name, _State.UNSEEN) is _State.UNSEEN:
        states[name] = _State.WRITTEN


def _expr_scan(e: Optional[ast.Expr], table: SymbolTable,
               states: Dict[str, _State], reads: Set[str]) -> None:
    if e is None:
        return
    for n in ast.walk_expr(e):
        if isinstance(n, ast.Var) and not table.is_array(n.name):
            _read(n.name.upper(), states, reads)


def _scan(body: List[ast.Stmt], table: SymbolTable,
          states: Dict[str, _State], reads: Set[str],
          writes: Set[str]) -> None:
    for s in body:
        if isinstance(s, ast.Assign):
            _expr_scan(s.value, table, states, reads)
            if isinstance(s.target, ast.ArrayRef):
                for sub in s.target.subs:
                    _expr_scan(sub, table, states, reads)
            if isinstance(s.target, ast.Var) and not table.is_array(
                    s.target.name):
                _write(s.target.name.upper(), states, writes)
        elif isinstance(s, ast.IfBlock):
            for cond, _ in s.arms:
                _expr_scan(cond, table, states, reads)
            merged: Dict[str, _State] = {}
            branch_states: List[Dict[str, _State]] = []
            for _, arm in s.arms:
                st = dict(states)
                _scan(arm, table, st, reads, writes)
                branch_states.append(st)
            has_else = s.arms[-1][0] is None
            if not has_else:
                branch_states.append(dict(states))  # fall-through path
            keys = set()
            for st in branch_states:
                keys |= set(st)
            for k in keys:
                vals = {st.get(k, _State.UNSEEN) for st in branch_states}
                if _State.READ_FIRST in vals:
                    merged[k] = _State.READ_FIRST
                elif vals == {_State.WRITTEN}:
                    merged[k] = _State.WRITTEN
                elif _State.UNSEEN in vals and _State.WRITTEN in vals:
                    merged[k] = _State.UNSEEN
                else:
                    merged[k] = vals.pop()
            states.clear()
            states.update(merged)
        elif isinstance(s, ast.DoLoop):
            _expr_scan(s.start, table, states, reads)
            _expr_scan(s.stop, table, states, reads)
            _expr_scan(s.step, table, states, reads)
            _write(s.var.upper(), states, writes)
            # the body may run zero times: merge like a conditional branch
            st = dict(states)
            _scan(s.body, table, st, reads, writes)
            for k in set(st) | set(states):
                a = states.get(k, _State.UNSEEN)
                b = st.get(k, _State.UNSEEN)
                if _State.READ_FIRST in (a, b):
                    states[k] = _State.READ_FIRST
                elif a is b:
                    states[k] = a
                else:
                    states[k] = _State.UNSEEN
        elif isinstance(s, ast.CallStmt):
            # handled by the parallelizer via side-effect summaries; scan
            # argument expressions as reads
            for a in s.args:
                _expr_scan(a, table, states, reads)
        elif isinstance(s, ast.IoStmt):
            for item in s.items:
                if s.kind == "READ" and isinstance(item, ast.Var) \
                        and not table.is_array(item.name):
                    _write(item.name.upper(), states, writes)
                else:
                    _expr_scan(item, table, states, reads)
        elif isinstance(s, (ast.OmpParallelDo,)):
            _scan([s.loop], table, states, reads, writes)
        elif isinstance(s, ast.TaggedBlock):
            _scan(s.body, table, states, reads, writes)
        # Goto/Continue/Return/Stop: no scalar accesses


# ---------------------------------------------------------------------------
# array kill analysis
# ---------------------------------------------------------------------------

@dataclass
class _Event:
    is_write: bool
    region: Region
    conditional: bool
    #: True when the event is an unsubscripted whole-array reference (its
    #: region is the declared extent, invariant by construction)
    whole: bool = False


def _collect_events(body: Sequence[ast.Stmt], name: str,
                    table: SymbolTable, conditional: bool,
                    inner_loops: Tuple[ast.DoLoop, ...],
                    events: List[_Event]) -> None:
    info = table.info(name)

    def expr_events(e: Optional[ast.Expr]) -> None:
        if e is None:
            return
        for n in ast.walk_expr(e):
            if isinstance(n, ast.ArrayRef) and n.name.upper() == name:
                events.append(_Event(False, _projected(
                    ref_region(n.subs, info), inner_loops), conditional))
            elif isinstance(n, ast.Var) and n.name.upper() == name:
                events.append(_Event(False, Region.whole_array(info),
                                     conditional, whole=True))

    for s in body:
        if isinstance(s, ast.Assign):
            expr_events(s.value)
            if isinstance(s.target, ast.ArrayRef) \
                    and s.target.name.upper() == name:
                for sub in s.target.subs:
                    expr_events(sub)
                events.append(_Event(True, _projected(
                    ref_region(s.target.subs, info), inner_loops),
                    conditional))
            elif isinstance(s.target, ast.Var) \
                    and s.target.name.upper() == name:
                events.append(_Event(True, Region.whole_array(info),
                                     conditional, whole=True))
        elif isinstance(s, ast.IfBlock):
            for cond, arm in s.arms:
                expr_events(cond)
                _collect_events(arm, name, table, True, inner_loops, events)
        elif isinstance(s, ast.DoLoop):
            expr_events(s.start)
            expr_events(s.stop)
            expr_events(s.step)
            _collect_events(s.body, name, table, conditional,
                            inner_loops + (s,), events)
        elif isinstance(s, ast.CallStmt):
            for a in s.args:
                expr_events(a)
                if isinstance(a, (ast.Var, ast.ArrayRef)) \
                        and a.name.upper() == name:
                    # passing the array to a procedure: unknown use
                    events.append(_Event(False, Region.whole_array(info),
                                         conditional, whole=True))
        elif isinstance(s, ast.IoStmt):
            for item in s.items:
                expr_events(item)
        elif isinstance(s, ast.OmpParallelDo):
            _collect_events([s.loop], name, table, conditional, inner_loops,
                            events)
        elif isinstance(s, ast.TaggedBlock):
            _collect_events(s.body, name, table, conditional, inner_loops,
                            events)


def _projected(region: Region,
               loops: Tuple[ast.DoLoop, ...]) -> Region:
    for lp in reversed(loops):
        region = project_over_loop(region, lp)
    return region


def array_privatizable(name: str, body: Sequence[ast.Stmt],
                       table: SymbolTable,
                       loop_var: str = "") -> bool:
    """Is array ``name`` privatizable for a loop (index ``loop_var``) with
    body ``body``?

    Three conditions, all conservative:

    1. every read is covered by some earlier unconditional write region of
       the same iteration (no cross-iteration flow);
    2. every write is unconditional (otherwise the lastprivate copy-out
       from the final iteration could miss values the sequential execution
       produced earlier);
    3. every write region is invariant in ``loop_var`` (each iteration
       writes the same region, so the peeled last iteration reproduces the
       sequential final state).
    """
    name = name.upper()
    loop_var = loop_var.upper()
    events: List[_Event] = []
    _collect_events(body, name, table, False, (), events)
    killed: List[Region] = []
    for ev in events:
        if ev.is_write:
            if ev.conditional:
                return False
            if not ev.whole and not _region_invariant(ev.region, loop_var):
                return False
            killed.append(ev.region)
        else:
            if not any(w.covers(ev.region) for w in killed):
                return False
    return True


def _region_invariant(region: Region, loop_var: str) -> bool:
    """All bounds known and free of the candidate loop's index."""
    for d in region.dims:
        for bound in (d.lo, d.hi):
            if bound is None:
                return False
            if loop_var and loop_var in bound.names_mentioned():
                return False
    return True
