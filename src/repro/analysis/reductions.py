"""Scalar reduction recognition.

Recognizes the OpenMP-expressible patterns Polaris handles:

* ``S = S + e`` / ``S = S - e``  -> ``REDUCTION(+:S)``
* ``S = S * e``                  -> ``REDUCTION(*:S)``
* ``S = MAX(S, e)`` (any arg position) -> ``REDUCTION(MAX:S)``
* ``S = MIN(S, e)``                     -> ``REDUCTION(MIN:S)``

The reduced scalar must appear nowhere else in the loop body (neither read
nor written outside its reduction statements), and every reduction
statement for it must use one consistent operator.  Reduction statements
may sit inside conditionals or inner loops.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.analysis.symbolic import from_expr
from repro.fortran import ast
from repro.fortran.symbols import SymbolTable

_MINMAX = {"MAX": "MAX", "AMAX1": "MAX", "DMAX1": "MAX", "MAX0": "MAX",
           "MIN": "MIN", "AMIN1": "MIN", "DMIN1": "MIN", "MIN0": "MIN"}


def _reduction_op(s: ast.Stmt, table: SymbolTable) -> Optional[Tuple[str, str]]:
    """If ``s`` is a reduction statement, return (var, op)."""
    if not isinstance(s, ast.Assign) or not isinstance(s.target, ast.Var):
        return None
    if table.is_array(s.target.name):
        return None
    v = s.target.name.upper()
    rhs = s.value
    occurrences = sum(1 for n in ast.walk_expr(rhs)
                      if isinstance(n, ast.Var) and n.name.upper() == v)
    if occurrences != 1:
        return None
    # MIN/MAX may appear as FuncRef (after resolution) or as a parenthesized
    # name reference (before resolution) — accept both
    if isinstance(rhs, (ast.FuncRef, ast.ArrayRef)) \
            and rhs.name.upper() in _MINMAX \
            and not table.is_array(rhs.name):
        args = rhs.args if isinstance(rhs, ast.FuncRef) else rhs.subs
        if any(isinstance(a, ast.Var) and a.name.upper() == v for a in args):
            return v, _MINMAX[rhs.name.upper()]
        return None
    # additive: rhs - v must not mention v
    delta = from_expr(rhs) - from_expr(ast.Var(v))
    if v not in delta.names_mentioned():
        return v, "+"
    # multiplicative: rhs must be v * e or e * v at the top
    if isinstance(rhs, ast.BinOp) and rhs.op == "*":
        for a, b in ((rhs.left, rhs.right), (rhs.right, rhs.left)):
            if isinstance(a, ast.Var) and a.name.upper() == v:
                if v not in _names(b):
                    return v, "*"
    return None


def _names(e: ast.Expr) -> Set[str]:
    return {n.name.upper() for n in ast.walk_expr(e)
            if isinstance(n, (ast.Var, ast.ArrayRef, ast.FuncRef))}


def find_reductions(body: Sequence[ast.Stmt],
                    table: SymbolTable) -> Dict[str, str]:
    """Find scalars used *only* in consistent reduction statements in
    ``body``.  Returns {var: op} with op in '+', '*', 'MAX', 'MIN'."""
    candidates: Dict[str, Set[str]] = {}
    reduction_stmt_ids: Dict[int, str] = {}
    for s in ast.walk_stmts(body):
        hit = _reduction_op(s, table)
        if hit:
            v, op = hit
            candidates.setdefault(v, set()).add(op)
            reduction_stmt_ids[id(s)] = v

    if not candidates:
        return {}

    # disqualify any candidate touched outside its reduction statements
    alive = {v for v, ops in candidates.items() if len(ops) == 1}
    for s in ast.walk_stmts(body):
        owner = reduction_stmt_ids.get(id(s))
        for e in ast.stmt_exprs(s):
            for n in ast.walk_expr(e):
                if isinstance(n, ast.Var) and n.name.upper() in alive:
                    v = n.name.upper()
                    if owner != v:
                        alive.discard(v)
        if isinstance(s, ast.Assign) and isinstance(s.target, ast.Var):
            v = s.target.name.upper()
            if v in alive and owner != v:
                alive.discard(v)
        if isinstance(s, ast.DoLoop) and s.var.upper() in alive:
            alive.discard(s.var.upper())
    return {v: next(iter(candidates[v])) for v in alive}
