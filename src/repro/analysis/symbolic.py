"""Symbolic integer polynomial algebra over Fortran expressions.

Dependence analysis reasons about array subscripts as multivariate
polynomials with integer coefficients.  The variables of a polynomial are

* plain scalar variable names (``"I"``, ``"NSP"``), and
* *atoms*: opaque sub-expressions the algebra cannot see inside — array
  element reads (``IX(7)``), function calls, divisions, and anything
  non-polynomial.  An atom is identified by the canonical unparse string of
  its expression, so two occurrences of the same source expression compare
  equal (e.g. the ``IX(7)`` in both operands of a difference cancels —
  exactly the precision the paper's Figure-2 discussion requires), while
  distinct expressions (``IX(7)`` vs ``IX(8)``) yield an unresolvable
  symbolic difference that keeps the analyzer conservative.

Every atom records the set of scalar names appearing inside it
(``names_inside``), which the affine extractor uses to detect subscripts
that are non-affine in a loop index (``A(IDX(I))`` — subscripted
subscripts).

The canonical form is a mapping from monomials (sorted tuples of variable
tokens, with repetition for powers) to integer coefficients.  Only exact
integer arithmetic is performed; anything else becomes an atom.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.fortran import ast
from repro.fortran.unparser import expr_to_str

# a variable token is either a scalar name or an atom key "@<canonical>"
VarToken = str
Monomial = Tuple[VarToken, ...]

_ATOM_PREFIX = "@"


def atom_token(e: ast.Expr) -> VarToken:
    return _ATOM_PREFIX + expr_to_str(e)


def is_atom(token: VarToken) -> bool:
    return token.startswith(_ATOM_PREFIX)


@dataclass(frozen=True)
class Poly:
    """A multivariate polynomial with integer coefficients (canonical,
    immutable).  ``terms`` maps monomials to nonzero coefficients; the empty
    monomial ``()`` holds the constant term.  ``atom_names`` maps each atom
    token to the scalar names mentioned inside it."""

    terms: Mapping[Monomial, int]
    atom_names: Mapping[VarToken, FrozenSet[str]]

    # -- constructors ---------------------------------------------------
    @staticmethod
    def const(c: int) -> "Poly":
        return Poly({(): c} if c else {}, {})

    @staticmethod
    def var(name: str) -> "Poly":
        return Poly({(name.upper(),): 1}, {})

    @staticmethod
    def atom(e: ast.Expr) -> "Poly":
        token = atom_token(e)
        inside = frozenset(
            n.name.upper() for n in ast.walk_expr(e)
            if isinstance(n, ast.Var)) | frozenset(
            n.name.upper() for n in ast.walk_expr(e)
            if isinstance(n, ast.ArrayRef))
        return Poly({(token,): 1}, {token: inside})

    # -- queries ----------------------------------------------------------
    def is_zero(self) -> bool:
        return not self.terms

    def is_constant(self) -> bool:
        return all(m == () for m in self.terms)

    def constant_value(self) -> Optional[int]:
        if self.is_constant():
            return self.terms.get((), 0)
        return None

    def variables(self) -> FrozenSet[VarToken]:
        out = set()
        for m in self.terms:
            out.update(m)
        return frozenset(out)

    def names_mentioned(self) -> FrozenSet[str]:
        """All scalar names this polynomial depends on, looking through
        atoms."""
        out = set()
        for token in self.variables():
            if is_atom(token):
                out.update(self.atom_names.get(token, frozenset()))
            else:
                out.add(token)
        return frozenset(out)

    def coeff(self, token: VarToken) -> int:
        """Coefficient of the degree-1 monomial of ``token``."""
        return self.terms.get((token.upper(),), 0)

    def degree_in(self, token: VarToken) -> int:
        token = token.upper()
        return max((m.count(token) for m in self.terms), default=0)

    def without(self, tokens: Iterable[VarToken]) -> "Poly":
        """Drop every monomial that mentions any of ``tokens``."""
        drop = {t.upper() for t in tokens}
        kept = {m: c for m, c in self.terms.items()
                if not any(v in drop for v in m)}
        return Poly(kept, dict(self.atom_names))

    # -- arithmetic -------------------------------------------------------
    def __add__(self, other: "Poly") -> "Poly":
        terms: Dict[Monomial, int] = dict(self.terms)
        for m, c in other.terms.items():
            terms[m] = terms.get(m, 0) + c
            if terms[m] == 0:
                del terms[m]
        return Poly(terms, {**self.atom_names, **other.atom_names})

    def __sub__(self, other: "Poly") -> "Poly":
        return self + (-other)

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()},
                    dict(self.atom_names))

    def __mul__(self, other: "Poly") -> "Poly":
        terms: Dict[Monomial, int] = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                m = tuple(sorted(m1 + m2))
                terms[m] = terms.get(m, 0) + c1 * c2
                if terms[m] == 0:
                    del terms[m]
        return Poly(terms, {**self.atom_names, **other.atom_names})

    def scale(self, k: int) -> "Poly":
        if k == 0:
            return Poly.const(0)
        return Poly({m: c * k for m, c in self.terms.items()},
                    dict(self.atom_names))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return dict(self.terms) == dict(other.terms)

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.terms:
            return "Poly(0)"
        parts = []
        for m, c in sorted(self.terms.items()):
            mono = "*".join(m) if m else "1"
            parts.append(f"{c}*{mono}")
        return "Poly(" + " + ".join(parts) + ")"

    # -- conversion back to AST -------------------------------------------
    def to_expr(self) -> ast.Expr:
        """Render the polynomial as a Fortran expression AST."""
        from repro.fortran.parser import parse_expression

        def mono_expr(m: Monomial, c: int) -> ast.Expr:
            factors: list = []
            if abs(c) != 1 or not m:
                factors.append(ast.IntLit(abs(c)))
            for token in m:
                if is_atom(token):
                    factors.append(parse_expression(token[1:]))
                else:
                    factors.append(ast.Var(token))
            e = factors[0]
            for f in factors[1:]:
                e = ast.BinOp("*", e, f)
            return e

        terms = sorted(self.terms.items())
        result: Optional[ast.Expr] = None
        for m, c in terms:
            piece = mono_expr(m, c)
            if result is None:
                result = ast.UnOp("-", piece) if c < 0 else piece
            elif c < 0:
                result = ast.BinOp("-", result, piece)
            else:
                result = ast.BinOp("+", result, piece)
        return result if result is not None else ast.IntLit(0)


def from_expr(e: ast.Expr) -> Poly:
    """Convert an integer-valued expression to canonical polynomial form.

    Non-polynomial constructs (division, non-constant powers, array reads,
    function calls, real literals) become atoms, never errors — the
    consumers degrade to conservative answers when atoms remain.
    """
    if isinstance(e, ast.IntLit):
        return Poly.const(e.value)
    if isinstance(e, ast.Var):
        return Poly.var(e.name)
    if isinstance(e, ast.UnOp) and e.op == "-":
        return -from_expr(e.operand)
    if isinstance(e, ast.UnOp) and e.op == "+":
        return from_expr(e.operand)
    if isinstance(e, ast.BinOp):
        if e.op == "+":
            return from_expr(e.left) + from_expr(e.right)
        if e.op == "-":
            return from_expr(e.left) - from_expr(e.right)
        if e.op == "*":
            return from_expr(e.left) * from_expr(e.right)
        if e.op == "**":
            exp = from_expr(e.right).constant_value()
            if exp is not None and 0 <= exp <= 4:
                base = from_expr(e.left)
                out = Poly.const(1)
                for _ in range(exp):
                    out = out * base
                return out
        if e.op == "/":
            num = from_expr(e.left)
            den = from_expr(e.right).constant_value()
            if den is not None and den != 0:
                if all(c % den == 0 for c in num.terms.values()):
                    return Poly({m: c // den for m, c in num.terms.items()},
                                dict(num.atom_names))
    return Poly.atom(e)


def simplify_expr(e: ast.Expr) -> ast.Expr:
    """Normalize an integer expression through the polynomial form.

    Used for canonical comparison of expressions (the reverse inliner's
    equivalence-modulo-reassociation check): two expressions are equivalent
    when their polynomial forms are equal.
    """
    return from_expr(e).to_expr()


def exprs_equivalent(a: ast.Expr, b: ast.Expr) -> bool:
    """Structural-modulo-arithmetic equivalence of two expressions."""
    if a == b:
        return True
    return from_expr(a) == from_expr(b)
