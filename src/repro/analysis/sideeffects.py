"""Per-procedure side-effect (MOD/REF) summaries.

The no-inlining baseline needs to know, for a CALL inside a candidate
loop, whether the callee has *any* observable side effect.  Summaries are
computed bottom-up over the call graph:

* ``mod``/``ref``: names of formals and COMMON variables (by the callee's
  view) written / read anywhere in the callee or its callees;
* ``has_io``/``has_stop``: the callee (transitively) performs I/O or may
  abort — both disable reordering of enclosing loops;
* ``opaque``: the callee (transitively) invokes a procedure whose body is
  unavailable, so nothing can be assumed.

``pure`` means: no writes at all, no I/O, no STOP, not opaque — calls to
pure procedures do not block parallelization of an enclosing loop.  This
mirrors the (limited) interprocedural knowledge Polaris applies when
inlining is disabled; anything stronger is exactly what the paper's
annotation mechanism supplies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.defuse import collect_accesses
from repro.fortran import ast
from repro.program import Program


@dataclass
class Summary:
    name: str
    mod: Set[str] = field(default_factory=set)
    ref: Set[str] = field(default_factory=set)
    has_io: bool = False
    has_stop: bool = False
    opaque: bool = False

    @property
    def pure(self) -> bool:
        return (not self.mod and not self.has_io and not self.has_stop
                and not self.opaque)


OPAQUE = Summary("<unknown>", opaque=True, has_io=True, has_stop=True)


def compute_summaries(program: Program,
                      graph: Optional[CallGraph] = None) -> Dict[str, Summary]:
    """Bottom-up MOD/REF summaries for every procedure in ``program``.

    Procedures on call-graph cycles (recursion) are treated as opaque —
    conventional inlining cannot handle them either, which is one of the
    paper's motivating limitations.
    """
    graph = graph or build_callgraph(program)
    summaries: Dict[str, Summary] = {}
    procedures = program.procedures

    for name in graph.topological_bottom_up():
        unit = procedures.get(name)
        if unit is None:
            continue  # PROGRAM units get summaries too, but lazily below
        summaries[name] = _summarize(program, unit, graph, summaries)
    for unit in program.units:
        if unit.name not in summaries and unit.kind != "PROGRAM":
            summaries[unit.name] = _summarize(program, unit, graph, summaries)
    return summaries


def _summarize(program: Program, unit: ast.ProgramUnit, graph: CallGraph,
               summaries: Dict[str, Summary]) -> Summary:
    out = Summary(unit.name)
    if graph.is_recursive(unit.name):
        out.opaque = True
    table = program.symtab(unit)
    acc = collect_accesses(unit.body, table)
    out.has_io |= acc.has_io
    out.has_stop |= acc.has_stop
    if acc.has_opaque or acc.unanalyzable:
        # ENTRY points, unlowered statements or substring accesses: the
        # summary cannot bound what the callee touches
        out.opaque = True
    if any(isinstance(d, ast.EquivalenceDecl) for d in unit.decls):
        # storage association inside the callee invalidates the
        # formal/COMMON name mapping the summary is built on
        out.opaque = True
    for s in ast.walk_stmts(unit.body):
        if isinstance(s, ast.Return) and s.alt is not None:
            out.opaque = True  # alternate return: non-local control flow
            break

    formals = set(table.formals)

    def visible(name: str) -> bool:
        info = table.declared(name)
        if name in formals:
            return True
        return info is not None and info.common_block is not None

    for name in acc.scalar_writes:
        if visible(name):
            out.mod.add(name)
    for name in acc.scalar_reads:
        if visible(name):
            out.ref.add(name)
    for name, _, is_write in acc.array_accesses:
        if visible(name):
            (out.mod if is_write else out.ref).add(name)

    # merge callee effects, mapping callee formals through call arguments
    for s in ast.walk_stmts(unit.body):
        if not isinstance(s, ast.CallStmt):
            continue
        callee = summaries.get(s.name.upper())
        if callee is None:
            if s.name.upper() in program.procedures:
                # cycle member not yet summarized: conservative
                callee = OPAQUE
            else:
                callee = OPAQUE  # external library routine
        out.has_io |= callee.has_io
        out.has_stop |= callee.has_stop
        out.opaque |= callee.opaque
        callee_unit = program.procedures.get(s.name.upper())
        callee_formals = ([p.upper() for p in callee_unit.params]
                          if callee_unit else [])
        for k, arg in enumerate(s.args):
            root = arg.name.upper() if isinstance(
                arg, (ast.Var, ast.ArrayRef)) else None
            if root is None or not visible(root):
                continue
            formal = callee_formals[k] if k < len(callee_formals) else None
            if formal is None:
                out.mod.add(root)  # unknown binding: assume modified
                out.ref.add(root)
            else:
                if formal in callee.mod:
                    out.mod.add(root)
                if formal in callee.ref:
                    out.ref.add(root)
        # COMMON effects propagate by name
        for name in callee.mod - set(callee_formals):
            if visible(name):
                out.mod.add(name)
            else:
                out.mod.add(name)  # common names are globally meaningful
        for name in callee.ref - set(callee_formals):
            out.ref.add(name)
    return out
