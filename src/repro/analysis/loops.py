"""Loop nest discovery and bound evaluation.

Provides the parallelizer's view of a program unit's loops: every
:class:`~repro.fortran.ast.DoLoop` with its nesting context, a stable
*origin identity* that survives inlining (so Table II can count each
original loop once even when inlining duplicates it), and constant bound
extraction through the symbolic layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.analysis.symbolic import from_expr
from repro.analysis.dependence import LoopCtx
from repro.fortran import ast


@dataclass
class LoopInfo:
    """One DO loop with its nesting context inside a unit body."""

    loop: ast.DoLoop
    #: enclosing loops, outermost first (not including ``loop``)
    enclosing: List[ast.DoLoop] = field(default_factory=list)
    #: chain of TaggedBlock callees the loop sits inside (annotation code)
    tag_path: Tuple[str, ...] = ()

    @property
    def depth(self) -> int:
        return len(self.enclosing)

    @property
    def index_vars(self) -> List[str]:
        return [lp.var for lp in self.enclosing] + [self.loop.var]

    @property
    def origin(self) -> Optional[str]:
        return getattr(self.loop, "origin", None)


def iter_loops(body: List[ast.Stmt],
               enclosing: Optional[List[ast.DoLoop]] = None,
               tag_path: Tuple[str, ...] = ()) -> Iterator[LoopInfo]:
    """Yield every loop in ``body`` with context, outer loops first."""
    enclosing = enclosing or []
    for s in body:
        if isinstance(s, ast.DoLoop):
            yield LoopInfo(s, list(enclosing), tag_path)
            yield from iter_loops(s.body, enclosing + [s], tag_path)
        elif isinstance(s, ast.OmpParallelDo):
            yield LoopInfo(s.loop, list(enclosing), tag_path)
            yield from iter_loops(s.loop.body, enclosing + [s.loop], tag_path)
        elif isinstance(s, ast.IfBlock):
            for _, arm in s.arms:
                yield from iter_loops(arm, enclosing, tag_path)
        elif isinstance(s, ast.TaggedBlock):
            yield from iter_loops(s.body, enclosing,
                                  tag_path + (s.callee,))


def assign_origins(unit: ast.ProgramUnit) -> None:
    """Stamp every loop in ``unit`` with a stable origin id ``UNIT:n``.

    Origins survive :func:`repro.fortran.ast.clone` (deepcopy carries the
    attribute), which is how inlined copies of a loop remain attributable
    to the original — the counting rule Table II uses.
    """
    from repro.naming import is_generated_name
    n = 0
    for info in iter_loops(unit.body):
        if is_generated_name(info.loop.var):
            continue  # annotation-generated loops are not original loops
        if not hasattr(info.loop, "origin"):
            info.loop.origin = f"{unit.name}:{n}"  # type: ignore[attr-defined]
        n += 1


def const_int(e: ast.Expr) -> Optional[int]:
    """Evaluate ``e`` to an integer constant if possible."""
    return from_expr(e).constant_value()


def loop_ctx(loop: ast.DoLoop) -> LoopCtx:
    """Dependence-test context for a (step-1) loop.  Loops with a non-unit
    or symbolic step get unknown bounds, which keeps every test
    conservative."""
    step = const_int(loop.step) if loop.step is not None else 1
    if step != 1:
        return LoopCtx(loop.var, None, None)
    return LoopCtx(loop.var, const_int(loop.start), const_int(loop.stop))


def trip_count(loop: ast.DoLoop) -> Optional[int]:
    """Constant trip count, if all of start/stop/step are constant."""
    start = const_int(loop.start)
    stop = const_int(loop.stop)
    step = const_int(loop.step) if loop.step is not None else 1
    if start is None or stop is None or step is None or step == 0:
        return None
    return max(0, (stop - start + step) // step)
