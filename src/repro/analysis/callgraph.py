"""Interprocedural call graph construction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.fortran import ast
from repro.fortran.intrinsics import is_intrinsic
from repro.program import Program


@dataclass
class CallGraph:
    """Caller -> callee edges over procedure names (upper case).

    ``unknown`` collects names invoked but not defined in the program
    (external library routines) — the calls conventional inlining cannot
    touch but annotations can summarize.
    """

    edges: Dict[str, Set[str]] = field(default_factory=dict)
    unknown: Set[str] = field(default_factory=set)

    def callees(self, name: str) -> Set[str]:
        return self.edges.get(name.upper(), set())

    def callers_of(self, name: str) -> Set[str]:
        name = name.upper()
        return {u for u, vs in self.edges.items() if name in vs}

    def is_recursive(self, name: str) -> bool:
        """Is ``name`` on a call-graph cycle (including self-recursion)?"""
        name = name.upper()
        seen: Set[str] = set()
        stack = list(self.callees(name))
        while stack:
            n = stack.pop()
            if n == name:
                return True
            if n in seen:
                continue
            seen.add(n)
            stack.extend(self.callees(n))
        return False

    def topological_bottom_up(self) -> List[str]:
        """Procedures ordered callees-first; members of cycles appear in an
        arbitrary (but deterministic) position within their cycle."""
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 visiting, 1 done

        def visit(n: str) -> None:
            if state.get(n) is not None:
                return
            state[n] = 0
            for callee in sorted(self.callees(n)):
                if state.get(callee) != 0:
                    visit(callee)
            state[n] = 1
            order.append(n)

        for n in sorted(self.edges):
            visit(n)
        return order


def _called_names(unit: ast.ProgramUnit) -> Set[str]:
    names: Set[str] = set()
    for s in ast.walk_stmts(unit.body):
        if isinstance(s, ast.CallStmt):
            names.add(s.name.upper())
    for e in ast.walk_all_exprs(unit.body):
        if isinstance(e, ast.FuncRef) and not is_intrinsic(e.name):
            names.add(e.name.upper())
    return names


def build_callgraph(program: Program) -> CallGraph:
    graph = CallGraph()
    defined = {u.name for u in program.units}
    for unit in program.units:
        callees = _called_names(unit)
        graph.edges[unit.name] = callees
        graph.unknown |= callees - defined
    return graph
