"""Program analysis substrate: symbolic algebra, affine subscript
extraction, data dependence testing, loop utilities, def/use, side-effect
summaries, privatization and reduction recognition.

These are the analyses a Polaris-class auto-parallelizer needs; the
parallelizer in :mod:`repro.polaris` composes them.
"""
