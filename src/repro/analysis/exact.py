"""Exact (coupled-subscript) dependence testing via Fourier-Motzkin
elimination.

The per-dimension tests in :mod:`repro.analysis.dependence` treat each
subscript position independently, which loses *coupling*: the classic
example is ``A(I+J, I-J)`` against itself under an ``I``-carried
direction — each dimension individually admits solutions, but the joint
system

    i + j = i' + j'
    i - j = i' - j'
    i + 1 <= i'

is infeasible.  This module builds the joint linear system over all
iteration variables (one copy per side, direction constraints, loop
bounds where known) and decides *rational* feasibility exactly by
Fourier-Motzkin elimination, with the per-dimension GCD tests supplying
the integrality component (the classic "Banerjee + GCD" exactness recipe
that the Power/Omega line of work refined).

Rational infeasibility soundly implies integer infeasibility, so a
``False`` from :meth:`ExactTester.may_depend` is a proof of independence.
Rational feasibility is conservatively reported as a (possible)
dependence.

Exposed through :class:`repro.analysis.dependence.DependenceTester` via
``use_exact=True``; the coarse tests run first because they are cheaper
and usually sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.affine import AffineForm
from repro.analysis.dependence import LoopCtx

#: one linear constraint: sum(coeffs[v] * v) + const >= 0
Constraint = Tuple[Dict[str, Fraction], Fraction]

_MAX_CONSTRAINTS = 2000  # FM can blow up quadratically per elimination


def _combine(a: Constraint, b: Constraint, var: str) -> Constraint:
    """Positive combination of ``a`` (coeff > 0) and ``b`` (coeff < 0)
    eliminating ``var``."""
    ca, consta = a
    cb, constb = b
    pa = ca[var]
    pb = -cb[var]
    coeffs: Dict[str, Fraction] = {}
    for v in set(ca) | set(cb):
        if v == var:
            continue
        c = ca.get(v, Fraction(0)) * pb + cb.get(v, Fraction(0)) * pa
        if c:
            coeffs[v] = c
    return coeffs, consta * pb + constb * pa


def feasible(constraints: Sequence[Constraint]) -> bool:
    """Rational feasibility of a conjunction of linear inequalities."""
    work: List[Constraint] = [(dict(c), Fraction(k))
                              for c, k in constraints]
    while True:
        variables = sorted({v for c, _ in work for v in c})
        if not variables:
            break
        # eliminate the variable appearing in the fewest constraints
        var = min(variables,
                  key=lambda v: sum(1 for c, _ in work if v in c))
        pos = [c for c in work if c[0].get(var, 0) > 0]
        neg = [c for c in work if c[0].get(var, 0) < 0]
        rest = [c for c in work if not c[0].get(var, 0)]
        combined = [_combine(p, n, var) for p in pos for n in neg]
        work = rest + combined
        if len(work) > _MAX_CONSTRAINTS:
            return True  # give up conservatively: cannot disprove
        # drop trivially-true constraints, detect trivially-false ones
        pruned: List[Constraint] = []
        for coeffs, const in work:
            if not coeffs:
                if const < 0:
                    return False
                continue
            pruned.append((coeffs, const))
        work = pruned
    return all(const >= 0 for coeffs, const in work if not coeffs) \
        if work else True


@dataclass
class ExactTester:
    """Joint-system dependence test over a loop nest."""

    def may_depend(self,
                   subs_a: Sequence[Optional[AffineForm]],
                   subs_b: Sequence[Optional[AffineForm]],
                   loops: Sequence[LoopCtx],
                   dirs: Dict[str, str]) -> bool:
        """Conservative joint test; mirrors
        :meth:`repro.analysis.dependence.DependenceTester.may_depend`.

        Returns True (dependence possible) whenever any dimension is
        non-affine or has a symbolic constant difference — the exact
        machinery needs a fully numeric system.
        """
        if len(subs_a) != len(subs_b):
            return True
        constraints: List[Constraint] = []
        for fa, fb in zip(subs_a, subs_b):
            if fa is None or fb is None:
                return True
            delta = (fb.remainder - fa.remainder).constant_value()
            if delta is None:
                return True
            # sum_a a_k i_k - sum_b b_k i'_k = delta  (two inequalities)
            coeffs: Dict[str, Fraction] = {}
            for v, c in fa.coeffs.items():
                if c:
                    coeffs["i:" + v] = coeffs.get("i:" + v,
                                                  Fraction(0)) + c
            for v, c in fb.coeffs.items():
                if c:
                    coeffs["j:" + v] = coeffs.get("j:" + v,
                                                  Fraction(0)) - c
            if not coeffs:
                if delta != 0:
                    return False  # ZIV disproof
                continue
            constraints.append((dict(coeffs), Fraction(-delta)))
            constraints.append(({v: -c for v, c in coeffs.items()},
                                Fraction(delta)))

        for lp in loops:
            vi, vj = "i:" + lp.var.upper(), "j:" + lp.var.upper()
            d = dirs.get(lp.var, "*")
            if d == "=":
                constraints.append(({vi: Fraction(1), vj: Fraction(-1)},
                                    Fraction(0)))
                constraints.append(({vi: Fraction(-1), vj: Fraction(1)},
                                    Fraction(0)))
            elif d == "<":
                # i + 1 <= i'   <=>   i' - i - 1 >= 0
                constraints.append(({vj: Fraction(1), vi: Fraction(-1)},
                                    Fraction(-1)))
            elif d == ">":
                constraints.append(({vi: Fraction(1), vj: Fraction(-1)},
                                    Fraction(-1)))
            for v in (vi, vj):
                if lp.lower is not None:
                    constraints.append(({v: Fraction(1)},
                                        Fraction(-lp.lower)))
                if lp.upper is not None:
                    constraints.append(({v: Fraction(-1)},
                                        Fraction(lp.upper)))
        return feasible(constraints)
