"""Array region (section) representation and coverage reasoning.

A :class:`Region` is a per-dimension list of symbolic ``[lo, hi]`` ranges
(:class:`~repro.analysis.symbolic.Poly` bounds).  Regions support the two
operations the array-kill analysis needs:

* **projection** over an inner loop: a reference ``A(J)`` inside
  ``DO J = 1, M`` aggregates to the region ``A(1:M)``;
* **coverage**: does a written region provably contain a read region?
  Provability is per-dimension: the bound difference must simplify to a
  constant of the right sign (equal symbolic bounds therefore cover each
  other, while ``1:NNPED`` does not provably cover ``1:NNPS`` — the exact
  kill-analysis failure mode the paper's Section II-B3 describes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.affine import from_poly
from repro.analysis.symbolic import Poly, from_expr
from repro.fortran import ast
from repro.fortran.symbols import VarInfo


@dataclass(frozen=True)
class Dim:
    """One dimension of a region; ``None`` bounds are unknown/unbounded."""

    lo: Optional[Poly]
    hi: Optional[Poly]

    @staticmethod
    def point(p: Poly) -> "Dim":
        return Dim(p, p)

    @staticmethod
    def unknown() -> "Dim":
        return Dim(None, None)


@dataclass(frozen=True)
class Region:
    dims: Tuple[Dim, ...]

    @staticmethod
    def whole_array(info: VarInfo) -> "Region":
        """The declared extent of an array (unknown for assumed-size)."""
        dims: List[Dim] = []
        for d in info.dims or ():
            lo = from_expr(d.lower)
            hi = from_expr(d.upper) if d.upper is not None else None
            dims.append(Dim(lo, hi))
        return Region(tuple(dims))

    def covers(self, other: "Region") -> bool:
        """Provably ``self`` contains ``other`` (conservative)."""
        if len(self.dims) != len(other.dims):
            return False
        for mine, theirs in zip(self.dims, other.dims):
            if not _bound_le(mine.lo, theirs.lo):
                return False
            if not _bound_ge(mine.hi, theirs.hi):
                return False
        return True


def _bound_le(a: Optional[Poly], b: Optional[Poly]) -> bool:
    """Provably a <= b."""
    if a is None or b is None:
        return False
    diff = (b - a).constant_value()
    return diff is not None and diff >= 0


def _bound_ge(a: Optional[Poly], b: Optional[Poly]) -> bool:
    if a is None or b is None:
        return False
    diff = (a - b).constant_value()
    return diff is not None and diff >= 0


def ref_region(subs: Sequence[ast.Expr], info: VarInfo) -> Region:
    """Region of a single reference ``A(subs)``.

    * an empty subscript list (whole-array reference) is the declared
      extent;
    * a :class:`~repro.fortran.ast.RangeExpr` subscript is a section whose
      missing bounds default to the declared bounds of that dimension.
    """
    if not subs:
        return Region.whole_array(info)
    dims: List[Dim] = []
    declared = info.dims or ()
    for k, sub in enumerate(subs):
        if isinstance(sub, ast.RangeExpr):
            if sub.step is not None:
                dims.append(Dim.unknown())
                continue
            lo = from_expr(sub.lo) if sub.lo is not None else (
                from_expr(declared[k].lower) if k < len(declared) else None)
            if sub.hi is not None:
                hi: Optional[Poly] = from_expr(sub.hi)
            elif k < len(declared) and declared[k].upper is not None:
                hi = from_expr(declared[k].upper)
            else:
                hi = None
            dims.append(Dim(lo, hi))
        else:
            dims.append(Dim.point(from_expr(sub)))
    return Region(tuple(dims))


def project_over_loop(region: Region, loop: ast.DoLoop) -> Region:
    """Aggregate a region over all iterations of an inner loop.

    Each bound affine in the loop variable with coefficient +-1 maps to the
    range swept by the loop (assumed step 1 upward); any other dependence
    on the loop variable makes that dimension unknown.
    """
    var = loop.var.upper()
    start = from_expr(loop.start)
    stop = from_expr(loop.stop)
    step_const = from_expr(loop.step).constant_value() if loop.step else 1
    dims: List[Dim] = []
    for d in region.dims:
        lo = _project_bound(d.lo, var, start, stop, step_const, is_lo=True)
        hi = _project_bound(d.hi, var, start, stop, step_const, is_lo=False)
        dims.append(Dim(lo, hi))
    return Region(tuple(dims))


def _project_bound(bound: Optional[Poly], var: str, start: Poly, stop: Poly,
                   step: Optional[int], is_lo: bool) -> Optional[Poly]:
    if bound is None:
        return None
    if var not in bound.names_mentioned():
        return bound
    if step != 1:
        return None
    form = from_poly(bound, [var])
    if form is None:
        return None
    c = form.coeff(var)
    if c == 1:
        chosen = start if is_lo else stop
    elif c == -1:
        chosen = stop if is_lo else start
    else:
        return None
    return form.remainder + chosen.scale(c)
