"""Scalar and array def/use collection.

These helpers answer, for a statement or a statement list, which scalar
names are written, which are read, and which array references occur with
read/write classification.  They feed privatization, reduction
recognition, side-effect summaries and the forward-substitution pass.

Array accesses: ``A(subs)`` on the left of an assignment is a *write of
array A* plus *reads* of everything in the subscripts.  A whole-array
region write ``A(1:N) = e`` is a write of A.  An array name passed to a
CALL is treated by the caller of these helpers via side-effect summaries —
here it is reported in ``call_args``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Set, Tuple

from repro.fortran import ast
from repro.fortran.symbols import SymbolTable


@dataclass
class AccessSet:
    """Accumulated accesses for a statement region."""

    scalar_reads: Set[str] = field(default_factory=set)
    scalar_writes: Set[str] = field(default_factory=set)
    #: (array name, subscripts, is_write) in textual order
    array_accesses: List[Tuple[str, Tuple[ast.Expr, ...], bool]] = \
        field(default_factory=list)
    #: names passed as CALL arguments (may be read and/or written)
    call_args: Set[str] = field(default_factory=set)
    has_call: bool = False
    has_io: bool = False
    has_stop: bool = False
    has_goto: bool = False
    #: names accessed through a construct the dependence model cannot
    #: represent (CHARACTER substring references on scalars, assigned-GOTO
    #: label variables); loops touching them must stay serial
    unanalyzable: Set[str] = field(default_factory=set)
    #: region contains an Opaque (unlowered) statement or an ENTRY point —
    #: it may read or write anything
    has_opaque: bool = False

    def reads_of(self, name: str) -> bool:
        name = name.upper()
        return name in self.scalar_reads or any(
            a == name and not w for a, _, w in self.array_accesses)

    def writes_of(self, name: str) -> bool:
        name = name.upper()
        return name in self.scalar_writes or any(
            a == name and w for a, _, w in self.array_accesses)


def _is_substring(e: ast.ArrayRef, table: SymbolTable) -> bool:
    """True for a parenthesized reference to a *declared* non-array name —
    after call resolution that can only be a CHARACTER substring."""
    v = table.declared(e.name)
    return v is not None and not v.is_array


def _expr_reads(e: ast.Expr, table: SymbolTable, acc: AccessSet) -> None:
    if isinstance(e, ast.Var):
        if table.is_array(e.name):
            # whole-array reference (argument positions); record as an
            # unsubscripted read
            acc.array_accesses.append((e.name.upper(), (), False))
        else:
            acc.scalar_reads.add(e.name.upper())
    elif isinstance(e, ast.ArrayRef):
        if _is_substring(e, table):
            # a parenthesized reference to a declared non-array name that
            # survived call resolution is a CHARACTER substring: model it
            # as a scalar read and flag the name unanalyzable (the
            # dependence tester has no model of sub-string overlap)
            acc.scalar_reads.add(e.name.upper())
            acc.unanalyzable.add(e.name.upper())
        else:
            acc.array_accesses.append((e.name.upper(), e.subs, False))
        for s in e.subs:
            _expr_reads(s, table, acc)
    elif isinstance(e, ast.FuncRef):
        for a in e.args:
            _expr_reads(a, table, acc)
    elif isinstance(e, ast.BinOp):
        _expr_reads(e.left, table, acc)
        _expr_reads(e.right, table, acc)
    elif isinstance(e, ast.UnOp):
        _expr_reads(e.operand, table, acc)
    elif isinstance(e, ast.RangeExpr):
        for part in (e.lo, e.hi, e.step):
            if part is not None:
                _expr_reads(part, table, acc)


def collect_accesses(body: Sequence[ast.Stmt],
                     table: SymbolTable) -> AccessSet:
    """Collect all accesses in ``body`` (recursing into nested blocks)."""
    acc = AccessSet()
    for s in ast.walk_stmts(body):
        _stmt_accesses(s, table, acc)
    return acc


def _stmt_accesses(s: ast.Stmt, table: SymbolTable, acc: AccessSet) -> None:
    if isinstance(s, ast.Assign):
        _expr_reads(s.value, table, acc)
        if isinstance(s.target, ast.Var):
            if table.is_array(s.target.name):
                acc.array_accesses.append((s.target.name.upper(), (), True))
            else:
                acc.scalar_writes.add(s.target.name.upper())
        elif _is_substring(s.target, table):
            # substring write: conservatively a scalar write of the whole
            # variable, and unanalyzable (partial update)
            acc.scalar_writes.add(s.target.name.upper())
            acc.unanalyzable.add(s.target.name.upper())
            for sub in s.target.subs:
                _expr_reads(sub, table, acc)
        else:
            acc.array_accesses.append(
                (s.target.name.upper(), s.target.subs, True))
            for sub in s.target.subs:
                _expr_reads(sub, table, acc)
    elif isinstance(s, ast.IfBlock):
        for cond, _ in s.arms:
            if cond is not None:
                _expr_reads(cond, table, acc)
    elif isinstance(s, ast.DoLoop):
        acc.scalar_writes.add(s.var.upper())
        _expr_reads(s.start, table, acc)
        _expr_reads(s.stop, table, acc)
        if s.step is not None:
            _expr_reads(s.step, table, acc)
    elif isinstance(s, ast.CallStmt):
        acc.has_call = True
        for a in s.args:
            if isinstance(a, ast.AltReturn):
                # the callee may RETURN n straight to a labelled statement
                # in this unit: unstructured control flow at the call site
                acc.has_goto = True
                continue
            _expr_reads(a, table, acc)
            root = _root_name(a)
            if root:
                acc.call_args.add(root)
    elif isinstance(s, ast.IoStmt):
        acc.has_io = True
        for item in s.items:
            if s.kind == "READ":
                # READ writes its item list
                if isinstance(item, ast.Var) and not table.is_array(item.name):
                    acc.scalar_writes.add(item.name.upper())
                elif isinstance(item, ast.ArrayRef):
                    acc.array_accesses.append(
                        (item.name.upper(), item.subs, True))
                    for sub in item.subs:
                        _expr_reads(sub, table, acc)
                else:
                    _expr_reads(item, table, acc)
            else:
                _expr_reads(item, table, acc)
    elif isinstance(s, ast.Stop):
        acc.has_stop = True
    elif isinstance(s, ast.Goto):
        acc.has_goto = True
    elif isinstance(s, ast.ComputedGoto):
        acc.has_goto = True
        _expr_reads(s.index, table, acc)
    elif isinstance(s, ast.AssignedGoto):
        acc.has_goto = True
        acc.scalar_reads.add(s.var.upper())
    elif isinstance(s, ast.LabelAssign):
        acc.scalar_writes.add(s.var.upper())
    elif isinstance(s, (ast.EntryStmt, ast.Opaque)):
        acc.has_opaque = True
    # Continue/Return/OmpParallelDo/TaggedBlock carry no direct accesses


def _root_name(e: ast.Expr) -> str:
    if isinstance(e, (ast.Var, ast.ArrayRef)):
        return e.name.upper()
    return ""


def statement_accesses(s: ast.Stmt, table: SymbolTable) -> AccessSet:
    """Accesses of a single statement, recursing into its nested blocks."""
    return collect_accesses([s], table)


def iter_statements_with_path(
        body: Sequence[ast.Stmt],
        conditional: bool = False,
) -> Iterator[Tuple[ast.Stmt, bool]]:
    """Yield (statement, is_conditionally_executed) pairs in textual
    order.  Statements inside IF arms are conditional; loop bodies are not
    treated as conditional (the kill analysis reasons per iteration)."""
    for s in body:
        yield s, conditional
        if isinstance(s, ast.IfBlock):
            for _, arm in s.arms:
                yield from iter_statements_with_path(arm, True)
        elif isinstance(s, ast.DoLoop):
            yield from iter_statements_with_path(s.body, conditional)
        elif isinstance(s, ast.OmpParallelDo):
            yield from iter_statements_with_path([s.loop], conditional)
        elif isinstance(s, ast.TaggedBlock):
            yield from iter_statements_with_path(s.body, conditional)
