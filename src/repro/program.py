"""Whole-application container.

A PERFECT-style application is several Fortran files; :class:`Program`
gathers their program units, runs call resolution across file boundaries,
and caches symbol tables.  All transformation pipelines (inlining,
parallelization, reverse inlining) operate on a Program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SemanticError
from repro.fortran import ast
from repro.fortran.parser import parse_source
from repro.fortran.symbols import (SymbolTable, build_symbol_table,
                                   function_names, resolve_calls)


@dataclass
class Program:
    """A whole multi-file Fortran application."""

    files: List[ast.SourceFile] = field(default_factory=list)
    name: str = "program"

    _tables: Dict[int, SymbolTable] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    @staticmethod
    def from_sources(sources: Dict[str, str], name: str = "program") -> "Program":
        """Parse a {filename: text} mapping and resolve cross-file calls."""
        files = [parse_source(text, fname) for fname, text in sources.items()]
        prog = Program(files, name)
        prog.resolve()
        return prog

    @staticmethod
    def from_source(text: str, name: str = "program") -> "Program":
        return Program.from_sources({f"{name}.f": text}, name)

    # ------------------------------------------------------------------
    @property
    def units(self) -> List[ast.ProgramUnit]:
        return [u for f in self.files for u in f.units]

    @property
    def main(self) -> ast.ProgramUnit:
        for u in self.units:
            if u.kind == "PROGRAM":
                return u
        raise SemanticError(f"{self.name}: no PROGRAM unit")

    def unit(self, name: str) -> ast.ProgramUnit:
        name = name.upper()
        for u in self.units:
            if u.name == name:
                return u
        raise KeyError(name)

    def has_unit(self, name: str) -> bool:
        return any(u.name == name.upper() for u in self.units)

    @property
    def procedures(self) -> Dict[str, ast.ProgramUnit]:
        return {u.name: u for u in self.units
                if u.kind in ("SUBROUTINE", "FUNCTION")}

    # ------------------------------------------------------------------
    def resolve(self) -> None:
        """Run function-reference resolution with the global function set
        (cross-file) and invalidate cached symbol tables."""
        funcs = set()
        for f in self.files:
            funcs |= function_names(f)
        for f in self.files:
            resolve_calls(f, funcs)
        self._tables.clear()

    def symtab(self, unit: ast.ProgramUnit) -> SymbolTable:
        key = id(unit)
        if key not in self._tables:
            self._tables[key] = build_symbol_table(unit)
        return self._tables[key]

    def invalidate(self, unit: Optional[ast.ProgramUnit] = None) -> None:
        """Drop cached symbol tables after a transformation mutated
        declarations."""
        if unit is None:
            self._tables.clear()
        else:
            self._tables.pop(id(unit), None)

    # ------------------------------------------------------------------
    def unparse(self) -> Dict[str, str]:
        from repro.fortran.unparser import unparse
        return {f.filename: unparse(f) for f in self.files}

    def total_lines(self) -> int:
        """Code size metric used by Table II: source lines after unparse,
        comments excluded (the unparser only emits structural comments,
        which Table II's metric in the paper also includes as 'mostly
        OpenMP directives')."""
        return sum(text.count("\n") for text in self.unparse().values())

    def clone(self) -> "Program":
        return Program([ast.clone(f) for f in self.files], self.name)
