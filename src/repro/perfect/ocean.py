"""OCEAN — two-dimensional ocean simulation.

Two interprocedural idioms drive its Table II row:

* ``SCATTR`` scatters forcing terms into the stream-function pool through
  the one-to-one row directory ``IROW`` (a Figure 10-style map).  The
  annotation's ``unique`` operator proves each sweep iteration owns its
  row, so the sweep parallelizes under annotation inlining only —
  conventional inlining produces the subscripted subscript
  ``PSI(IROW(K)+J)`` whose K-dependence no test can analyze;
* ``SWEEP2`` relaxes a red row and a black row passed as two non-aliased
  formals carved out of the same pool (the Figure 2/3 aliasing shape).
  Its internal loops parallelize in place, but after conventional
  inlining both become writes into ``PSI`` with distinct opaque offsets
  and the copies go serial (``#par-loss``).  The enclosing sweep is
  *genuinely* sequential (rows are revisited), so it stays serial in
  every configuration.
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM OCEAN
      COMMON /SEA/ PSI(8200), IROW(64)
      COMMON /WRK/ SRC(128)
      NROWS = 30
      NCOLS = 60
C ... row directory: row K starts at (K-1)*NCOLS (a one-to-one map) ...
      DO 5 K = 1, 64
        IROW(K) = (K-1)*128
    5 CONTINUE
      DO 8 I = 1, 128
        SRC(I) = I*0.015
    8 CONTINUE
      DO 9 I = 1, 8200
        PSI(I) = 0.001*I
    9 CONTINUE
C ... inject forcing into every row (parallel with the unique claim) ...
      DO 20 K = 1, 60
        CALL SCATTR(K, NCOLS)
   20 CONTINUE
C ... red/black relaxation: revisits rows, genuinely sequential sweep ...
      DO 30 K = 1, NROWS
        CALL SWEEP2(PSI(IROW(K)+1), PSI(IROW(K+30)+1), NCOLS)
   30 CONTINUE
C ... vorticity accumulation (reduction) ...
      VORT = 0.0
      DO 40 I = 1, 8200
        VORT = VORT + PSI(I)
   40 CONTINUE
      WRITE(6,*) VORT, PSI(IROW(3)+5)
      END
"""

_KERNELS = """
      SUBROUTINE SCATTR(K, N)
C ... scatter the forcing term into row K of the pool ...
      COMMON /SEA/ PSI(8200), IROW(64)
      COMMON /WRK/ SRC(128)
      DO 10 J = 1, N
        PSI(IROW(K)+J) = PSI(IROW(K)+J)*0.9 + SRC(J)*0.1
   10 CONTINUE
      RETURN
      END
      SUBROUTINE SWEEP2(RED, BLACK, N)
C ... relax a red and a black row against each other ...
      DIMENSION RED(*), BLACK(*)
      DO 10 J = 1, N
        RED(J) = RED(J)*0.8 + BLACK(J)*0.2
   10 CONTINUE
      DO 20 J = 1, N
        BLACK(J) = BLACK(J)*0.8 + RED(J)*0.2
   20 CONTINUE
      RETURN
      END
"""

_ANNOTATIONS = """
# IROW is a one-to-one row directory: (K, J) pairs address unique pool
# elements (Figure 14's pattern).
subroutine SCATTR(K, N) {
  do (J = 1:N)
    PSI[unique(K, J)] = unknown(PSI[unique(K, J)], SRC[J]);
}
"""

BENCHMARK = Benchmark(
    name="OCEAN",
    description="Two dimensional ocean simulation",
    sources={"ocean_main.f": _MAIN, "ocean_kernels.f": _KERNELS},
    annotations=_ANNOTATIONS,
)
