"""DYFESM — structural dynamics benchmark (finite element method).

The paper's flagship application: it contains all three Section II-B
"missed opportunity" idioms in their original form:

* ``FSMP`` — the opaque compositional subroutine of Figure 6: it calls
  ``GETCR``/``SHAPE1``/``FORMF``/``FORMS`` and carries the error-checking
  conditional (``IERR`` + STOP), so conventional inlining refuses it and
  the no-inlining configuration must keep the element loop (Figure 7's
  ``K`` loop) serial;
* the global temporary arrays ``XY``/``WTDET``/``P`` flowing between
  ``GETCR`` and ``SHAPE1`` (Figures 8-9): the real kill analysis fails
  (the consumer reads through ``NODE`` indirection), but the annotation
  summarizes them as atomic values, making them privatizable;
* ``ASSEM`` — the indirect one-to-one subscripts of Figures 10/11
  (``ICOND``/``IWHERD``), summarized with ``unique`` (Figure 14).

Expected Table II row shape: annotation-based inlining parallelizes the
two element loops (extra >= 2, loss == 0); conventional inlining only
manages the small ``ASSEM`` leaf, which gains nothing.
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM DYFESM
      COMMON /SIZES/ NSS, NEL
      COMMON /ELEM/ FE(8,100), SE(8,100), PE(8,100), IDEDON(100)
      COMMON /GEOM/ XYG(2,1600), ICOND(16,500), IWHERD(16,500),
     &              IEGEOM(500)
      COMMON /TMPA/ XY(2,16), WTDET(16), P(16)
      COMMON /MAPS/ IDBEGS(10), NEPSS(10)
      COMMON /RHS/ RHSB(9999), RHSI(9999), XE(16)
      COMMON /ERRS/ IERR
      NSS = 4
      NEL = 12
C ... initialize geometry and one-to-one condensation maps ...
      DO 10 ID = 1, 500
        IEGEOM(ID) = 1 + ID/10
        DO 10 I = 1, 16
          ICOND(I,ID) = (ID-1)*16 + I
          IWHERD(I,ID) = (ID-1)*16 + I
   10 CONTINUE
      DO 12 ID = 1, 500
        XYG(1,ID) = ID*0.25
        XYG(2,ID) = ID*0.5 + 1.0
   12 CONTINUE
      DO 14 ISS = 1, NSS
        IDBEGS(ISS) = (ISS-1)*20
        NEPSS(ISS) = NEL
   14 CONTINUE
      DO 16 I = 1, 16
        XE(I) = I*0.125
   16 CONTINUE
C ... form the elemental arrays (the paper's Figure 7 loop nest) ...
      DO 35 ISS = 1, NSS
        DO 30 K = 1, NEPSS(ISS)
          ID = IDBEGS(ISS) + 1 + K
          IDE = K
          CALL FSMP(ID, IDE)
   30   CONTINUE
   35 CONTINUE
C ... assemble the right-hand sides (the paper's Figure 11 loop) ...
      DO 45 ISS = 1, NSS
        DO 40 K = 1, NEPSS(ISS)
          ID = IDBEGS(ISS) + 1 + K
          IN = IDBEGS(ISS) + 1 + K + 40
          CALL ASSEM(ID, IN)
   40   CONTINUE
   45 CONTINUE
C ... explicit time-stepping relaxation (pure kernel) ...
      DO 60 ITER = 1, 3
        DO 55 I = 1, 4000
          RHSB(I) = RHSB(I)*0.98 + RHSI(I)*0.01 + 0.001
   55   CONTINUE
   60 CONTINUE
C ... checksum output ...
      S = 0.0
      DO 70 I = 1, 4000
        S = S + RHSB(I)
   70 CONTINUE
      WRITE(6,*) S
      END
"""

_FSMP = """
      SUBROUTINE FSMP(ID, IDE)
      COMMON /ELEM/ FE(8,100), SE(8,100), PE(8,100), IDEDON(100)
      COMMON /TMPA/ XY(2,16), WTDET(16), P(16)
      COMMON /ERRS/ IERR
      CALL GETCR(ID)
      CALL SHAPE1
      IF (IDEDON(IDE).EQ.0) THEN
        IDEDON(IDE) = 1
        CALL FORMF(FE(1,IDE))
        IF (IERR.NE.0) THEN
          WRITE(6,*) IDE
          STOP 'F SINGULAR'
        END IF
        CALL FORMS(SE(1,IDE))
      END IF
      CALL GETLD(ID)
      CALL FORMP(PE(1,IDE))
      RETURN
      END
      SUBROUTINE GETCR(ID)
C ... gather element corner coordinates through the condensation map;
C     only XY(1:2, 1:NNPED) is written, with NNPED < the declared bound,
C     which is why the caller-side array kill analysis must fail ...
      COMMON /GEOM/ XYG(2,1600), ICOND(16,500), IWHERD(16,500),
     &              IEGEOM(500)
      COMMON /TMPA/ XY(2,16), WTDET(16), P(16)
      NNPED = 8
      DO 10 IN = 1, NNPED
        XY(1,IN) = XYG(1,ICOND(IN,ID))
        XY(2,IN) = XYG(2,ICOND(IN,ID))
   10 CONTINUE
      RETURN
      END
      SUBROUTINE SHAPE1
C ... evaluate shape-function jacobians at the quadrature points ...
      COMMON /TMPA/ XY(2,16), WTDET(16), P(16)
      NNPED = 8
      DO 10 IQ = 1, NNPED
        WTDET(IQ) = XY(1,IQ)*0.5 + XY(2,IQ)*0.25 + 1.0
   10 CONTINUE
      RETURN
      END
      SUBROUTINE FORMF(F)
      DIMENSION F(*)
      COMMON /TMPA/ XY(2,16), WTDET(16), P(16)
      COMMON /ERRS/ IERR
      IERR = 0
      DO 10 J = 1, 8
        F(J) = WTDET(J)*2.0 + 0.5
   10 CONTINUE
      RETURN
      END
      SUBROUTINE FORMS(S)
      DIMENSION S(*)
      COMMON /TMPA/ XY(2,16), WTDET(16), P(16)
      DO 10 J = 1, 8
        S(J) = WTDET(J)*WTDET(J)*0.125
   10 CONTINUE
      RETURN
      END
      SUBROUTINE GETLD(ID)
C ... gather the element load vector into the temporary P ...
      COMMON /GEOM/ XYG(2,1600), ICOND(16,500), IWHERD(16,500),
     &              IEGEOM(500)
      COMMON /TMPA/ XY(2,16), WTDET(16), P(16)
      DO 10 IN = 1, 16
        P(IN) = XYG(1,ICOND(IN,ID))*0.0625
   10 CONTINUE
      RETURN
      END
      SUBROUTINE FORMP(PC)
      DIMENSION PC(*)
      COMMON /TMPA/ XY(2,16), WTDET(16), P(16)
      DO 10 J = 1, 8
        PC(J) = P(J) + P(J+8)*0.5
   10 CONTINUE
      RETURN
      END
"""

_ASSEM = """
      SUBROUTINE ASSEM(ID, IN)
C ... scatter the element vector through the one-to-one maps (Fig 10) ...
      COMMON /GEOM/ XYG(2,1600), ICOND(16,500), IWHERD(16,500),
     &              IEGEOM(500)
      COMMON /RHS/ RHSB(9999), RHSI(9999), XE(16)
      DO 10 I = 1, 16
        RHSB(ICOND(I,ID)) = RHSB(ICOND(I,ID)) + XE(I)
        RHSI(IWHERD(I,IN)) = RHSI(IWHERD(I,IN)) + XE(I)*0.5
   10 CONTINUE
      RETURN
      END
"""

_ANNOTATIONS = """
# Figure 13: summary of the opaque compositional subroutine FSMP.  The
# temporaries XY/WTDET/P are written before use (privatizable); the
# error-checking conditional of Figure 6 is deliberately omitted (the
# paper's relaxed exception-consistency policy); every column written is
# keyed by IDE, each iteration of the element loop touching its own.
subroutine FSMP(ID, IDE) {
  XY = unknown(XYG[1, ICOND[1, ID]], ID);
  WTDET = unknown(XY);
  IERR = 0;
  if (IDEDON[IDE] == 0) {
    IDEDON[IDE] = 1;
    FE[*, IDE] = unknown(WTDET);
    SE[*, IDE] = unknown(WTDET);
  }
  P = unknown(XYG[1, ICOND[1, ID]], ID);
  PE[*, IDE] = unknown(P, WTDET);
}

# Figure 14: ICOND/IWHERD hold one-to-one condensation maps, so each
# (ID, I) pair touches a unique element.
subroutine ASSEM(ID, IN) {
  do (I = 1:16) {
    RHSB[unique(ID, I)] = unknown(RHSB[unique(ID, I)], XE[I]);
    RHSI[unique(IN, I)] = unknown(RHSI[unique(IN, I)], XE[I]);
  }
}
"""

BENCHMARK = Benchmark(
    name="DYFESM",
    description="Structural dynamics benchmark (finite element)",
    sources={"dyfesm_main.f": _MAIN, "dyfesm_fsmp.f": _FSMP,
             "dyfesm_assem.f": _ASSEM},
    annotations=_ANNOTATIONS,
)
