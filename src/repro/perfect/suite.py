"""Benchmark registry for the 12 PERFECT substitutes (Table I)."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence

from repro.annotations.registry import AnnotationRegistry
from repro.program import Program


@dataclass(frozen=True)
class Benchmark:
    name: str
    description: str
    #: {filename: fortran source text}
    sources: Dict[str, str]
    #: annotation-language source ('' = developer wrote no annotations)
    annotations: str = ""
    #: procedures whose source must be treated as unavailable (external
    #: libraries) — conventional inlining cannot touch them; the unit still
    #: exists so the interpreter can execute the program
    library_units: FrozenSet[str] = frozenset()
    #: values consumed by READ statements
    inputs: Sequence[float] = ()

    def program(self) -> Program:
        return Program.from_sources(dict(self.sources), self.name)

    def registry(self) -> AnnotationRegistry:
        if not self.annotations:
            return AnnotationRegistry()
        return AnnotationRegistry.from_text(self.annotations)


#: module name per benchmark, in Table I order
_MODULES = ["adm", "arc2d", "flo52q", "ocean", "bdna", "mdg",
            "qcd", "trfd", "dyfesm", "mg3d", "track", "spec77"]


def benchmark_names() -> List[str]:
    return [m.upper() for m in _MODULES]


def get_benchmark(name: str) -> Benchmark:
    name = name.lower()
    if name not in _MODULES:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"choose from {benchmark_names()}")
    module = importlib.import_module(f"repro.perfect.{name}")
    return module.BENCHMARK


def all_benchmarks() -> List[Benchmark]:
    return [get_benchmark(m) for m in _MODULES]
