"""Benchmark registry for the 12 PERFECT substitutes (Table I), with a
content-hash-keyed parse cache.

Parsing a benchmark is pure — the same sources always yield the same
AST — so :meth:`Benchmark.program` parses each application **once per
process** and hands out clones of the cached parse.  An optional on-disk
pickle cache (enable with ``REPRO_DISK_CACHE=1``; directory from
``REPRO_CACHE_DIR``, default ``.repro_cache/``) makes cold starts skip
the frontend entirely; entries are keyed by a SHA-256 of the sources, so
editing a benchmark invalidates its entry automatically.  Delete the
directory (or call :func:`clear_program_cache` with ``disk=True``) to
clear it.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence

from repro.annotations.registry import AnnotationRegistry
from repro.obs import metrics as obs_metrics
from repro.program import Program

#: bump when the AST/pickle layout changes so stale disk entries miss
_CACHE_VERSION = 1

CACHE_DIR_ENV = "REPRO_CACHE_DIR"
DISK_CACHE_ENV = "REPRO_DISK_CACHE"
DEFAULT_CACHE_DIR = ".repro_cache"

#: digest -> pristine parsed Program (never handed out directly)
_PROGRAM_CACHE: Dict[str, Program] = {}


@dataclass
class CacheStats:
    """Hit/miss counters for a parse-avoidance cache (observable by the
    bench gate, which records hit rates next to wall-clock numbers)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.memory_hits + self.disk_hits + self.misses

    def hit_rate(self) -> float:
        lookups = self.lookups
        if lookups == 0:
            return 0.0
        return (self.memory_hits + self.disk_hits) / lookups

    def reset(self) -> None:
        self.memory_hits = self.disk_hits = self.misses = 0

    def as_dict(self) -> Dict[str, float]:
        return {"memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate(), 4)}


#: counters for ``Benchmark.program()`` lookups in this process
PROGRAM_CACHE_STATS = CacheStats()


def cache_dir() -> str:
    return os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR


def disk_cache_enabled() -> bool:
    value = os.environ.get(DISK_CACHE_ENV, "").strip().lower()
    return value in ("1", "true", "yes", "on")


def source_digest(name: str, sources: Mapping[str, str]) -> str:
    """Content hash identifying a parsed program (cache key)."""
    h = hashlib.sha256()
    h.update(f"repro-cache-v{_CACHE_VERSION}:{name}".encode())
    for fname in sorted(sources):
        h.update(b"\x00")
        h.update(fname.encode())
        h.update(b"\x00")
        h.update(sources[fname].encode())
    return h.hexdigest()


def clear_program_cache(disk: bool = False) -> None:
    """Drop the in-process parse cache (and the disk cache if asked)."""
    _PROGRAM_CACHE.clear()
    if disk:
        shutil.rmtree(cache_dir(), ignore_errors=True)


def _disk_path(digest: str) -> str:
    return os.path.join(cache_dir(), f"{digest}.pkl")


def _evict_disk(path: str) -> None:
    """Drop an unreadable cache entry so later runs don't re-trip on it."""
    try:
        os.remove(path)
    except OSError:
        pass


def _load_disk(digest: str) -> Optional[Program]:
    if not disk_cache_enabled():
        return None
    path = _disk_path(digest)
    try:
        with open(path, "rb") as fh:
            program = pickle.load(fh)
    except FileNotFoundError:
        return None
    except Exception:
        # corrupt or truncated entry (a concurrent writer that died
        # mid-write, a partial disk): evict it and reparse
        _evict_disk(path)
        return None
    if not isinstance(program, Program):
        _evict_disk(path)
        return None
    program.invalidate()  # symbol-table cache keys are per-process ids
    return program


def _store_disk(digest: str, program: Program) -> None:
    if not disk_cache_enabled():
        return
    try:
        os.makedirs(cache_dir(), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=cache_dir(), suffix=".tmp")
        with os.fdopen(fd, "wb") as fh:
            pickle.dump(program, fh, pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, _disk_path(digest))
    except Exception:
        pass  # the cache is best-effort; parsing always works


@dataclass(frozen=True)
class Benchmark:
    name: str
    description: str
    #: {filename: fortran source text}
    sources: Dict[str, str]
    #: annotation-language source ('' = developer wrote no annotations)
    annotations: str = ""
    #: procedures whose source must be treated as unavailable (external
    #: libraries) — conventional inlining cannot touch them; the unit still
    #: exists so the interpreter can execute the program
    library_units: FrozenSet[str] = frozenset()
    #: values consumed by READ statements
    inputs: Sequence[float] = ()

    def digest(self) -> str:
        return source_digest(self.name, self.sources)

    def program(self) -> Program:
        """A fresh, independently mutable parse of the sources.

        The underlying parse happens once per process per source content;
        callers get a clone, so transformation pipelines can mutate the
        result exactly as if it had been parsed from scratch.
        """
        digest = self.digest()
        lookups = obs_metrics.counter("repro_parse_cache_total",
                                      "parse-cache lookups by outcome")
        base = _PROGRAM_CACHE.get(digest)
        if base is not None:
            PROGRAM_CACHE_STATS.memory_hits += 1
            lookups.inc(outcome="memory_hit")
        else:
            base = _load_disk(digest)
            if base is not None:
                PROGRAM_CACHE_STATS.disk_hits += 1
                lookups.inc(outcome="disk_hit")
            else:
                PROGRAM_CACHE_STATS.misses += 1
                lookups.inc(outcome="miss")
                base = Program.from_sources(dict(self.sources), self.name)
                base.invalidate()
                _store_disk(digest, base)
            _PROGRAM_CACHE[digest] = base
        return base.clone()

    def registry(self) -> AnnotationRegistry:
        if not self.annotations:
            return AnnotationRegistry()
        return AnnotationRegistry.from_text(self.annotations)


#: module name per benchmark, in Table I order
_MODULES = ["adm", "arc2d", "flo52q", "ocean", "bdna", "mdg",
            "qcd", "trfd", "dyfesm", "mg3d", "track", "spec77"]


def benchmark_names() -> List[str]:
    return [m.upper() for m in _MODULES]


def get_benchmark(name: str) -> Benchmark:
    name = name.lower()
    if name not in _MODULES:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"choose from {benchmark_names()}")
    module = importlib.import_module(f"repro.perfect.{name}")
    return module.BENCHMARK


def all_benchmarks() -> List[Benchmark]:
    return [get_benchmark(m) for m in _MODULES]
