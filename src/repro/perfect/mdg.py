"""MDG — molecular dynamics of liquid water.

Inlining cannot help here for the paper's *size* reason: the per-molecule
interaction routine ``INTERF`` exceeds the 150-statement default (its
body enumerates the site-site force terms), so conventional inlining
skips it, and the developer wrote no annotation for it — the molecule
loop stays serial in every configuration.  The remaining kernels
(velocity updates, kinetic-energy reduction) parallelize identically
everywhere.
"""

from repro.perfect.suite import Benchmark


def _interf_body() -> str:
    # the site-site force accumulation, term by term — deliberately more
    # than 150 statements, like the real INTERF
    lines = []
    for k in range(1, 156):
        a = 0.001 * k
        lines.append(f"      FAC{k} = R2*{a:.4f} + {1.0 + 0.01 * k:.4f}")
    acc = " + ".join(f"FAC{k}" for k in range(1, 156, 31))
    lines.append(f"      FTOT = {acc}")
    return "\n".join(lines)


_MAIN = f"""
      PROGRAM MDG
      COMMON /MOL/ X(343), V(343), F(343)
      COMMON /ENE/ EKIN
      DIMENSION RROW(27)
      NMOL = 343
      DO 5 I = 1, NMOL
        X(I) = I*0.01
        V(I) = 0.0
        F(I) = 0.0
    5 CONTINUE
C ... pairwise interactions (INTERF is too large to inline) ...
      DO 20 I = 1, NMOL
        CALL INTERF(I, NMOL)
   20 CONTINUE
C ... velocity / position updates (parallel everywhere) ...
      DO 30 I = 1, NMOL
        V(I) = V(I) + F(I)*0.0005
   30 CONTINUE
      DO 40 I = 1, NMOL
        X(I) = X(I) + V(I)*0.001
   40 CONTINUE
C ... neighbor distance table (privatizable row buffer) ...
      DO 44 I = 1, NMOL
        DO 42 J = 1, 27
          RROW(J) = X(I)*0.1 + J
   42   CONTINUE
        F(I) = F(I) + RROW(14)*0.001
   44 CONTINUE
C ... second half-kick ...
      DO 46 I = 1, NMOL
        V(I) = V(I) + F(I)*0.00025
   46 CONTINUE
C ... kinetic energy (reduction) ...
      EKIN = 0.0
      DO 50 I = 1, NMOL
        EKIN = EKIN + V(I)*V(I)
   50 CONTINUE
      WRITE(6,*) EKIN, X(7)
      END
      SUBROUTINE INTERF(I, NMOL)
      COMMON /MOL/ X(343), V(343), F(343)
      R2 = X(I)*X(I) + 0.5
{_interf_body()}
      F(I) = F(I) + FTOT*0.0001
      RETURN
      END
"""

BENCHMARK = Benchmark(
    name="MDG",
    description="Molecular dynamics for the simulation of liquid water",
    sources={"mdg_main.f": _MAIN},
)
