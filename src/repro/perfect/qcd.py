"""QCD — quantum chromodynamics.

Inlining cannot help: the lattice update is dominated by an acceptance
loop with GOTO-based control flow (the pseudo-heatbath retry), which no
configuration can parallelize, and by small-trip SU(2)-style loops the
profitability heuristic skips.  No annotations were written.
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM QCD
      COMMON /LAT/ U(500), ACTION
      COMMON /RNG/ ISEED
      NSITE = 500
      ISEED = 12345
      DO 5 I = 1, NSITE
        U(I) = 1.0
    5 CONTINUE
C ... heatbath sweep with accept/reject retries (GOTO control flow) ...
      DO 30 I = 1, NSITE
        NTRY = 0
   22   CONTINUE
        NTRY = NTRY + 1
        ISEED = MOD(ISEED*1103 + 24691, 65536)
        TRIAL = ISEED/65536.0
        IF (TRIAL.LT.0.2 .AND. NTRY.LT.5) GO TO 22
        U(I) = U(I)*0.9 + TRIAL*0.1
   30 CONTINUE
C ... tiny matrix loops below the profitability threshold ...
      DO 40 I = 1, 2
        U(I) = U(I) + 0.001
   40 CONTINUE
C ... plaquette average (reduction over a serial recurrence prefix) ...
      ACTION = 0.0
      DO 50 I = 1, NSITE
        ACTION = ACTION + U(I)
   50 CONTINUE
      WRITE(6,*) ACTION, U(17)
      END
"""

BENCHMARK = Benchmark(
    name="QCD",
    description="Quantum chromodynamics",
    sources={"qcd_main.f": _MAIN},
)
