"""ARC2D — two-dimensional fluid solver of the Euler equations.

Carries the Figure 4/5 linearization pathology: the implicit-step worker
``STEP`` holds the flow variables as formals with *symbolic* extents and
invokes ``MATMLT``, whose formals are declared one-dimensional.
Conventional inlining must linearize ``PP``/``PHIT``/``TM1`` across the
whole of ``STEP`` — every unrelated loop that touches them acquires
``index * symbolic-extent`` subscripts no dependence test can analyze
(``#par-loss``).  The annotation declares the true two-dimensional shapes
(the paper's Figure 16), avoiding linearization entirely and letting the
stage loop parallelize.
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM ARC2D
      COMMON /FLOW/ PP(4,4,15), PHIT(4,4), TM1(4,4,15), Q(40,40)
      COMMON /OUTV/ RESID
      DO 5 J = 1, 4
        DO 5 I = 1, 4
          PHIT(I,J) = 0.1*I + 0.01*J
          DO 5 KS = 1, 15
            PP(I,J,KS) = I + J*0.5 + KS*0.25
    5 CONTINUE
      DO 8 K = 1, 40
        DO 8 J = 1, 40
          Q(J,K) = J*0.1 + K*0.05
    8 CONTINUE
      CALL STEP(PP, PHIT, TM1, Q, 4, 15, 40)
C ... residual norm over the mesh (reduction) ...
      RESID = 0.0
      DO 90 K = 1, 40
        DO 85 J = 1, 40
          RESID = RESID + Q(J,K)*Q(J,K)
   85   CONTINUE
   90 CONTINUE
      WRITE(6,*) RESID, TM1(2,3,7)
      END
"""

_STEP = """
      SUBROUTINE STEP(PP, PHIT, TM1, Q, N1, NS, NQ)
C ... implicit stage sweep; the flow arrays have symbolic extents, which
C     is what makes the post-linearization subscripts non-affine ...
      DIMENSION PP(N1,N1,NS), PHIT(N1,N1), TM1(N1,N1,NS), Q(NQ,NQ)
C ... stage propagation: each stage writes its own TM1 plane ...
      DO 15 KS = 2, NS
        CALL MATMLT(PP(1,1,KS-1), PHIT(1,1), TM1(1,1,KS), N1*N1)
   15 CONTINUE
C ... unrelated smoothing sweeps over the same arrays (the paper's
C     collateral damage: all of these lose parallelism once the arrays
C     are linearized with symbolic shapes) ...
      DO 25 J = 1, N1
        DO 24 I = 1, N1
          PHIT(I,J) = PHIT(I,J)*0.5 + 0.125
   24   CONTINUE
   25 CONTINUE
      DO 35 KS = 1, NS
        DO 34 J = 1, N1
          DO 33 I = 1, N1
            PP(I,J,KS) = PP(I,J,KS)*0.9 + 0.01
   33     CONTINUE
   34   CONTINUE
   35 CONTINUE
      DO 45 KS = 1, NS
        DO 44 J = 1, N1
          DO 43 I = 1, N1
            TM1(I,J,KS) = TM1(I,J,KS) + PP(I,J,KS)*0.125
   43     CONTINUE
   44   CONTINUE
   45 CONTINUE
C ... mesh relaxation on Q (untouched by linearization; stays parallel) ...
      DO 55 K = 1, NQ
        DO 54 J = 1, NQ
          Q(J,K) = Q(J,K)*0.95 + 0.002
   54   CONTINUE
   55 CONTINUE
      RETURN
      END
      SUBROUTINE MATMLT(M1, M2, M3, L)
C ... the paper's Figure 4: formals declared one-dimensional ...
      DIMENSION M1(L), M2(L), M3(L)
      DO 22 K = 1, L
        M3(K) = M1(K)*0.5 + M2(K)*0.25
   22 CONTINUE
      RETURN
      END
"""

_ANNOTATIONS = """
# Figure 16: the annotation declares the matrices with their true
# two-dimensional shapes, so no linearization is ever needed.
subroutine MATMLT(M1, M2, M3, L) {
  dimension M1[L], M2[L], M3[L];
  M3[*] = unknown(M1[*], M2[*]);
}
"""

BENCHMARK = Benchmark(
    name="ARC2D",
    description="Two-dimensional fluid solver of Euler equations",
    sources={"arc2d_main.f": _MAIN, "arc2d_step.f": _STEP},
    annotations=_ANNOTATIONS,
)
