"""BDNA — molecular dynamics package for nucleic acid simulation.

Carries the paper's Figure 2/3 pathology in its original form: the
predictor-corrector initializer ``PCINIT`` is invoked with indirect
element references into the global coordinate pool ``T`` (offsets read
from the index array ``IX``).  Conventional inlining substitutes those
references forward, creating the subscripted subscripts
``T(IX(7)+I)`` — the loops that were parallelizable inside ``PCINIT``
(via induction-variable substitution) become serial in the inlined copy
(``#par-loss``), and the timestep loop stays serial either way.  The
annotation summarizes ``PCINIT`` as region writes through its formals, so
annotation-based inlining parallelizes the timestep loop while the
original ``PCINIT`` loops keep their directives.
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM BDNA
      COMMON /POOL/ T(6000), IX(64)
      COMMON /FRC/ FX(1000), FY(1000), FZ(1000)
      COMMON /STATE/ TSTEP, EPOT
      NSP = 900
      TSTEP = 0.001
C ... index map: three disjoint regions of the pool ...
      IX(7) = 1000
      IX(8) = 2500
      IX(9) = 4000
      DO 5 I = 1, 1000
        FX(I) = I*0.01
        FY(I) = I*0.02
        FZ(I) = I*0.03
    5 CONTINUE
C ... force evaluation sweep (pure kernel, parallel everywhere) ...
      DO 20 I = 1, 1000
        FX(I) = FX(I)*0.99 + 0.004
        FY(I) = FY(I)*0.98 + FX(I)*0.01
        FZ(I) = FZ(I)*0.97 + FY(I)*0.01
   20 CONTINUE
C ... potential energy (reduction) ...
      EPOT = 0.0
      DO 25 I = 1, 1000
        EPOT = EPOT + FX(I)*FX(I) + FY(I)*FY(I)
   25 CONTINUE
C ... the paper's Figure 3 call site ...
      DO 30 KS = 1, 8
        CALL PCINIT(T(IX(7)+1), T(IX(8)+1), T(IX(9)+1), NSP)
   30 CONTINUE
      WRITE(6,*) EPOT, T(IX(7)+1), T(IX(9)+NSP)
      END
"""

_PCINIT = """
      SUBROUTINE PCINIT(X2, Y2, Z2, NSP)
C ... the paper's Figure 2: induction variable plus assumed-size formals;
C     the J loop parallelizes after induction substitution because the
C     three formals cannot alias each other ...
      DIMENSION X2(*), Y2(*), Z2(*)
      COMMON /FRC/ FX(1000), FY(1000), FZ(1000)
      COMMON /STATE/ TSTEP, EPOT
      I = 0
      DO 200 J = 1, NSP
        I = I + 1
        X2(I) = FX(I)*TSTEP**2/2.0
        Y2(I) = FY(I)*TSTEP**2/2.0
        Z2(I) = FZ(I)*TSTEP**2/2.0
  200 CONTINUE
      RETURN
      END
"""

_ANNOTATIONS = """
# PCINIT writes exactly the first NSP elements of each of its (non-
# aliased) array arguments, from the force arrays and the timestep.
subroutine PCINIT(X2, Y2, Z2, NSP) {
  dimension X2[NSP], Y2[NSP], Z2[NSP];
  X2[*] = unknown(FX[1], TSTEP);
  Y2[*] = unknown(FY[1], TSTEP);
  Z2[*] = unknown(FZ[1], TSTEP);
}
"""

BENCHMARK = Benchmark(
    name="BDNA",
    description="Molecular dynamics package for the simulation of "
                "nucleic acids",
    sources={"bdna_main.f": _MAIN, "bdna_pcinit.f": _PCINIT},
    annotations=_ANNOTATIONS,
)
