"""Synthetic PERFECT Club benchmark substitutes.

The real PERFECT Club suite is not redistributable, so each application
here is a from-scratch Fortran 77 program reproducing the *structure* the
paper's evaluation depends on: the physics is simplified, but the call
graphs, loop nests, array-access idioms (indirect one-to-one subscripts,
reshaped parameters, opaque compositional subroutines, global temporary
arrays, error-checking I/O) match the situations Sections II and III
catalogue.  Every benchmark is executable by the interpreter, carries a
small problem size (matching the paper's observation that PERFECT inputs
are too small to profit much from parallelization), and ships annotations
for the subroutines a developer would plausibly summarize.

Use :func:`repro.perfect.suite.get_benchmark` /
:func:`repro.perfect.suite.all_benchmarks`.
"""

from repro.perfect.suite import (Benchmark, all_benchmarks,  # noqa: F401
                                 benchmark_names, get_benchmark)
