"""TRFD — kernel simulating a two-electron integral transformation.

The transformation stage ``TRAPUT`` stores results through the
triangular-packing directory ``IA`` (a one-to-one packing map with
row stride 41: the no-inlining configuration keeps the orbital loop serial, and
conventional inlining of the small leaf produces the classic subscripted
subscript ``XIJ(IA(MI)+J)``.  The annotation's ``unique`` claim makes the
orbital loop parallel.  A second worker, ``XPOSE``, is invoked with two
mismatched-shape sections of the integral buffer, so conventional
inlining linearizes the buffer caller-wide and the unrelated scaling
loops over it go serial (``#par-loss``).
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM TRFD
      COMMON /INTS/ XIJ(4000), XKL(40,40), XRS(40,40)
      COMMON /DIRS/ IA(80)
      NORB = 40
C ... triangular directory (one-to-one) ...
      DO 5 I = 1, 80
        IA(I) = (I-1)*41
    5 CONTINUE
      DO 8 J = 1, 40
        DO 8 I = 1, 40
          XKL(I,J) = I*0.01 + J*0.02
    8 CONTINUE
C ... first transformation: scatter through the triangular map ...
      DO 20 MI = 1, NORB
        CALL TRAPUT(MI, MI)
   20 CONTINUE
C ... transpose stage with mismatched shapes (linearization bait) ...
      CALL TSTAGE(XKL, XRS, 40)
C ... checksum ...
      S = 0.0
      DO 60 I = 1, 4000
        S = S + XIJ(I)
   60 CONTINUE
      WRITE(6,*) S, XRS(3,5)
      END
"""

_KERNELS = """
      SUBROUTINE TRAPUT(MI, NJ)
C ... store the transformed row MI into the triangular buffer ...
      COMMON /INTS/ XIJ(4000), XKL(40,40), XRS(40,40)
      COMMON /DIRS/ IA(80)
      DO 10 J = 1, 40
        XIJ(IA(MI)+J) = XKL(J,NJ)*0.5 + 0.25
   10 CONTINUE
      RETURN
      END
      SUBROUTINE TSTAGE(XKL, XRS, N)
C ... half-transform driver; its arrays have symbolic extents ...
      DIMENSION XKL(N,N), XRS(N,N)
      DO 15 K = 1, N
        CALL XPOSE(XKL(1,K), XRS(1,K), N)
   15 CONTINUE
C ... unrelated scaling sweeps (linearization victims) ...
      DO 25 J = 1, N
        DO 24 I = 1, N
          XKL(I,J) = XKL(I,J)*0.9 + 0.001
   24   CONTINUE
   25 CONTINUE
      DO 35 J = 1, N
        DO 34 I = 1, N
          XRS(I,J) = XRS(I,J) + XKL(I,J)*0.125
   34   CONTINUE
   35 CONTINUE
      RETURN
      END
      SUBROUTINE XPOSE(COL, OUT, N)
C ... one column of the half transform (1-D formals) ...
      DIMENSION COL(*), OUT(*)
      DO 10 I = 1, N
        OUT(I) = COL(I)*2.0
   10 CONTINUE
      RETURN
      END
"""

_ANNOTATIONS = """
# IA packs the lower triangle one-to-one: (MI, J) addresses a unique
# element of the integral buffer.
subroutine TRAPUT(MI, NJ) {
  do (J = 1:40)
    XIJ[unique(MI, J)] = unknown(XKL[J, NJ]);
}
# XPOSE writes exactly the first N elements of OUT from COL.
subroutine XPOSE(COL, OUT, N) {
  dimension COL[N], OUT[N];
  OUT[*] = unknown(COL[*]);
}
"""

BENCHMARK = Benchmark(
    name="TRFD",
    description="Kernel simulating a two-electron integral transformation",
    sources={"trfd_main.f": _MAIN, "trfd_kernels.f": _KERNELS},
    annotations=_ANNOTATIONS,
)
