"""SPEC77 — spectral weather simulation.

Inlining cannot help: the spectral-to-grid transform routine carries a
sequential recurrence over wavenumbers (Legendre recursion), so inlining
its body exposes no new parallelism, and the grid-point physics routine
updates a shared accumulation column through a recurrence of its own.
The gridpoint sweeps and norm reductions parallelize identically in all
configurations.  No annotations were written.
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM SPEC77
      COMMON /SPC/ COEF(80), GRID(64,24), PLM(80)
      COMMON /NRM/ ENORM
      NW = 80
      NLAT = 24
      DO 5 I = 1, NW
        COEF(I) = 1.0/(I + 1.0)
    5 CONTINUE
C ... synthesize every latitude (the callee is recurrence-bound) ...
      DO 20 L = 1, NLAT
        CALL SYNTH(L, NW)
   20 CONTINUE
C ... pointwise physics (parallel everywhere) ...
      DO 30 L = 1, NLAT
        DO 28 I = 1, 64
          GRID(I,L) = GRID(I,L)*0.99 + 0.002
   28   CONTINUE
   30 CONTINUE
C ... energy norm (reduction) ...
      ENORM = 0.0
      DO 40 L = 1, NLAT
        DO 38 I = 1, 64
          ENORM = ENORM + GRID(I,L)*GRID(I,L)
   38   CONTINUE
   40 CONTINUE
      WRITE(6,*) ENORM, GRID(5,5)
      END
      SUBROUTINE SYNTH(L, NW)
C ... Legendre recursion: PLM(I) depends on PLM(I-1), inherently serial,
C     and the recursion seed depends on the latitude ...
      COMMON /SPC/ COEF(80), GRID(64,24), PLM(80)
      PLM(1) = 1.0 + L*0.01
      DO 10 I = 2, NW
        PLM(I) = PLM(I-1)*0.95 + COEF(I)
   10 CONTINUE
      DO 20 I = 1, 64
        S = 0.0
        DO 15 K = 1, NW
          S = S + COEF(K)*PLM(K)
   15   CONTINUE
        GRID(I,L) = S*0.01 + I*0.001
   20 CONTINUE
      RETURN
      END
"""

BENCHMARK = Benchmark(
    name="SPEC77",
    description="Spectral weather simulation",
    sources={"spec77_main.f": _MAIN},
)
