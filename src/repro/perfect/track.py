"""TRACK — missile tracking.

Inlining cannot help: the correlation loop logs candidate matches
(program I/O inside the loop body) and aborts on filter divergence, so
it must stay serial under the conservative exception-handling rule in
every configuration; the track-extrapolation callee is rejected for the
same reason.  No annotations were written — this benchmark is the
paper's case where even relaxed exception handling was not attempted.
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM TRACK
      COMMON /TRK/ POS(200), VEL(200), OBS(200)
      COMMON /NMATCH/ NMATCH, ALARM
      NTRK = 200
      ALARM = 0.0
      DO 5 I = 1, NTRK
        POS(I) = I*1.0
        VEL(I) = 0.5
        OBS(I) = I*1.0 + 0.3
    5 CONTINUE
C ... extrapolate all tracks (callee rejected: it can abort) ...
      DO 20 I = 1, NTRK
        CALL EXTRAP(I)
   20 CONTINUE
C ... correlate observations, logging ambiguous matches ...
      NMATCH = 0
      DO 30 I = 1, NTRK
        D = ABS(POS(I) - OBS(I))
        IF (D.GT.50.0) WRITE(6,*) I, D
        IF (D.LT.1.0) NMATCH = NMATCH + 1
   30 CONTINUE
C ... gate maintenance: conditionally latched alarm state (serial:
C     no computable last value) ...
      DO 35 I = 1, NTRK
        IF (ABS(POS(I) - OBS(I)).GT.25.0) ALARM = I*1.0
   35 CONTINUE
C ... smooth the updated state (parallel everywhere) ...
      DO 40 I = 1, NTRK
        VEL(I) = VEL(I)*0.9 + 0.05
   40 CONTINUE
      WRITE(6,*) NMATCH, POS(3), ALARM
      END
      SUBROUTINE EXTRAP(I)
      COMMON /TRK/ POS(200), VEL(200), OBS(200)
      POS(I) = POS(I) + VEL(I)
      IF (POS(I).GT.1.0E6) THEN
        WRITE(6,*) I
        STOP 'FILTER DIVERGED'
      END IF
      RETURN
      END
"""

BENCHMARK = Benchmark(
    name="TRACK",
    description="Missile tracking",
    sources={"track_main.f": _MAIN},
)
