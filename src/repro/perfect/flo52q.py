"""FLO52Q — transonic inviscid flow past an airfoil.

One of the benchmarks inlining cannot help (the paper's Table II shows
six such): every procedure call sits *outside* the loop nests, so all
the parallelism is already intraprocedural — flux sweeps, a residual
MAX reduction, and a privatizable line buffer.  All three configurations
produce identical results; the developer wrote no annotations.
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM FLO52Q
      COMMON /GRID/ Q(66,34), QNEW(66,34), FLUXL(66)
      COMMON /CGRID/ QC(33,17)
      COMMON /RES/ RESMAX
      CALL SETUP
      CALL CYCLE
      CALL COARSE
      CALL REPORT
      END
      SUBROUTINE SETUP
      COMMON /GRID/ Q(66,34), QNEW(66,34), FLUXL(66)
      DO 10 K = 1, 34
        DO 10 J = 1, 66
          Q(J,K) = 1.0 + J*0.01 - K*0.005
   10 CONTINUE
      RETURN
      END
      SUBROUTINE CYCLE
      COMMON /GRID/ Q(66,34), QNEW(66,34), FLUXL(66)
      COMMON /RES/ RESMAX
C ... flux sweep with a privatizable line buffer ...
      DO 20 K = 2, 33
        DO 14 J = 1, 66
          FLUXL(J) = Q(J,K)*0.5 + Q(J,K-1)*0.25
   14   CONTINUE
        DO 16 J = 2, 65
          QNEW(J,K) = Q(J,K) + (FLUXL(J-1) - FLUXL(J+1))*0.1
   16   CONTINUE
   20 CONTINUE
C ... residual max (reduction) ...
      RESMAX = 0.0
      DO 30 K = 2, 33
        DO 28 J = 2, 65
          RESMAX = MAX(RESMAX, ABS(QNEW(J,K) - Q(J,K)))
   28   CONTINUE
   30 CONTINUE
C ... commit the step ...
      DO 40 K = 1, 34
        DO 38 J = 1, 66
          Q(J,K) = QNEW(J,K)
   38   CONTINUE
   40 CONTINUE
      RETURN
      END
      SUBROUTINE COARSE
C ... multigrid-style restriction to a coarse grid and correction ...
      COMMON /GRID/ Q(66,34), QNEW(66,34), FLUXL(66)
      COMMON /CGRID/ QC(33,17)
      DO 10 K = 1, 17
        DO 8 J = 1, 33
          QC(J,K) = (Q(2*J-1,2*K-1) + Q(2*J,2*K))*0.5
    8   CONTINUE
   10 CONTINUE
      DO 20 K = 1, 17
        DO 18 J = 1, 33
          QC(J,K) = QC(J,K)*0.95 + 0.01
   18   CONTINUE
   20 CONTINUE
      DO 30 K = 1, 17
        DO 28 J = 1, 33
          Q(2*J-1,2*K-1) = Q(2*J-1,2*K-1) + QC(J,K)*0.05
   28   CONTINUE
   30 CONTINUE
      RETURN
      END
      SUBROUTINE REPORT
      COMMON /GRID/ Q(66,34), QNEW(66,34), FLUXL(66)
      COMMON /RES/ RESMAX
      WRITE(6,*) RESMAX, Q(10,10)
      RETURN
      END
"""

BENCHMARK = Benchmark(
    name="FLO52Q",
    description="Transonic inviscid flow past an airfoil",
    sources={"flo52q_main.f": _MAIN},
)
