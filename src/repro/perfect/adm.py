"""ADM — pseudospectral air pollution simulation.

Its advection step calls ``ADVCHK``, which contains the Section II-B2
idiom: a debugging/error conditional that WRITEs a diagnostic and STOPs
on a CFL violation.  The I/O makes the callee ineligible for
conventional inlining and keeps the column loop serial without inlining.
The annotation omits the error path (the paper's relaxed
exception-handling policy: pre-tested inputs never trigger it), so the
column loop parallelizes under annotation inlining only.
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM ADM
      COMMON /AIR/ C(64,40), W(64,40), DKZ(64)
      COMMON /CTL/ DT, CFLMAX
      NX = 64
      NZ = 40
      DT = 0.05
      CFLMAX = 0.0
      DO 5 K = 1, NZ
        DO 5 I = 1, NX
          C(I,K) = I*0.01 + K*0.002
          W(I,K) = 0.4 + K*0.001
    5 CONTINUE
      DO 8 I = 1, 64
        DKZ(I) = 0.3
    8 CONTINUE
C ... vertical advection with the CFL check per column ...
      DO 30 I = 1, NX
        CALL ADVCHK(I, NZ)
   30 CONTINUE
C ... horizontal smoothing (pure kernel) ...
      DO 40 K = 1, NZ
        DO 38 I = 2, 63
          W(I,K) = W(I,K)*0.5 + (C(I-1,K) + C(I+1,K))*0.25
   38   CONTINUE
   40 CONTINUE
C ... horizontal diffusion sweep ...
      DO 44 K = 1, NZ
        DO 43 I = 2, 63
          C(I,K) = C(I,K) + (C(I-1,K) - 2.0*C(I,K) + C(I+1,K))*0.1
   43   CONTINUE
   44 CONTINUE
C ... emission history: a genuine time recurrence (serial everywhere) ...
      EMIT = 0.0
      DO 46 K = 1, NZ
        EMIT = EMIT*0.9 + C(1,K)
        W(1,K) = EMIT
   46 CONTINUE
C ... total burden (reduction) ...
      TOTAL = 0.0
      DO 50 K = 1, NZ
        DO 48 I = 1, NX
          TOTAL = TOTAL + C(I,K)
   48   CONTINUE
   50 CONTINUE
      WRITE(6,*) TOTAL, C(5,7)
      END
"""

_ADVCHK = """
      SUBROUTINE ADVCHK(I, NZ)
C ... advect one column; abort on a CFL violation (error checking the
C     paper's Section II-B2 says conservative compilers must respect) ...
      COMMON /AIR/ C(64,40), W(64,40), DKZ(64)
      COMMON /CTL/ DT, CFLMAX
      CFL = W(I,1)*DT*DKZ(I)
      IF (CFL.GT.1.0) THEN
        WRITE(6,*) I, CFL
        STOP 'CFL VIOLATION'
      END IF
      DO 10 K = 1, NZ
        C(I,K) = C(I,K)*(1.0 - CFL) + CFL*0.5
   10 CONTINUE
      RETURN
      END
"""

_ANNOTATIONS = """
# ADVCHK updates column I of the concentration field; the CFL error
# conditional is deliberately omitted (never triggered on pre-tested
# inputs, and replicated diagnostics would be acceptable anyway).
subroutine ADVCHK(I, NZ) {
  real CFL;
  CFL = unknown(W[I, 1], DT, DKZ[I]);
  do (K = 1:NZ)
    C[I, K] = unknown(C[I, K], CFL);
}
"""

BENCHMARK = Benchmark(
    name="ADM",
    description="Pseudospectral air pollution simulation",
    sources={"adm_main.f": _MAIN, "adm_advchk.f": _ADVCHK},
    annotations=_ANNOTATIONS,
)
