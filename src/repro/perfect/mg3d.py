"""MG3D — depth migration code.

Its trace-migration loop calls ``CFFTZ``, the site's vendor FFT routine:
the *source is not available* to the compiler (``library_units``), which
is the paper's headline limitation of conventional inlining — no source,
no inlining, loop stays serial.  The developer-supplied annotation
summarizes the routine's side effects (it transforms one trace in place
using its private workspace), so annotation-based inlining parallelizes
the migration loop.  (The routine body ships with the benchmark only so
the interpreter can execute the program.)
"""

from repro.perfect.suite import Benchmark

_MAIN = """
      PROGRAM MG3D
      COMMON /SEIS/ TRACE(64,100), VEL(100)
      COMMON /FWRK/ WORK(64)
      NTR = 100
      NT = 64
      DO 5 J = 1, NTR
        VEL(J) = 1500.0 + J*2.0
        DO 5 I = 1, NT
          TRACE(I,J) = I*0.01 + J*0.001
    5 CONTINUE
C ... migrate every trace (vendor FFT per trace) ...
      DO 30 J = 1, NTR
        CALL CFFTZ(TRACE(1,J), NT)
   30 CONTINUE
C ... depth scaling (pure kernel) ...
      DO 40 J = 1, NTR
        DO 38 I = 1, NT
          TRACE(I,J) = TRACE(I,J)*VEL(J)*0.001
   38   CONTINUE
   40 CONTINUE
C ... image energy (reduction) ...
      E = 0.0
      DO 50 J = 1, NTR
        DO 48 I = 1, NT
          E = E + TRACE(I,J)*TRACE(I,J)
   48   CONTINUE
   50 CONTINUE
      WRITE(6,*) E, TRACE(3,7)
      END
"""

_CFFTZ = """
      SUBROUTINE CFFTZ(X, N)
C ... vendor library routine: in-place transform of one trace (a stand-in
C     butterfly pass; the compiler never sees this body) ...
      DIMENSION X(*)
      COMMON /FWRK/ WORK(64)
      DO 10 I = 1, N
        WORK(I) = X(I)
   10 CONTINUE
      DO 20 I = 1, N/2
        X(I) = WORK(I) + WORK(N+1-I)
        X(N+1-I) = WORK(I) - WORK(N+1-I)
   20 CONTINUE
      RETURN
      END
"""

_ANNOTATIONS = """
# Vendor FFT: transforms the first N elements of its argument in place;
# WORK is the library's scratch buffer, dead between calls.
subroutine CFFTZ(X, N) {
  dimension X[N];
  WORK = unknown(X[*]);
  X[*] = unknown(WORK, N);
}
"""

BENCHMARK = Benchmark(
    name="MG3D",
    description="Depth migration code",
    sources={"mg3d_main.f": _MAIN, "mg3d_cfftz.f": _CFFTZ},
    annotations=_ANNOTATIONS,
    library_units=frozenset({"CFFTZ"}),
)
