"""Differential fuzzing of the three parallelization configurations.

The paper's soundness claim — annotation-based inlining parallelizes
more loops *without changing program meaning* — is exactly the kind of
claim a differential fuzzer can attack.  This package generates random
valid Fortran 77 programs, runs each through all three pipeline
configurations, executes the results serial / parallel / permuted, and
flags any disagreement; failures are delta-debugged to minimal repros
and persisted as permanent regression tests.

Modules:

* :mod:`repro.fuzz.generator` — seeded random program generator (also
  the home of the shared program-building primitives used by the
  hypothesis strategies in ``tests/strategies.py``);
* :mod:`repro.fuzz.oracle` — the five differential properties;
* :mod:`repro.fuzz.shrinker` — structure-aware delta debugging;
* :mod:`repro.fuzz.corpus` — persisted repros under
  ``tests/fuzz/corpus/``, replayed by tier-1;
* :mod:`repro.fuzz.campaign` — the batch driver behind ``repro fuzz``.
"""

from repro.fuzz.campaign import (CampaignResult, CampaignStats,
                                 FailureRecord, FuzzTask, run_campaign,
                                 run_fuzz_task)
from repro.fuzz.corpus import (DEFAULT_CORPUS_DIR, CorpusEntry, load_corpus,
                               load_entry, save_entry)
from repro.fuzz.generator import (ARRAY_EXTENT, ARRAYS, SCALARS,
                                  FuzzProgram, GeneratorOptions,
                                  ProgramGenerator, derive_annotations,
                                  derive_seed, generate)
from repro.fuzz.oracle import (CONFIG_KINDS, Mismatch, OracleResult,
                               run_oracle, strip_omp, verdict_fingerprint)
from repro.fuzz.shrinker import Shrinker, ShrinkResult, shrink

__all__ = [
    "ARRAYS", "ARRAY_EXTENT", "SCALARS",
    "CampaignResult", "CampaignStats", "CONFIG_KINDS", "CorpusEntry",
    "DEFAULT_CORPUS_DIR", "FailureRecord", "FuzzProgram", "FuzzTask",
    "GeneratorOptions", "Mismatch", "OracleResult", "ProgramGenerator",
    "Shrinker", "ShrinkResult", "derive_annotations", "derive_seed",
    "generate", "load_corpus", "load_entry", "run_campaign",
    "run_fuzz_task", "run_oracle", "save_entry", "shrink", "strip_omp",
    "verdict_fingerprint",
]
