"""Seeded random Fortran 77 program generator.

Emits random-but-*valid* programs: every generated program parses,
executes without faults (all subscripts stay inside their declared
extents, all loops are bounded), and is deterministic for a fixed seed —
the properties the differential oracle (:mod:`repro.fuzz.oracle`)
needs so that any disagreement between the three inlining
configurations is a bug in the pipeline, never in the input.

The statement families are chosen to hit the paper's pathologies:

* nested DO loops with affine subscripts (the parallelizable bread and
  butter) and loop-carried dependences (``A(I+1) = A(I)``);
* deliberately **non-affine** subscripts (``A(I*I)``, subscripts through
  an induction scalar) that must defeat the dependence tests;
* subroutine calls with **aliasing-prone argument lists** — the same
  COMMON array passed whole, by element (a view), or twice;
* COMMON blocks shared between caller and callees;
* sum/difference **reductions** and scalar privatization fodder;
* **induction variables** (``K = K + c``) feeding subscripts;
* FUNCTION references inside loop bodies;
* error-checking conditionals (IF + WRITE + STOP) exercising the
  annotation generator's relaxed exception-handling policy.

Callee subroutines are generated leaf-style so that
:func:`repro.annotations.generate.generate_all` can derive annotations
for (most of) them; the rendered annotation text ships with the program
so the oracle's ``annotation`` configuration runs the full
inline/parallelize/reverse-inline pipeline.

The module-level builders (:func:`affine_subscript`,
:func:`common_decls`, :func:`init_statements`, :func:`wrap_main`,
:func:`make_program`) are the *shared program-building primitives* also
used by the hypothesis strategies in ``tests/strategies.py`` — one
source of truth, so the property tests and the fuzzer cannot drift.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fortran import ast
from repro.program import Program

#: COMMON /D/ arrays shared by every generated program
ARRAYS = ("A", "B", "C")
#: declared extent of each COMMON array
ARRAY_EXTENT = 64
#: COMMON /D/ scalars (S/T: reduction + privatization fodder, K: induction)
SCALARS = ("S", "T", "K")
#: default loop extent; affine subscripts c1*var + c2 with c1 <= 2 and
#: c2 <= 8 stay within 2*N + 8 <= ARRAY_EXTENT
N = 8


# ---------------------------------------------------------------------------
# shared program-building primitives (used by tests/strategies.py too)
# ---------------------------------------------------------------------------

def affine_subscript(var: str, c1: int, c2: int) -> ast.Expr:
    """The subscript ``c1*var + c2`` (``c1 == 0`` collapses to ``c2``)."""
    if c1 == 0:
        return ast.IntLit(c2)
    base: ast.Expr = ast.Var(var) if c1 == 1 else \
        ast.BinOp("*", ast.IntLit(c1), ast.Var(var))
    if c2 == 0:
        return base
    return ast.BinOp("+", base, ast.IntLit(c2))


def common_decls(arrays: Sequence[str] = ARRAYS,
                 scalars: Sequence[str] = SCALARS,
                 extent: int = ARRAY_EXTENT) -> List[ast.Decl]:
    """The shared ``COMMON /D/`` declaration block."""
    entities = [ast.Entity(a, (ast.Dim.upto(ast.IntLit(extent)),))
                for a in arrays]
    entities += [ast.Entity(s) for s in scalars]
    return [ast.CommonDecl("D", entities)]


def init_statements(arrays: Sequence[str] = ARRAYS,
                    extent: int = ARRAY_EXTENT) -> List[ast.Stmt]:
    """Deterministic initialization of the shared state: every array gets
    a distinct affine fill, every scalar starts at zero."""
    fills = {
        0: lambda: ast.BinOp("*", ast.Var("I"), ast.RealLit(0.5)),
        1: lambda: ast.BinOp("+", ast.Var("I"), ast.RealLit(1.0)),
        2: lambda: ast.RealLit(0.0),
    }
    body = [ast.Assign(ast.ArrayRef(a, (ast.Var("I"),)),
                       fills[i % 3]())
            for i, a in enumerate(arrays)]
    out: List[ast.Stmt] = [
        ast.DoLoop("I", ast.IntLit(1), ast.IntLit(extent), None, body)]
    out.append(ast.Assign(ast.Var("S"), ast.RealLit(0.0)))
    out.append(ast.Assign(ast.Var("T"), ast.RealLit(0.0)))
    out.append(ast.Assign(ast.Var("K"), ast.IntLit(1)))
    return out


def wrap_main(body: List[ast.Stmt],
              decls: Optional[List[ast.Decl]] = None,
              name: str = "P") -> ast.ProgramUnit:
    """A PROGRAM unit around ``body`` with the shared COMMON block."""
    return ast.ProgramUnit("PROGRAM", name, [],
                           decls if decls is not None else common_decls(),
                           body)


def make_program(units: Sequence[ast.ProgramUnit],
                 name: str = "generated",
                 filename: str = "gen.f") -> Program:
    """Assemble units into a resolved :class:`~repro.program.Program`."""
    prog = Program([ast.SourceFile(list(units), filename)], name)
    prog.resolve()
    return prog


def observe_statements() -> List[ast.Stmt]:
    """Final WRITEs making scalar state observable to the output
    comparator (array state is compared via COMMON memory)."""
    return [
        ast.IoStmt("WRITE", "6,*", (ast.Var("S"), ast.Var("T"),
                                    ast.Var("K"))),
        ast.IoStmt("WRITE", "6,*", (ast.ArrayRef("A", (ast.IntLit(3),)),
                                    ast.ArrayRef("C", (ast.IntLit(7),)))),
    ]


# ---------------------------------------------------------------------------
# the generator
# ---------------------------------------------------------------------------

#: generator dialects: ``core`` is the original grammar; ``extended``
#: adds the tolerant-frontend constructs that execute in both runtime
#: backends (computed GOTO, DATA with repeat counts)
DIALECTS = ("core", "extended")


@dataclass(frozen=True)
class GeneratorOptions:
    """Feature switches (all on by default)."""

    max_blocks: int = 6
    max_callees: int = 3
    calls: bool = True
    functions: bool = True
    non_affine: bool = True
    induction: bool = True
    reductions: bool = True
    nested: bool = True
    dialect: str = "core"


@dataclass
class FuzzProgram:
    """One generated test case: sources, derived annotations, metadata."""

    seed: int
    sources: Dict[str, str]
    annotations: str = ""
    features: List[str] = field(default_factory=list)

    def program(self) -> Program:
        """A fresh parse of the generated sources."""
        return Program.from_sources(dict(self.sources),
                                    f"fuzz-{self.seed}")

    def source_text(self) -> str:
        return "".join(self.sources[k] for k in sorted(self.sources))

    def line_count(self) -> int:
        return sum(t.count("\n") for t in self.sources.values())


def derive_seed(base: int, index: int) -> int:
    """The per-program seed of campaign item ``index`` (stable across
    processes and Python versions — plain integer arithmetic only)."""
    return (base * 0x9E3779B1 + index * 0x85EBCA77) % (2 ** 63)


class ProgramGenerator:
    """Builds one random program from a :class:`random.Random` stream."""

    def __init__(self, rng: random.Random,
                 options: GeneratorOptions = GeneratorOptions()):
        self.rng = rng
        self.options = options
        self.features: List[str] = []
        self._callees: List[ast.ProgramUnit] = []
        self._functions: List[str] = []
        self._main_decls: List[ast.Decl] = []
        self._next_label = 900

    def _fresh_label(self) -> int:
        """A statement label no other production uses (900, 901, ...)."""
        label = self._next_label
        self._next_label += 1
        return label

    # -- expression-level pieces -------------------------------------

    def subscript(self, var: str, *, max_c1: int = 2) -> ast.Expr:
        """In-bounds affine subscript ``c1*var + c2`` over ``var``."""
        c1 = self.rng.randint(0, max_c1)
        c2 = self.rng.randint(1, N)
        return affine_subscript(var, c1, c2)

    def non_affine_subscript(self, var: str) -> ast.Expr:
        """A subscript the affine dependence tests cannot model:
        ``var*var`` (plus a small offset) stays within 7*7 + 8 <= 64
        for var <= 7."""
        self._note("non-affine")
        square = ast.BinOp("*", ast.Var(var), ast.Var(var))
        if self.rng.random() < 0.5:
            return square
        return ast.BinOp("+", square, ast.IntLit(self.rng.randint(1, N)))

    def rhs(self, var: str, depth: int = 2) -> ast.Expr:
        """Random arithmetic over literals, scalars and array reads."""
        if depth <= 0:
            choice = self.rng.randint(0, 2)
            if choice == 0:
                return ast.RealLit(self.rng.randint(1, 9) / 2.0)
            if choice == 1:
                return ast.Var(var)
            return ast.ArrayRef(self.rng.choice(ARRAYS),
                                (self.subscript(var),))
        if self._functions and self.options.functions \
                and self.rng.random() < 0.15:
            self._note("funcref")
            return ast.FuncRef(self.rng.choice(self._functions),
                               (self.rhs(var, 0),))
        op = self.rng.choice(["+", "-", "*"])
        return ast.BinOp(op, self.rhs(var, depth - 1),
                         self.rhs(var, depth - 1))

    # -- loop-body pieces --------------------------------------------

    def loop_body(self, var: str, *, allow_if: bool = True) -> List[ast.Stmt]:
        body: List[ast.Stmt] = []
        for _ in range(self.rng.randint(1, 3)):
            kind = self.rng.randint(0, 3 if allow_if else 2)
            if kind == 0:
                # scalar temporary then use: privatization fodder
                body.append(ast.Assign(ast.Var("T"), self.rhs(var, 1)))
                body.append(ast.Assign(
                    ast.ArrayRef(self.rng.choice(ARRAYS),
                                 (self.subscript(var),)),
                    ast.BinOp("+", ast.Var("T"), self.rhs(var, 0))))
            elif kind == 1:
                body.append(ast.Assign(
                    ast.ArrayRef(self.rng.choice(ARRAYS),
                                 (self.subscript(var),)),
                    self.rhs(var, 2)))
            elif kind == 2 and self.options.reductions:
                self._note("reduction")
                body.append(ast.Assign(
                    ast.Var("S"),
                    ast.BinOp(self.rng.choice(["+", "-"]), ast.Var("S"),
                              self.rhs(var, 1))))
            else:
                cond = ast.BinOp(">", self.rhs(var, 1), ast.RealLit(2.0))
                body.append(ast.IfBlock([(cond, [ast.Assign(
                    ast.ArrayRef(self.rng.choice(ARRAYS),
                                 (self.subscript(var),)),
                    self.rhs(var, 1))])]))
        return body

    # -- top-level blocks --------------------------------------------

    def plain_loop(self) -> List[ast.Stmt]:
        self._note("loop")
        return [ast.DoLoop("I", ast.IntLit(1), ast.IntLit(N), None,
                           self.loop_body("I"))]

    def dependent_loop(self) -> List[ast.Stmt]:
        """A genuine loop-carried dependence: A(I+d) reads A(I)."""
        self._note("carried-dependence")
        arr = self.rng.choice(ARRAYS)
        d = self.rng.randint(1, 3)
        return [ast.DoLoop("I", ast.IntLit(1), ast.IntLit(N), None, [
            ast.Assign(
                ast.ArrayRef(arr, (ast.BinOp("+", ast.Var("I"),
                                             ast.IntLit(d)),)),
                ast.BinOp("+", ast.ArrayRef(arr, (ast.Var("I"),)),
                          self.rhs("I", 1)))])]

    def nested_loop(self) -> List[ast.Stmt]:
        """A 2-level nest writing a column-major-style flat region:
        ``A(I + 8*(J-1))`` covers 1..64 disjointly."""
        self._note("nested")
        arr = self.rng.choice(ARRAYS)
        flat = ast.BinOp("+", ast.Var("I"),
                         ast.BinOp("*", ast.IntLit(N),
                                   ast.BinOp("-", ast.Var("J"),
                                             ast.IntLit(1))))
        inner_body: List[ast.Stmt] = [
            ast.Assign(ast.ArrayRef(arr, (flat,)), self.rhs("I", 1))]
        if self.rng.random() < 0.5:
            inner_body += self.loop_body("J", allow_if=False)[:1]
        inner = ast.DoLoop("I", ast.IntLit(1), ast.IntLit(N), None,
                           inner_body)
        return [ast.DoLoop("J", ast.IntLit(1), ast.IntLit(N), None,
                           [inner])]

    def reduction_loop(self) -> List[ast.Stmt]:
        self._note("reduction")
        return [ast.DoLoop("I", ast.IntLit(1), ast.IntLit(N), None, [
            ast.Assign(ast.Var("S"),
                       ast.BinOp("+", ast.Var("S"), self.rhs("I", 1))),
            ast.Assign(ast.ArrayRef(self.rng.choice(ARRAYS),
                                    (self.subscript("I"),)),
                       self.rhs("I", 1)),
        ])]

    def induction_block(self) -> List[ast.Stmt]:
        """The ``K = K + c`` induction idiom feeding a subscript; K is
        re-initialized first so repeats stay in bounds (start <= 4,
        trips <= 8, step <= 3: K <= 4 + 24 < 64)."""
        self._note("induction")
        amount = self.rng.randint(1, 3)
        writes = [
            ast.Assign(ast.Var("K"), ast.BinOp("+", ast.Var("K"),
                                               ast.IntLit(amount))),
            ast.Assign(ast.ArrayRef("A", (ast.Var("K"),)),
                       self.rhs("J", 1)),
        ]
        if self.rng.random() < 0.5:
            writes.reverse()
        loop = ast.DoLoop("J", ast.IntLit(1),
                          ast.IntLit(self.rng.randint(2, N)), None, writes)
        return [ast.Assign(ast.Var("K"),
                           ast.IntLit(self.rng.randint(1, 4))),
                loop]

    def non_affine_loop(self) -> List[ast.Stmt]:
        arr = self.rng.choice(ARRAYS)
        return [ast.DoLoop("I", ast.IntLit(1), ast.IntLit(7), None, [
            ast.Assign(ast.ArrayRef(arr, (self.non_affine_subscript("I"),)),
                       self.rhs("I", 1))])]

    def guarded_loop(self) -> List[ast.Stmt]:
        self._note("guarded")
        arr = self.rng.choice(ARRAYS)
        cond = ast.BinOp(">", ast.ArrayRef("B", (ast.Var("I"),)),
                         ast.RealLit(float(self.rng.randint(1, 6))))
        return [ast.DoLoop("I", ast.IntLit(1), ast.IntLit(N), None, [
            ast.IfBlock([
                (cond, [ast.Assign(ast.ArrayRef(arr, (ast.Var("I"),)),
                                   self.rhs("I", 1))]),
                (None, [ast.Assign(ast.ArrayRef(arr, (ast.Var("I"),)),
                                   ast.RealLit(0.25))]),
            ])])]

    def call_block(self) -> List[ast.Stmt]:
        """A loop (or straight-line block) calling a generated callee
        with an aliasing-prone argument list."""
        callee = self.rng.choice(self._callees)
        self._note(f"call:{callee.name}")
        trips = self.rng.randint(2, N)
        style = self.rng.randint(0, 2)
        if style == 0:
            first: ast.Expr = ast.Var("A")           # whole array
        elif style == 1:
            first = ast.ArrayRef("A", (ast.IntLit(self.rng.randint(1, 16)),))
        else:
            first = ast.ArrayRef("A", (ast.Var("I"),))  # view moves with I
        args: Tuple[ast.Expr, ...] = (
            first,
            ast.RealLit(float(self.rng.randint(1, 5))),
            ast.Var("I") if self.rng.random() < 0.7
            else ast.IntLit(self.rng.randint(1, N)),
        )
        call = ast.CallStmt(callee.name, args)
        if self.rng.random() < 0.75:
            return [ast.DoLoop("I", ast.IntLit(1), ast.IntLit(trips), None,
                               [call])]
        return [ast.Assign(ast.Var("I"), ast.IntLit(self.rng.randint(1, N))),
                call]

    # -- extended-dialect blocks --------------------------------------

    def computed_goto_block(self) -> List[ast.Stmt]:
        """``GO TO (l1, ..., ln), K`` straight-line control flow.  The
        selector sometimes lands outside ``1..n`` to exercise the F77
        fall-through rule; each arm updates a distinct B cell and jumps
        to the join label, so the executed-arm set is deterministic and
        observable through COMMON memory."""
        self._note("computed-goto")
        n = self.rng.randint(2, 3)
        labels = [self._fresh_label() for _ in range(n)]
        join = self._fresh_label()
        sel = self.rng.randint(0, n + 1)
        out: List[ast.Stmt] = [
            ast.Assign(ast.Var("K"), ast.IntLit(sel)),
            ast.ComputedGoto(tuple(labels), ast.Var("K")),
        ]
        for i, lab in enumerate(labels):
            cell = ast.ArrayRef("B", (ast.IntLit(i + 1),))
            out.append(ast.Assign(
                cell, ast.BinOp("+", cell, ast.RealLit(float(i + 1))),
                label=lab))
            if i < n - 1:
                out.append(ast.Goto(join))
        out.append(ast.Continue(label=join))
        return out

    def data_block(self) -> List[ast.Stmt]:
        """A DATA-initialized local array consumed by a (parallelizable)
        loop: ``REAL Wi(8)`` + ``DATA Wi/.../`` + ``A(I) = A(I)+Wi(I)``.
        The parser expands repeat counts, so the shipped source and the
        built AST carry the same per-element value list."""
        self._note("data")
        name = f"W{len(self._main_decls) // 2 + 1}"
        first = ast.RealLit(self.rng.randint(1, 4) / 2.0)
        second = ast.RealLit(self.rng.randint(1, 4) / 2.0)
        self._main_decls.append(ast.TypeDecl(
            "REAL", [ast.Entity(name, (ast.Dim.upto(ast.IntLit(N)),))]))
        self._main_decls.append(ast.DataDecl(
            targets=[ast.Var(name)],
            values=[first] * (N // 2) + [second] * (N // 2)))
        arr = self.rng.choice(ARRAYS)
        cell = ast.ArrayRef(arr, (ast.Var("I"),))
        return [ast.DoLoop("I", ast.IntLit(1), ast.IntLit(N), None, [
            ast.Assign(cell, ast.BinOp(
                "+", cell, ast.ArrayRef(name, (ast.Var("I"),))))])]

    # -- callees ------------------------------------------------------

    def callee(self, idx: int) -> ast.ProgramUnit:
        """A leaf subroutine ``SUB<idx>(V, X, M)``: V an assumed-size
        array formal (bound to a COMMON-array view at call sites), X a
        scalar, M a trip count <= N.  Most shapes are summarizable so
        the annotation generator can derive their Figure-12 annotation."""
        name = f"SUB{idx}"
        decls: List[ast.Decl] = [
            ast.DimensionDecl([ast.Entity("V", (ast.Dim(ast.IntLit(1),
                                                        None),))]),
            common_decls()[0],
        ]
        shape = self.rng.randint(0, 3)
        body: List[ast.Stmt] = []
        if shape == 0:
            # scale the view: V(L) = V(L)*X + c
            self._note("callee-scale")
            body = [ast.DoLoop("L", ast.IntLit(1), ast.Var("M"), None, [
                ast.Assign(ast.ArrayRef("V", (ast.Var("L"),)),
                           ast.BinOp("+",
                                     ast.BinOp("*",
                                               ast.ArrayRef("V",
                                                            (ast.Var("L"),)),
                                               ast.Var("X")),
                                     ast.RealLit(self.rng.randint(1, 4)
                                                 / 2.0)))])]
        elif shape == 1:
            # write a COMMON array from the view (aliasing fodder)
            self._note("callee-common-write")
            body = [ast.DoLoop("L", ast.IntLit(1), ast.Var("M"), None, [
                ast.Assign(ast.ArrayRef("C", (ast.Var("L"),)),
                           ast.BinOp("*", ast.ArrayRef("V", (ast.Var("L"),)),
                                     ast.Var("X")))])]
        elif shape == 2:
            # scalar COMMON write (S acts as an out-parameter)
            self._note("callee-scalar-out")
            body = [ast.Assign(ast.Var("S"),
                               ast.BinOp("+", ast.Var("S"),
                                         ast.BinOp("*", ast.Var("X"),
                                                   ast.RealLit(0.5))))]
        else:
            # single-point write with an error-checking conditional the
            # annotation generator's relaxed policy omits
            self._note("callee-error-check")
            body = [
                ast.IfBlock([(ast.BinOp(">", ast.Var("X"),
                                        ast.RealLit(1e6)),
                              [ast.IoStmt("WRITE", "6,*",
                                          (ast.StringLit("BAD X"),)),
                               ast.Stop()])]),
                ast.Assign(ast.ArrayRef("V", (ast.IntLit(1),)),
                           ast.BinOp("+", ast.ArrayRef("V", (ast.IntLit(1),)),
                                     ast.Var("X"))),
            ]
        return ast.ProgramUnit("SUBROUTINE", name, ["V", "X", "M"],
                               decls, body + [ast.Return()])

    def function_unit(self) -> ast.ProgramUnit:
        """A pure scalar FUNCTION used inside expressions."""
        self._note("function")
        name = "FN1"
        c = self.rng.randint(1, 4)
        body = [ast.Assign(ast.Var(name),
                           ast.BinOp("+",
                                     ast.BinOp("*", ast.Var("X"),
                                               ast.RealLit(0.5)),
                                     ast.RealLit(float(c)))),
                ast.Return()]
        return ast.ProgramUnit("FUNCTION", name, ["X"], [], body,
                               result_type="REAL")

    # -- assembly -----------------------------------------------------

    _BLOCKS = ("plain", "dependent", "nested", "reduction", "induction",
               "non_affine", "guarded", "call")

    def build(self) -> Program:
        opts = self.options
        if opts.calls:
            for i in range(self.rng.randint(0, opts.max_callees)):
                self._callees.append(self.callee(i + 1))
        funcs: List[ast.ProgramUnit] = []
        if opts.functions and self.rng.random() < 0.5:
            fn = self.function_unit()
            funcs.append(fn)
            self._functions.append(fn.name)

        menu = ["plain", "guarded"]
        if opts.nested:
            menu += ["nested", "dependent"]
        if opts.reductions:
            menu.append("reduction")
        if opts.induction:
            menu.append("induction")
        if opts.non_affine:
            menu.append("non_affine")
        if self._callees:
            menu += ["call", "call"]
        if opts.dialect == "extended":
            menu += ["computed_goto", "data"]

        body = init_statements()
        for _ in range(self.rng.randint(1, opts.max_blocks)):
            kind = self.rng.choice(menu)
            body += getattr(self, {
                "plain": "plain_loop", "dependent": "dependent_loop",
                "nested": "nested_loop", "reduction": "reduction_loop",
                "induction": "induction_block",
                "non_affine": "non_affine_loop",
                "guarded": "guarded_loop", "call": "call_block",
                "computed_goto": "computed_goto_block",
                "data": "data_block",
            }[kind])()
        body += observe_statements()
        units = [wrap_main(body, common_decls() + self._main_decls)] \
            + self._callees + funcs
        return make_program(units, "fuzz")

    def _note(self, feature: str) -> None:
        if feature not in self.features:
            self.features.append(feature)


def generate(seed: int,
             options: GeneratorOptions = GeneratorOptions()) -> FuzzProgram:
    """Generate one program (plus auto-derived callee annotations) from
    ``seed``.  Deterministic: same seed, same bytes."""
    gen = ProgramGenerator(random.Random(seed), options)
    program = gen.build()
    # canonical source: the unparse of the built AST (so the shipped
    # sources re-parse to exactly the program we built)
    filename = f"fuzz{seed % 100000}.f"
    sources = {filename: "".join(program.unparse().values())}
    annotations = derive_annotations(program)
    if annotations:
        gen._note("annotations")
    return FuzzProgram(seed, sources, annotations, list(gen.features))


def derive_annotations(program: Program) -> str:
    """Auto-derive Figure-12 annotations for every summarizable callee
    (the fuzz stand-in for the paper's developer-written annotations)."""
    from repro.annotations.generate import generate_all, render_annotation
    chunks: List[str] = []
    for name, res in sorted(generate_all(program).items()):
        if res.ok:
            chunks.append(render_annotation(res.annotation))
    return "\n\n".join(chunks)
