"""The differential oracle: one generated program, three pipelines,
zero tolerated disagreements.

For a generated program the oracle establishes a **baseline** (serial
execution of the unmodified parse) and then, for each of the paper's
three configurations (``none`` / ``conventional`` / ``annotation``),
checks:

``crash``
    the pipeline itself must not raise (an unexpected exception in any
    inliner, Polaris, or the reverse inliner is a finding, not noise);
``config-semantics``
    serial execution of the transformed program equals the baseline —
    inlining, normalization and reverse inlining preserve meaning;
``parallel-divergence``
    :func:`repro.runtime.diff_test` passes — every loop the driver
    marked parallel computes the same state when its iterations run
    in-order-parallel and in a **permuted** schedule;
``backend-divergence``
    :func:`repro.runtime.difftest.backend_equivalence` — the compiled
    closure backend produces bit-identical output, cost, COMMON memory
    and stop/error messages to the tree-walker in every execution mode;
``unparse-semantics``
    the unparsed transformed program re-parses and serially re-executes
    to the baseline (directives and restored CALLs survive the text
    round-trip);
``reverse-reanalysis``
    (annotation config only) the reverse-inlined output, stripped of
    OpenMP directives and re-run through the *same* annotation pipeline,
    re-analyzes to the same multiset of ``LoopDecision`` verdicts —
    reverse inlining is a fixpoint, not a lossy step;
``inferred-flip``
    the annotation config re-run with **inferred** annotations
    (:func:`repro.annotations.infer.infer_annotations`, ignoring the
    shipped hand-derived ones) must not parallelize any original loop
    the hand-annotation run left serial — inference may only lose
    precision, never invent parallelism.  Checked only when the inferred
    registry covers a subset of the hand registry's callees (always true
    for generated programs, whose "hand" annotations come from the same
    generator); the inferred and demand-driven pipelines additionally
    re-run the crash / config-semantics / parallel-divergence properties
    above.  Disable with ``REPRO_FUZZ_INFERENCE=0``.

Any violated property yields a :class:`Mismatch`; the campaign layer
treats one or more mismatches as a failing program and hands it to the
shrinker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Counter as CounterType
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.fortran import ast
from repro.program import Program
from repro.runtime.difftest import backend_equivalence, diff_test
from repro.runtime.interpreter import ExecutionResult, Interpreter
from repro.runtime.machine import INTEL_MAC, MachineModel

CONFIG_KINDS = ("none", "conventional", "annotation")

#: (unit, var, parallelized, reason) — the re-analysis fingerprint of one
#: loop verdict.  Origins are deliberately excluded: they are stamped by
#: position and reverse inlining may renumber them, but the *decisions*
#: must survive.
VerdictKey = Tuple[str, str, bool, str]


@dataclass(frozen=True)
class Mismatch:
    """One violated oracle property."""

    kind: str          # crash | config-semantics | parallel-divergence |
    #                  # backend-divergence | unparse-semantics |
    #                  # reverse-reanalysis | inferred-flip
    config: str        # which configuration exposed it
    detail: str = ""

    def describe(self) -> str:
        return f"[{self.config}] {self.kind}: {self.detail}"


@dataclass
class OracleResult:
    """The oracle's verdict on one program."""

    mismatches: List[Mismatch] = field(default_factory=list)
    configs_run: int = 0
    parallel_loops: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return not self.mismatches

    @property
    def primary(self) -> Optional[Mismatch]:
        return self.mismatches[0] if self.mismatches else None

    def describe(self) -> str:
        if self.passed:
            return "all oracle properties hold"
        return "; ".join(m.describe() for m in self.mismatches)


def _serial(program: Program) -> ExecutionResult:
    return Interpreter(program, machine=None,
                       honor_directives=False).run()


def _registry(annotations: str):
    from repro.annotations import AnnotationRegistry
    if not annotations.strip():
        return AnnotationRegistry()
    return AnnotationRegistry.from_text(annotations)


def _run_pipeline(program: Program, registry, config: str):
    """The exact CLI pipeline (cli._pipeline without the timings)."""
    from repro.annotations import AnnotationInliner, ReverseInliner
    from repro.inlining import ConventionalInliner
    from repro.polaris import Polaris
    if config == "conventional":
        ConventionalInliner().run(program)
    elif config == "annotation":
        AnnotationInliner(registry).run(program)
    report = Polaris().run(program)
    if config == "annotation":
        ReverseInliner(registry).run(program)
    return report


def _run_inference_pipeline(program: Program, hand_registry, mode: str):
    """The annotation pipeline on the ``inferred``/``demand`` axis
    (cli._pipeline with ``annotations_mode`` != hand)."""
    from repro.annotations import ReverseInliner
    from repro.annotations.infer import infer_annotations
    from repro.annotations.inliner import AnnotationInliner
    from repro.inlining.demand import DemandInliner
    from repro.polaris import Polaris
    hand = hand_registry if mode == "demand" else None
    inference = infer_annotations(program, hand=hand)
    registry = inference.registry()
    demand = None
    if mode == "demand":
        demand = DemandInliner(registry, inference=inference,
                               hand_names=frozenset(hand.names()))
    else:
        AnnotationInliner(registry).run(program)
    report = Polaris(demand=demand).run(program)
    ReverseInliner(registry).run(program)
    return report, registry


def _inference_enabled() -> bool:
    import os
    return os.environ.get("REPRO_FUZZ_INFERENCE", "1").lower() \
        not in ("0", "false", "off")


def strip_omp(program: Program) -> None:
    """Unwrap every ``OmpParallelDo`` back to its plain loop, in place —
    the re-analysis input must look like ordinary source again."""
    def unwrap(s: ast.Stmt):
        if isinstance(s, ast.OmpParallelDo):
            return [s.loop]
        return None
    for unit in program.units:
        unit.body = ast.map_stmts(unit.body, unwrap)
    program.invalidate()


def verdict_fingerprint(report) -> CounterType[VerdictKey]:
    return Counter((v.unit, v.var, v.parallelized, v.reason)
                   for v in report.verdicts)


def _fingerprint_delta(first: CounterType[VerdictKey],
                       second: CounterType[VerdictKey]) -> str:
    gone = first - second
    new = second - first
    bits = []
    if gone:
        bits.append("lost " + ", ".join(
            f"{u}:DO {v} {'par' if p else 'serial(' + r + ')'}"
            for (u, v, p, r) in gone))
    if new:
        bits.append("gained " + ", ".join(
            f"{u}:DO {v} {'par' if p else 'serial(' + r + ')'}"
            for (u, v, p, r) in new))
    return "; ".join(bits)


def run_oracle(sources: Dict[str, str], annotations: str = "",
               machine: MachineModel = INTEL_MAC,
               configs: Tuple[str, ...] = CONFIG_KINDS) -> OracleResult:
    """Check every oracle property of the program in ``sources``."""
    result = OracleResult()

    try:
        baseline_prog = Program.from_sources(dict(sources), "fuzz")
        baseline = _serial(baseline_prog)
    except Exception as exc:  # generator bug, not a pipeline bug
        result.mismatches.append(Mismatch(
            "crash", "baseline", f"{type(exc).__name__}: {exc}"))
        return result

    annotation_origins = None
    for config in configs:
        work = Program.from_sources(dict(sources), "fuzz")
        try:
            registry = _registry(annotations)
            report = _run_pipeline(work, registry, config)
        except Exception as exc:
            result.mismatches.append(Mismatch(
                "crash", config, f"{type(exc).__name__}: {exc}"))
            continue
        result.configs_run += 1
        result.parallel_loops[config] = report.parallel_count()
        if config == "annotation":
            annotation_origins = frozenset(report.parallel_origins())

        # (a) semantic equivalence: transformed, serial == baseline
        try:
            transformed = _serial(work)
        except Exception as exc:
            result.mismatches.append(Mismatch(
                "config-semantics", config,
                f"serial execution raised {type(exc).__name__}: {exc}"))
            continue
        if not baseline.memory_equal(transformed):
            result.mismatches.append(Mismatch(
                "config-semantics", config,
                "serial execution of the transformed program diverges "
                "from the baseline"))
            continue

        # (b) iteration-order independence of parallel-marked loops
        try:
            diff = diff_test(work, machine)
        except Exception as exc:
            result.mismatches.append(Mismatch(
                "parallel-divergence", config,
                f"parallel execution raised {type(exc).__name__}: {exc}"))
            continue
        if not diff.passed:
            result.mismatches.append(Mismatch(
                "parallel-divergence", config, diff.explain()))
            continue

        # (b') backend equivalence: tree-walker vs compiled closures must
        # agree exactly (output, cost, COMMON bits, stop/error messages)
        # in every execution mode
        divergence = backend_equivalence(work, machine)
        if divergence is not None:
            result.mismatches.append(Mismatch(
                "backend-divergence", config, divergence))
            continue

        # text round-trip: unparse, reparse, serial == baseline
        try:
            reparsed = Program.from_sources(work.unparse(), "fuzz")
            rerun = _serial(reparsed)
        except Exception as exc:
            result.mismatches.append(Mismatch(
                "unparse-semantics", config,
                f"{type(exc).__name__}: {exc}"))
            continue
        if not baseline.memory_equal(rerun):
            result.mismatches.append(Mismatch(
                "unparse-semantics", config,
                "unparse/reparse changed serial semantics"))
            continue

        # (c) reverse-inliner round-trip fidelity
        if config == "annotation":
            mismatch = _check_reanalysis(reparsed, annotations, report)
            if mismatch is not None:
                result.mismatches.append(mismatch)

    if "annotation" in configs and _inference_enabled():
        _check_inference(sources, annotations, machine, baseline,
                         annotation_origins, result)
    return result


def _check_inference(sources: Dict[str, str], annotations: str,
                     machine: MachineModel, baseline: ExecutionResult,
                     hand_origins, result: OracleResult) -> None:
    """The inferred-annotations properties: re-run the annotation
    pipeline on the ``inferred`` and ``demand`` axes and hold them to
    the execution properties, plus the ``inferred-flip`` soundness
    subset check (see module docstring)."""
    try:
        hand_registry = _registry(annotations)
    except Exception:
        # unparseable hand annotations already yielded a crash mismatch
        # per configuration in the main loop; there is nothing sound to
        # compare inference against
        return
    hand_names = set(hand_registry.names())
    for mode in ("inferred", "demand"):
        work = Program.from_sources(dict(sources), "fuzz")
        try:
            report, registry = _run_inference_pipeline(work, hand_registry,
                                                       mode)
        except Exception as exc:
            result.mismatches.append(Mismatch(
                "crash", mode, f"{type(exc).__name__}: {exc}"))
            continue
        result.configs_run += 1
        result.parallel_loops[mode] = report.parallel_count()

        # soundness subset: inference must not out-parallelize the hand
        # run it is a restriction of (only meaningful when the inferred
        # registry covers no callee the hand registry misses)
        if mode == "inferred" and hand_origins is not None \
                and set(registry.names()) <= hand_names:
            flipped = sorted(report.parallel_origins() - hand_origins)
            if flipped:
                result.mismatches.append(Mismatch(
                    "inferred-flip", mode,
                    "inference parallelized loops the hand-annotation "
                    "run left serial: " + ", ".join(flipped)))
                continue

        try:
            transformed = _serial(work)
        except Exception as exc:
            result.mismatches.append(Mismatch(
                "config-semantics", mode,
                f"serial execution raised {type(exc).__name__}: {exc}"))
            continue
        if not baseline.memory_equal(transformed):
            result.mismatches.append(Mismatch(
                "config-semantics", mode,
                "serial execution of the transformed program diverges "
                "from the baseline"))
            continue

        try:
            diff = diff_test(work, machine)
        except Exception as exc:
            result.mismatches.append(Mismatch(
                "parallel-divergence", mode,
                f"parallel execution raised {type(exc).__name__}: {exc}"))
            continue
        if not diff.passed:
            result.mismatches.append(Mismatch(
                "parallel-divergence", mode, diff.explain()))


def _check_reanalysis(reparsed: Program, annotations: str,
                      first_report) -> Optional[Mismatch]:
    """Strip directives from the reverse-inlined output and push it
    through the annotation pipeline again; the verdicts must agree."""
    strip_omp(reparsed)
    registry = _registry(annotations)
    try:
        second = _run_pipeline(reparsed, registry, "annotation")
    except Exception as exc:
        return Mismatch("reverse-reanalysis", "annotation",
                        f"re-analysis raised {type(exc).__name__}: {exc}")
    first_fp = verdict_fingerprint(first_report)
    second_fp = verdict_fingerprint(second)
    if first_fp != second_fp:
        return Mismatch("reverse-reanalysis", "annotation",
                        _fingerprint_delta(first_fp, second_fp))
    return None
