"""Campaign driver: generate → oracle fan-out → shrink → corpus.

A campaign streams seeded generator/oracle tasks through
:func:`repro.experiments.run_tasks` (the PR-1 process-pool executor) in
batches, honouring either a program ``count``, a wall-clock
``time_budget``, or both.  Per-program seeds come from
:func:`repro.fuzz.generator.derive_seed`, so a campaign is fully
deterministic for a fixed base seed regardless of worker count or batch
boundaries.

Failures are shrunk **in the parent** (the worker only reports the seed
and the mismatch list; the parent regenerates the program from its seed
— cheap, deterministic, and keeps worker results trivially picklable)
and persisted to the corpus.  Campaign statistics are exported as
``repro.trace`` instant events so a traced campaign shows up on the same
timeline as the pipelines it exercises.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.experiments.executor import run_tasks
from repro.fuzz.corpus import CorpusEntry, save_entry
from repro.obs import metrics as obs_metrics
from repro.fuzz.generator import (FuzzProgram, GeneratorOptions, derive_seed,
                                  generate)
from repro.fuzz.oracle import Mismatch, run_oracle
from repro.fuzz.shrinker import ShrinkResult, shrink
from repro.trace import NULL_TRACER, Tracer


@dataclass(frozen=True)
class FuzzTask:
    """One picklable work item: generate program ``seed``, run the
    oracle, report back."""

    index: int
    seed: int
    options: GeneratorOptions = GeneratorOptions()


def run_fuzz_task(task: FuzzTask) -> Dict:
    """Worker body (module-level so the process pool can pickle it)."""
    program = generate(task.seed, task.options)
    result = run_oracle(program.sources, program.annotations)
    return {
        "index": task.index,
        "seed": task.seed,
        "passed": result.passed,
        "configs_run": result.configs_run,
        "parallel_loops": dict(result.parallel_loops),
        "features": list(program.features),
        "lines": program.line_count(),
        "mismatches": [(m.kind, m.config, m.detail)
                       for m in result.mismatches],
    }


@dataclass
class FailureRecord:
    """One failing program, post-shrink."""

    index: int
    seed: int
    mismatches: List[Mismatch]
    program: FuzzProgram
    shrunk: Optional[ShrinkResult] = None
    corpus_path: Optional[str] = None

    def describe(self) -> str:
        head = self.mismatches[0]
        lines = (self.shrunk.line_count() if self.shrunk
                 else self.program.line_count())
        return (f"seed {self.seed}: {head.describe()} "
                f"({lines}-line repro)")


@dataclass
class CampaignStats:
    programs: int = 0
    configs_run: int = 0
    failing_programs: int = 0
    mismatches: int = 0
    shrink_steps: int = 0
    parallel_loops: Dict[str, int] = field(default_factory=dict)
    features: Counter = field(default_factory=Counter)
    source_lines: int = 0
    elapsed_seconds: float = 0.0

    def summary(self) -> str:
        return (f"{self.programs} programs, {self.configs_run} configs, "
                f"{self.mismatches} mismatches in "
                f"{self.failing_programs} programs, "
                f"{self.shrink_steps} shrink steps, "
                f"{self.elapsed_seconds:.1f}s")


@dataclass
class CampaignResult:
    stats: CampaignStats
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_campaign(seed: int = 0,
                 count: Optional[int] = None,
                 time_budget: Optional[float] = None,
                 jobs: Optional[int] = None,
                 tracer: Optional[Tracer] = None,
                 corpus_dir: Optional[str] = None,
                 options: GeneratorOptions = GeneratorOptions(),
                 do_shrink: bool = True,
                 progress=None) -> CampaignResult:
    """Run one fuzzing campaign.

    ``count`` bounds the number of programs, ``time_budget`` (seconds)
    bounds wall-clock; with both unset a single default batch of 100
    programs runs.  ``progress`` (optional callable) receives one line
    per batch.
    """
    tracer = tracer or NULL_TRACER
    if count is None and time_budget is None:
        count = 100
    from repro.experiments.executor import resolve_jobs
    effective_jobs = resolve_jobs(jobs)
    batch_size = max(8, effective_jobs * 4)

    stats = CampaignStats()
    failures: List[FailureRecord] = []
    start = time.perf_counter()
    index = 0
    with tracer.span("fuzz campaign", cat="fuzz", seed=seed):
        while True:
            if count is not None and index >= count:
                break
            if time_budget is not None \
                    and time.perf_counter() - start >= time_budget:
                break
            size = batch_size
            if count is not None:
                size = min(size, count - index)
            tasks = [FuzzTask(index + i, derive_seed(seed, index + i),
                              options)
                     for i in range(size)]
            index += size
            outcomes = run_tasks(run_fuzz_task, tasks, jobs=jobs,
                                 tracer=tracer, label="fuzz")
            for outcome in outcomes:
                _absorb(stats, outcome)
                if not outcome["passed"]:
                    failures.append(_handle_failure(
                        outcome, options, tracer, corpus_dir, do_shrink,
                        stats))
            if progress is not None:
                progress(f"  [{stats.programs} programs, "
                         f"{stats.mismatches} mismatches, "
                         f"{time.perf_counter() - start:.1f}s]")
    stats.elapsed_seconds = time.perf_counter() - start
    _persist_stats(stats, seed)
    tracer.instant("fuzz-campaign", cat="fuzz", seed=seed,
                   programs=stats.programs, configs_run=stats.configs_run,
                   mismatches=stats.mismatches,
                   failing_programs=stats.failing_programs,
                   shrink_steps=stats.shrink_steps,
                   elapsed_seconds=round(stats.elapsed_seconds, 3))
    return CampaignResult(stats, failures)


def _absorb(stats: CampaignStats, outcome: Dict) -> None:
    stats.programs += 1
    stats.configs_run += outcome["configs_run"]
    stats.source_lines += outcome["lines"]
    stats.features.update(outcome["features"])
    for config, n in outcome["parallel_loops"].items():
        stats.parallel_loops[config] = \
            stats.parallel_loops.get(config, 0) + n
    # parent-side oracle-verdict counters (one _absorb per program, so
    # any -j yields identical values)
    obs_metrics.counter("repro_fuzz_programs_total",
                        "fuzzed programs by oracle verdict").inc(
        verdict="passed" if outcome["passed"] else "failed")
    obs_metrics.counter("repro_fuzz_configs_total",
                        "configurations exercised by the fuzzer").inc(
        outcome["configs_run"])
    if not outcome["passed"]:
        stats.failing_programs += 1
        stats.mismatches += len(outcome["mismatches"])
        mismatches = obs_metrics.counter(
            "repro_fuzz_mismatches_total", "oracle mismatches by kind")
        for kind, _config, _detail in outcome["mismatches"]:
            mismatches.inc(kind=kind)


def _persist_stats(stats: CampaignStats, seed: int) -> None:
    """Drop the latest campaign stats where the dashboard finds them
    (best-effort; the cache dir may be unwritable)."""
    from repro.perfect.suite import cache_dir
    payload = {
        "seed": seed,
        "programs": stats.programs,
        "configs_run": stats.configs_run,
        "failing_programs": stats.failing_programs,
        "mismatches": stats.mismatches,
        "shrink_steps": stats.shrink_steps,
        "source_lines": stats.source_lines,
        "elapsed_seconds": round(stats.elapsed_seconds, 3),
        "parallel_loops": dict(stats.parallel_loops),
        "features": dict(stats.features),
    }
    try:
        os.makedirs(cache_dir(), exist_ok=True)
        path = os.path.join(cache_dir(), "fuzz_latest.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError:
        pass


def _handle_failure(outcome: Dict, options: GeneratorOptions,
                    tracer: Tracer, corpus_dir: Optional[str],
                    do_shrink: bool,
                    stats: CampaignStats) -> FailureRecord:
    """Regenerate the failing program from its seed, shrink it, and
    persist the repro."""
    seed = outcome["seed"]
    mismatches = [Mismatch(kind, config, detail)
                  for kind, config, detail in outcome["mismatches"]]
    program = generate(seed, options)
    record = FailureRecord(outcome["index"], seed, mismatches, program)
    if do_shrink:
        record.shrunk = shrink(program.sources, program.annotations)
        if record.shrunk is not None:
            stats.shrink_steps += record.shrunk.steps
    head = mismatches[0]
    tracer.instant("fuzz-mismatch", cat="fuzz", seed=seed,
                   kind=head.kind, config=head.config,
                   shrink_steps=(record.shrunk.steps
                                 if record.shrunk else 0))
    if corpus_dir is not None:
        entry = CorpusEntry(
            seed=seed, kind=head.kind, config=head.config,
            detail=head.detail, features=program.features,
            sources=program.sources, annotations=program.annotations,
            shrunk_sources=(record.shrunk.sources
                            if record.shrunk else None),
            shrunk_annotations=(record.shrunk.annotations
                                if record.shrunk else ""),
            shrink_steps=(record.shrunk.steps if record.shrunk else 0),
        )
        record.corpus_path = save_entry(corpus_dir, entry)
    return record
