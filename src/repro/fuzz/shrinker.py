"""Delta-debugging shrinker: reduce a failing program to a minimal repro.

Given a program the oracle rejects, the shrinker repeatedly tries
structure-aware reductions — delete a statement, unwrap a loop or IF to
its body, drop a whole program unit, drop a declaration — keeping a
mutation only if the *same* failure still reproduces (same property
kind, same configuration, and for crashes the same exception type, so a
reduction can never launder one bug into a different one).

Reductions run in reverse preorder (children before their parents), so
within one round every candidate's statement list is still live when it
is tried; rounds repeat to a fixpoint.  Annotations are re-derived from
the mutated program before every oracle call, because deleting
statements changes callee summaries.

This is ddmin in spirit but syntax-directed: removing whole subtrees at
AST granularity converges in a handful of rounds on the ~60-line
programs the generator emits, typically landing well under 30 lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.fortran import ast
from repro.program import Program
from repro.fuzz.generator import derive_annotations
from repro.fuzz.oracle import OracleResult, run_oracle


@dataclass
class ShrinkResult:
    """The minimized repro plus how we got there."""

    sources: Dict[str, str]
    annotations: str
    kind: str            # the preserved failure kind
    config: str          # the configuration that exposes it
    steps: int           # successful reductions applied
    rounds: int          # fixpoint rounds (including the final no-op one)
    oracle_runs: int     # total predicate evaluations

    def line_count(self) -> int:
        return sum(t.count("\n") for t in self.sources.values())

    def source_text(self) -> str:
        return "".join(self.sources[k] for k in sorted(self.sources))


def _signature(result: OracleResult) -> Optional[Tuple[str, str, str]]:
    """The identity of a failure: (kind, config, crash-exception-type)."""
    m = result.primary
    if m is None:
        return None
    exc_type = ""
    if m.kind == "crash" or "raised" in m.detail:
        exc_type = m.detail.split(":", 1)[0]
    return (m.kind, m.config, exc_type)


def _matches(result: OracleResult,
             signature: Tuple[str, str, str]) -> bool:
    kind, config, exc_type = signature
    for m in result.mismatches:
        if m.kind != kind or m.config != config:
            continue
        if exc_type and not m.detail.startswith(exc_type):
            continue
        return True
    return False


class Shrinker:
    """Shrinks one failing program.  Single-use: construct, call
    :meth:`run`, read the result."""

    def __init__(self, sources: Dict[str, str], annotations: str = "",
                 max_rounds: int = 8,
                 rederive: Optional[bool] = None):
        self.sources = dict(sources)
        self.annotations = annotations
        self.max_rounds = max_rounds
        self.oracle_runs = 0
        self.steps = 0
        #: re-derive annotations from each mutated candidate (right for
        #: generator output, whose annotations ARE the derived ones) or
        #: keep the provided text fixed (right when the annotations
        #: themselves are the suspect, e.g. hand-written ones).  None =
        #: auto-detect by comparing against the derived text.
        self.rederive = rederive

    # -- predicate ----------------------------------------------------

    def _oracle(self, sources: Dict[str, str],
                annotations: str) -> OracleResult:
        self.oracle_runs += 1
        return run_oracle(sources, annotations)

    def _annotations_for(self, program: Program) -> str:
        if not self.rederive:
            return self.annotations
        try:
            fresh = Program.from_sources(program.unparse(), "shrink")
            return derive_annotations(fresh)
        except Exception:
            return ""

    def _still_fails(self, program: Program,
                     signature: Tuple[str, str, str]) -> bool:
        try:
            sources = program.unparse()
            # the mutated text must at least re-parse; a reduction that
            # produces unparseable text is rejected outright
            Program.from_sources(dict(sources), "shrink")
        except Exception:
            return False
        annotations = self._annotations_for(program)
        return _matches(self._oracle(sources, annotations), signature)

    # -- reduction passes ---------------------------------------------

    @staticmethod
    def _stmt_sites(program: Program) -> List[Tuple[List[ast.Stmt], int]]:
        """Every (statement-list, index) in reverse preorder: children
        before parents, later statements before earlier ones, so one
        round of in-place deletions never invalidates a pending site."""
        sites: List[Tuple[List[ast.Stmt], int]] = []

        def visit(body: List[ast.Stmt]) -> None:
            for idx, stmt in enumerate(body):
                sites.append((body, idx))
                for child in ast.stmt_children(stmt):
                    visit(child)

        for unit in program.units:
            visit(unit.body)
        sites.reverse()
        return sites

    def _try(self, program: Program, signature: Tuple[str, str, str],
             body: List[ast.Stmt], idx: int,
             replacement: List[ast.Stmt]) -> bool:
        original = body[idx]
        body[idx:idx + 1] = replacement
        program.invalidate()
        if self._still_fails(program, signature):
            self.steps += 1
            return True
        body[idx:idx + len(replacement)] = [original]
        program.invalidate()
        return False

    def _round_stmts(self, program: Program,
                     signature: Tuple[str, str, str]) -> bool:
        changed = False
        for body, idx in self._stmt_sites(program):
            if idx >= len(body):
                continue  # an earlier deletion shortened this list
            stmt = body[idx]
            if self._try(program, signature, body, idx, []):
                changed = True
                continue
            # unwrap compound statements to their bodies
            inner: List[ast.Stmt] = []
            if isinstance(stmt, ast.DoLoop):
                inner = stmt.body
            elif isinstance(stmt, ast.IfBlock):
                inner = [s for _, arm in stmt.arms for s in arm]
            if inner and self._try(program, signature, body, idx,
                                   list(inner)):
                changed = True
        return changed

    def _round_units(self, program: Program,
                     signature: Tuple[str, str, str]) -> bool:
        changed = False
        for source_file in program.files:
            for idx in range(len(source_file.units) - 1, -1, -1):
                unit = source_file.units[idx]
                if unit.kind == "PROGRAM":
                    continue
                del source_file.units[idx]
                program.invalidate()
                if self._still_fails(program, signature):
                    self.steps += 1
                    changed = True
                else:
                    source_file.units.insert(idx, unit)
                    program.invalidate()
        return changed

    def _round_decls(self, program: Program,
                     signature: Tuple[str, str, str]) -> bool:
        changed = False
        for unit in program.units:
            for idx in range(len(unit.decls) - 1, -1, -1):
                decl = unit.decls[idx]
                del unit.decls[idx]
                program.invalidate()
                if self._still_fails(program, signature):
                    self.steps += 1
                    changed = True
                else:
                    unit.decls.insert(idx, decl)
                    program.invalidate()
        return changed

    # -- driver -------------------------------------------------------

    def run(self) -> Optional[ShrinkResult]:
        """Shrink to fixpoint.  Returns None when the input program does
        not fail the oracle at all (nothing to shrink)."""
        initial = self._oracle(self.sources, self.annotations)
        signature = _signature(initial)
        if signature is None:
            return None
        program = Program.from_sources(dict(self.sources), "shrink")
        if self.rederive is None:
            try:
                derived = derive_annotations(
                    Program.from_sources(dict(self.sources), "shrink"))
            except Exception:
                derived = ""
            self.rederive = derived.strip() == self.annotations.strip()

        rounds = 0
        for rounds in range(1, self.max_rounds + 1):
            changed = self._round_stmts(program, signature)
            changed = self._round_units(program, signature) or changed
            changed = self._round_decls(program, signature) or changed
            if not changed:
                break

        sources = program.unparse()
        kind, config, _ = signature
        return ShrinkResult(sources=dict(sources),
                            annotations=self._annotations_for(program),
                            kind=kind, config=config, steps=self.steps,
                            rounds=rounds, oracle_runs=self.oracle_runs)


def shrink(sources: Dict[str, str], annotations: str = "",
           max_rounds: int = 8,
           rederive: Optional[bool] = None) -> Optional[ShrinkResult]:
    """Convenience wrapper: shrink ``sources`` to a minimal repro."""
    return Shrinker(sources, annotations, max_rounds, rederive).run()
