"""Failure corpus: persisted repros replayed as tier-1 regression tests.

Every program the campaign flags is written to
``tests/fuzz/corpus/<kind>-<seed>.json`` — the original sources, the
auto-derived annotations, the shrunk repro, and enough metadata to
reproduce the finding from its seed alone.  ``tests/fuzz`` replays every
entry through the oracle on each tier-1 run, so a once-found bug can
never silently come back.

Entries with ``kind == "regression"`` are curated known-tricky programs
(aliasing call patterns, induction subscripts, non-affine accesses) that
must always pass; entries with any other kind are real findings that
stay red until the underlying bug is fixed.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fuzz.oracle import OracleResult, run_oracle

SCHEMA_VERSION = 1

#: repo-relative default corpus location
DEFAULT_CORPUS_DIR = os.path.join("tests", "fuzz", "corpus")


@dataclass
class CorpusEntry:
    """One persisted finding (or curated regression program)."""

    seed: int
    kind: str                  # oracle property kind, or "regression"
    config: str = ""
    detail: str = ""
    note: str = ""
    features: List[str] = field(default_factory=list)
    sources: Dict[str, str] = field(default_factory=dict)
    annotations: str = ""
    shrunk_sources: Optional[Dict[str, str]] = None
    shrunk_annotations: str = ""
    shrink_steps: int = 0

    # ------------------------------------------------------------------
    def filename(self) -> str:
        return f"{self.kind}-{self.seed}.json"

    def replay_sources(self) -> Dict[str, str]:
        """The smallest program that exhibits (or guards against) the
        finding: the shrunk repro when one exists, else the original."""
        return self.shrunk_sources or self.sources

    def replay_annotations(self) -> str:
        if self.shrunk_sources is not None:
            return self.shrunk_annotations
        return self.annotations

    def replay(self) -> OracleResult:
        return run_oracle(self.replay_sources(), self.replay_annotations())

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "schema": SCHEMA_VERSION,
            "seed": self.seed,
            "kind": self.kind,
            "config": self.config,
            "detail": self.detail,
            "note": self.note,
            "features": list(self.features),
            "sources": dict(self.sources),
            "annotations": self.annotations,
            "shrunk_sources": (dict(self.shrunk_sources)
                               if self.shrunk_sources is not None else None),
            "shrunk_annotations": self.shrunk_annotations,
            "shrink_steps": self.shrink_steps,
        }

    @staticmethod
    def from_dict(data: Dict) -> "CorpusEntry":
        return CorpusEntry(
            seed=int(data["seed"]),
            kind=data["kind"],
            config=data.get("config", ""),
            detail=data.get("detail", ""),
            note=data.get("note", ""),
            features=list(data.get("features", [])),
            sources=dict(data.get("sources", {})),
            annotations=data.get("annotations", ""),
            shrunk_sources=(dict(data["shrunk_sources"])
                            if data.get("shrunk_sources") else None),
            shrunk_annotations=data.get("shrunk_annotations", ""),
            shrink_steps=int(data.get("shrink_steps", 0)),
        )


def save_entry(corpus_dir: str, entry: CorpusEntry) -> str:
    """Write ``entry`` into ``corpus_dir``; returns the file path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, entry.filename())
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_entry(path: str) -> CorpusEntry:
    with open(path, "r", encoding="utf-8") as fh:
        return CorpusEntry.from_dict(json.load(fh))


def load_corpus(corpus_dir: str) -> List[CorpusEntry]:
    """All corpus entries, sorted by filename (deterministic order)."""
    if not os.path.isdir(corpus_dir):
        return []
    entries = []
    for name in sorted(os.listdir(corpus_dir)):
        if name.endswith(".json"):
            entries.append(load_entry(os.path.join(corpus_dir, name)))
    return entries
