"""Shared exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
distinguish tool failures from ordinary Python bugs.  Errors carry an
optional source location (file name + line number) because most of them
originate from processing Fortran source text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class SourceLocation:
    """A position in a Fortran (or annotation) source file."""

    filename: str = "<string>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:  # pragma: no cover - trivial formatting
        if self.column:
            return f"{self.filename}:{self.line}:{self.column}"
        return f"{self.filename}:{self.line}"


class ReproError(Exception):
    """Base class for every error raised by this package."""

    def __init__(self, message: str, location: Optional[SourceLocation] = None,
                 excerpt: Optional[str] = None):
        self.location = location
        self.excerpt = excerpt
        self.bare_message = message
        if location is not None:
            message = f"{location}: {message}"
        super().__init__(message)

    def payload(self) -> dict:
        """Structured form for service responses and diagnostics files.

        Keeps the source excerpt and column that the flat string message
        drops, so a remote client can point at the offending card.
        """
        out: dict = {"kind": type(self).__name__,
                     "message": self.bare_message}
        if self.location is not None:
            out["file"] = self.location.filename
            out["line"] = self.location.line
            out["column"] = self.location.column
        if self.excerpt is not None:
            out["excerpt"] = self.excerpt
        return out


class LexError(ReproError):
    """Raised when source text cannot be tokenized."""


class ParseError(ReproError):
    """Raised when a token stream does not form a valid program."""


class SemanticError(ReproError):
    """Raised for name-resolution and type problems."""


class AnalysisError(ReproError):
    """Raised when a program analysis receives input it cannot model."""


class InlineError(ReproError):
    """Raised when an inlining transformation cannot be applied."""


class ReverseInlineError(InlineError):
    """Raised when a tagged segment cannot be matched back to a call.

    The reverse inliner must *never* silently emit wrong code: failure to
    match is always reported through this exception.
    """


class AnnotationError(ReproError):
    """Raised for malformed or inconsistent subroutine annotations."""


class InterpreterError(ReproError):
    """Raised when the Fortran interpreter hits an unsupported construct
    or a runtime fault (bad subscript, STOP with error, ...)."""


class FortranStop(Exception):
    """Control-flow exception used by the interpreter for the STOP statement.

    Not a :class:`ReproError`: STOP is normal program behaviour.
    """

    def __init__(self, message: str = ""):
        self.message = message
        super().__init__(message)
