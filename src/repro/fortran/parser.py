"""Recursive-descent parser for the fixed-form Fortran 77 subset.

Parsing proceeds in three stages:

1. :func:`repro.fortran.source.read_logical_lines` merges continuations and
   extracts structured comments (OpenMP directives and inline tags);
2. each logical line is *classified* and parsed into a flat item — either a
   complete simple statement, or a structural marker (DO header, IF header,
   ELSE, ENDIF, ENDDO, END, directive);
3. a structurer turns the flat item list into nested
   :class:`~repro.fortran.ast.Stmt` blocks, resolving classic
   label-terminated DO loops (including nests sharing one terminator, the
   ``DO 200 ... DO 200 ... 200 CONTINUE`` idiom from the paper's Figure 2),
   block IFs, OpenMP ``PARALLEL DO`` wrappers and inline-tag blocks.

The expression grammar is standard Fortran 77 precedence; ``NAME(args)``
is parsed as :class:`~repro.fortran.ast.ArrayRef` and later reclassified by
the resolution pass in :mod:`repro.fortran.symbols`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import ParseError, SourceLocation
from repro.fortran import ast
from repro.fortran.lexer import tokenize
from repro.fortran.source import (Directive, LogicalLine, condense,
                                  condense_with_map, read_logical_lines)
from repro.fortran.tokens import DOT_OP_CANONICAL, Token, TokenType

# ---------------------------------------------------------------------------
# Expression parsing
# ---------------------------------------------------------------------------


class _ExprParser:
    """Precedence-climbing expression parser over a token list."""

    def __init__(self, tokens: Sequence[Token], location: SourceLocation):
        self.toks = list(tokens)
        self.i = 0
        self.location = location

    # -- token helpers ------------------------------------------------
    def peek(self) -> Token:
        return self.toks[self.i]

    def next(self) -> Token:
        t = self.toks[self.i]
        self.i += 1
        return t

    def expect(self, ttype: TokenType, value: Optional[str] = None) -> Token:
        t = self.peek()
        if t.type is not ttype or (value is not None and t.value != value):
            raise ParseError(
                f"expected {value or ttype.name}, found {t.value!r}",
                self.location)
        return self.next()

    def at(self, ttype: TokenType, value: Optional[str] = None) -> bool:
        t = self.peek()
        return t.type is ttype and (value is None or t.value == value)

    def at_end(self) -> bool:
        return self.peek().type is TokenType.EOF

    # -- grammar ------------------------------------------------------
    def expression(self) -> ast.Expr:
        return self._equiv()

    def _equiv(self) -> ast.Expr:
        e = self._or()
        while self.at(TokenType.OP, ".EQV.") or self.at(TokenType.OP, ".NEQV."):
            op = self.next().value
            e = ast.BinOp(op, e, self._or())
        return e

    def _or(self) -> ast.Expr:
        e = self._and()
        while self.at(TokenType.OP, ".OR."):
            self.next()
            e = ast.BinOp(".OR.", e, self._and())
        return e

    def _and(self) -> ast.Expr:
        e = self._not()
        while self.at(TokenType.OP, ".AND."):
            self.next()
            e = ast.BinOp(".AND.", e, self._not())
        return e

    def _not(self) -> ast.Expr:
        if self.at(TokenType.OP, ".NOT."):
            self.next()
            return ast.UnOp(".NOT.", self._not())
        return self._relational()

    _REL_OPS = ("==", "/=", "<", "<=", ">", ">=",
                ".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE.")

    def _relational(self) -> ast.Expr:
        e = self._concat()
        if self.peek().type is TokenType.OP and self.peek().value in self._REL_OPS:
            op = DOT_OP_CANONICAL.get(self.next().value) or op_canonical(
                self.toks[self.i - 1].value)
            e = ast.BinOp(op, e, self._concat())
        return e

    def _concat(self) -> ast.Expr:
        e = self._additive()
        while self.at(TokenType.OP, "//"):
            self.next()
            e = ast.BinOp("//", e, self._additive())
        return e

    def _additive(self) -> ast.Expr:
        if self.at(TokenType.OP, "-") or self.at(TokenType.OP, "+"):
            op = self.next().value
            operand = self._multiplicative_chain()
            e: ast.Expr = operand if op == "+" else ast.UnOp("-", operand)
        else:
            e = self._multiplicative_chain()
        while self.at(TokenType.OP, "+") or self.at(TokenType.OP, "-"):
            op = self.next().value
            e = ast.BinOp(op, e, self._multiplicative_chain())
        return e

    def _multiplicative_chain(self) -> ast.Expr:
        e = self._power()
        while self.at(TokenType.OP, "*") or self.at(TokenType.OP, "/"):
            op = self.next().value
            e = ast.BinOp(op, e, self._power())
        return e

    def _power(self) -> ast.Expr:
        base = self._primary()
        if self.at(TokenType.OP, "**"):
            self.next()
            # ** is right-associative; a signed exponent is permitted
            if self.at(TokenType.OP, "-"):
                self.next()
                return ast.BinOp("**", base, ast.UnOp("-", self._power()))
            return ast.BinOp("**", base, self._power())
        return base

    def _primary(self) -> ast.Expr:
        t = self.peek()
        if t.type is TokenType.INT:
            self.next()
            return ast.IntLit(int(t.value))
        if t.type is TokenType.REAL:
            self.next()
            kind = "DOUBLE" if ("D" in t.value or "Q" in t.value) else "REAL"
            value = float(t.value.replace("D", "E").replace("Q", "E"))
            return ast.RealLit(value, kind, t.value)
        if t.type is TokenType.STRING:
            self.next()
            return ast.StringLit(t.value)
        if t.type is TokenType.LOGICAL:
            self.next()
            return ast.LogicalLit(t.value == ".TRUE.")
        if t.type is TokenType.LPAREN:
            self.next()
            e = self.expression()
            self.expect(TokenType.RPAREN)
            return e
        if t.type is TokenType.NAME:
            self.next()
            if self.at(TokenType.LPAREN):
                self.next()
                args = self._subscript_list()
                self.expect(TokenType.RPAREN)
                return ast.ArrayRef(t.value, tuple(args))
            return ast.Var(t.value)
        raise ParseError(f"unexpected token {t.value!r} in expression",
                         self.location)

    def _subscript_list(self) -> List[ast.Expr]:
        """Parse a comma-separated subscript/argument list; each item may be
        a section triplet ``lo:hi[:step]`` (used by annotation-lowered
        code)."""
        items: List[ast.Expr] = []
        if self.at(TokenType.RPAREN):
            return items
        while True:
            items.append(self._subscript_item())
            if self.at(TokenType.COMMA):
                self.next()
                continue
            break
        return items

    def _subscript_item(self) -> ast.Expr:
        lo: Optional[ast.Expr] = None
        if not self.at(TokenType.COLON):
            if self.at(TokenType.OP, "*"):
                # assumed-size marker inside declarations
                self.next()
                return ast.RangeExpr(None, None)
            lo = self.expression()
            if not self.at(TokenType.COLON):
                return lo
        self.expect(TokenType.COLON)
        hi: Optional[ast.Expr] = None
        if not (self.at(TokenType.COMMA) or self.at(TokenType.RPAREN)
                or self.at(TokenType.COLON)):
            if self.at(TokenType.OP, "*"):
                self.next()
            else:
                hi = self.expression()
        step: Optional[ast.Expr] = None
        if self.at(TokenType.COLON):
            self.next()
            step = self.expression()
        return ast.RangeExpr(lo, hi, step)


def op_canonical(op: str) -> str:
    return DOT_OP_CANONICAL.get(op, op)


def parse_expression(text: str,
                     location: Optional[SourceLocation] = None) -> ast.Expr:
    """Parse a standalone expression from (possibly spaced) source text."""
    location = location or SourceLocation()
    p = _ExprParser(tokenize(condense(text), location), location)
    e = p.expression()
    if not p.at_end():
        raise ParseError(f"trailing tokens after expression in {text!r}",
                         location)
    return e


# ---------------------------------------------------------------------------
# Flat items
# ---------------------------------------------------------------------------

@dataclass
class _Flat:
    """One element of the flat statement stream fed to the structurer."""

    kind: str  # stmt | do | if | elseif | else | endif | enddo | end
    #            | omp | tag_begin | tag_end
    label: Optional[int] = None
    stmt: Optional[ast.Stmt] = None
    # do headers
    do_var: str = ""
    do_start: Optional[ast.Expr] = None
    do_stop: Optional[ast.Expr] = None
    do_step: Optional[ast.Expr] = None
    do_term: Optional[int] = None
    # if headers
    cond: Optional[ast.Expr] = None
    # directives
    text: str = ""
    location: SourceLocation = field(default_factory=SourceLocation)


_TYPE_KEYWORDS = {
    "INTEGER": "INTEGER", "REAL": "REAL", "DOUBLEPRECISION": "DOUBLE PRECISION",
    "LOGICAL": "LOGICAL", "CHARACTER": "CHARACTER",
}

_UNIT_HEADER_RE = re.compile(
    r"^(?:(INTEGER|REAL|DOUBLEPRECISION|LOGICAL))?"
    r"(PROGRAM|SUBROUTINE|FUNCTION)([A-Z][A-Z0-9_]*)(\(.*\))?$")

_ASSIGN_RE = re.compile(r"^[A-Z][A-Z0-9_$@]*")

#: length spec after a type keyword or entity: ``*n``, ``*(n)`` or ``*(*)``
#: (the parenthesized forms are CHARACTER-only; ``*(*)`` is the
#: assumed-length dummy, stored as char_len == -1)
_LENGTH_SPEC_RE = re.compile(r"^\*(?:(\d+)|\((\d+)\)|\((\*)\))")


class _StatementClassifier:
    """Parses one condensed logical line into flat items."""

    def __init__(self, filename: str):
        self.filename = filename

    def classify(self, line: LogicalLine) -> List[_Flat]:
        loc = line.location
        out: List[_Flat] = []
        for d in line.leading:
            out.extend(self._directive(d, loc))
        text = condense(line.text)
        if not text:
            return out
        try:
            flat = self._statement(text, line.label, loc)
        except ParseError as e:
            raise _enrich_parse_error(e, line) from e
        if flat is not None:
            out.append(flat)
        return out

    # -- directives ---------------------------------------------------
    def _directive(self, d: Directive, loc: SourceLocation) -> List[_Flat]:
        if d.kind == "omp":
            return [_Flat("omp", text=d.text.upper(), location=loc)]
        body = d.text.strip()
        upper = body.upper()
        if upper.startswith("BEGIN"):
            return [_Flat("tag_begin", text=body[5:].strip(), location=loc)]
        if upper.startswith("END"):
            return [_Flat("tag_end", text=body[3:].strip(), location=loc)]
        raise ParseError(f"unknown inline tag {body!r}", loc)

    # -- statements ---------------------------------------------------
    def _statement(self, text: str, label: Optional[int],
                   loc: SourceLocation) -> Optional[_Flat]:
        # DO header: DO [label[,]] var = e1, e2 [, e3]
        if text.startswith("DO") and _toplevel_comma(text) >= 0:
            m = re.match(r"^DO(\d*),?([A-Z][A-Z0-9_$]*)=", text)
            if m:
                return self._do_header(m, text, label, loc)
        # assignment: NAME [ (subs) ] = expr, with no top-level comma
        if self._looks_like_assignment(text):
            return _Flat("stmt", label=label, location=loc,
                         stmt=self._assignment(text, label, loc))
        return self._keyword_statement(text, label, loc)

    def _looks_like_assignment(self, text: str) -> bool:
        m = _ASSIGN_RE.match(text)
        if not m:
            return False
        i = m.end()
        if i < len(text) and text[i] == "(":
            depth = 0
            while i < len(text):
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
        return i < len(text) and text[i] == "=" and _toplevel_comma(text) < 0

    def _assignment(self, text: str, label: Optional[int],
                    loc: SourceLocation) -> ast.Stmt:
        eq = _toplevel_eq(text)
        target = parse_expression(text[:eq], loc)
        if not isinstance(target, (ast.Var, ast.ArrayRef)):
            raise ParseError(f"bad assignment target in {text!r}", loc)
        value = parse_expression(text[eq + 1:], loc)
        return ast.Assign(target, value, label)

    def _do_header(self, m: "re.Match[str]", text: str,
                   label: Optional[int], loc: SourceLocation) -> _Flat:
        term = int(m.group(1)) if m.group(1) else None
        var = m.group(2)
        rest = text[m.end():]
        parts = _split_toplevel(rest, ",")
        if len(parts) not in (2, 3):
            raise ParseError(f"malformed DO statement {text!r}", loc)
        start = parse_expression(parts[0], loc)
        stop = parse_expression(parts[1], loc)
        step = parse_expression(parts[2], loc) if len(parts) == 3 else None
        return _Flat("do", label=label, do_var=var, do_start=start,
                     do_stop=stop, do_step=step, do_term=term, location=loc)

    def _keyword_statement(self, text: str, label: Optional[int],
                           loc: SourceLocation) -> Optional[_Flat]:
        def stmt(s: ast.Stmt) -> _Flat:
            return _Flat("stmt", label=label, stmt=s, location=loc)

        if text == "END":
            return _Flat("end", label=label, location=loc)
        if text == "ENDDO":
            return _Flat("enddo", label=label, location=loc)
        if text in ("ENDIF", "ELSE"):
            return _Flat("endif" if text == "ENDIF" else "else",
                         label=label, location=loc)
        if text.startswith("ELSEIF"):
            cond, rest = _balanced_paren(text[6:], loc)
            if rest != "THEN":
                raise ParseError(f"malformed ELSE IF {text!r}", loc)
            return _Flat("elseif", label=label,
                         cond=parse_expression(cond, loc), location=loc)
        if text.startswith("IF"):
            cond, rest = _balanced_paren(text[2:], loc)
            cond_expr = parse_expression(cond, loc)
            if rest == "THEN":
                return _Flat("if", label=label, cond=cond_expr, location=loc)
            inner = self._statement(rest, None, loc)
            if inner is None or inner.kind != "stmt":
                raise ParseError(
                    f"unsupported statement in logical IF: {text!r}", loc)
            return stmt(ast.IfBlock([(cond_expr, [inner.stmt])], label))
        if text.startswith("CALL"):
            rest = text[4:]
            m = re.match(r"^([A-Z][A-Z0-9_$]*)", rest)
            if not m:
                raise ParseError(f"malformed CALL {text!r}", loc)
            name = m.group(1)
            args: Tuple[ast.Expr, ...] = ()
            tail = rest[m.end():]
            if tail:
                inner, after = _balanced_paren(tail, loc)
                if after:
                    raise ParseError(f"trailing text after CALL {text!r}", loc)
                if inner:
                    args = tuple(self._call_arg(p, loc)
                                 for p in _split_toplevel(inner, ","))
            return stmt(ast.CallStmt(name, args, label))
        if text.startswith("GOTO"):
            return stmt(self._goto(text[4:], label, loc))
        m = re.match(r"^ASSIGN(\d+)TO([A-Z][A-Z0-9_$]*)$", text)
        if m:
            return stmt(ast.LabelAssign(int(m.group(1)), m.group(2), label))
        if text.startswith("ENTRY"):
            m = re.match(r"^ENTRY([A-Z][A-Z0-9_$]*)(\(.*\))?$", text)
            if not m:
                raise ParseError(f"malformed ENTRY {text!r}", loc)
            params: Tuple[str, ...] = ()
            if m.group(2):
                params = tuple(p for p in m.group(2)[1:-1].split(",") if p)
            return stmt(ast.EntryStmt(m.group(1), params, label))
        if text == "CONTINUE":
            return stmt(ast.Continue(label))
        if text.startswith("RETURN"):
            rest = text[6:]
            alt = parse_expression(rest, loc) if rest else None
            return stmt(ast.Return(label, alt))
        if text.startswith("STOP"):
            rest = text[4:]
            msg = None
            if rest:
                toks = tokenize(rest, loc)
                if toks[0].type is TokenType.STRING:
                    msg = toks[0].value
                else:
                    msg = rest
            return stmt(ast.Stop(msg, label))
        if text.startswith("WRITE") or text.startswith("READ"):
            kind = "WRITE" if text.startswith("WRITE") else "READ"
            control, rest = _balanced_paren(text[len(kind):], loc)
            items = tuple(parse_expression(p, loc)
                          for p in _split_toplevel(rest, ",") if p)
            return stmt(ast.IoStmt(kind, control, items, label))
        if text.startswith("PRINT"):
            parts = _split_toplevel(text[5:], ",")
            control = parts[0]
            items = tuple(parse_expression(p, loc) for p in parts[1:])
            return stmt(ast.IoStmt("PRINT", control, items, label))
        if text.startswith("FORMAT"):
            return None  # formats carry no dependence information
        decl = self._declaration(text, loc)
        if decl is not None:
            f = _Flat("stmt", label=label, location=loc)
            f.kind = "decl"
            f.stmt = decl  # type: ignore[assignment]
            return f
        raise ParseError(f"unrecognized statement {text!r}", loc)

    def _goto(self, rest: str, label: Optional[int],
              loc: SourceLocation) -> ast.Stmt:
        """Dispatch the three GOTO forms from condensed text after 'GOTO'."""
        if rest.isdigit():
            return ast.Goto(int(rest), label)
        if rest.startswith("("):
            inner, after = _balanced_paren(rest, loc)
            targets = self._label_list(inner, loc)
            if not targets or not after:
                raise ParseError(f"malformed computed GOTO {'GOTO' + rest!r}",
                                 loc)
            if after.startswith(","):
                after = after[1:]
            return ast.ComputedGoto(targets, parse_expression(after, loc),
                                    label)
        m = re.match(r"^([A-Z][A-Z0-9_$]*)", rest)
        if not m:
            raise ParseError(f"malformed GOTO {'GOTO' + rest!r}", loc)
        var = m.group(1)
        after = rest[m.end():]
        targets: Tuple[int, ...] = ()
        if after:
            if after.startswith(","):
                after = after[1:]
            inner, trailing = _balanced_paren(after, loc)
            if trailing:
                raise ParseError(
                    f"trailing text after assigned GOTO {'GOTO' + rest!r}",
                    loc)
            targets = self._label_list(inner, loc)
        return ast.AssignedGoto(var, targets, label)

    def _label_list(self, inner: str,
                    loc: SourceLocation) -> Tuple[int, ...]:
        try:
            return tuple(int(p) for p in _split_toplevel(inner, ",") if p)
        except ValueError:
            raise ParseError(f"non-label entry in GOTO label list "
                             f"({inner})", loc) from None

    def _call_arg(self, text: str, loc: SourceLocation) -> ast.Expr:
        m = re.match(r"^\*(\d+)$", text)
        if m:
            return ast.AltReturn(int(m.group(1)))
        return parse_expression(text, loc)

    # -- declarations ---------------------------------------------------
    def _declaration(self, text: str,
                     loc: SourceLocation) -> Optional[ast.Decl]:
        if text.startswith("IMPLICIT"):
            return ast.ImplicitDecl(text[8:])
        if text.startswith("DIMENSION"):
            return ast.DimensionDecl(self._entity_list(text[9:], loc))
        if text.startswith("COMMON"):
            rest = text[6:]
            block = ""
            if rest.startswith("/"):
                j = rest.index("/", 1)
                block = rest[1:j]
                rest = rest[j + 1:]
            return ast.CommonDecl(block, self._entity_list(rest, loc))
        if text.startswith("PARAMETER"):
            inner, after = _balanced_paren(text[9:], loc)
            if after:
                raise ParseError(f"malformed PARAMETER {text!r}", loc)
            pairs: List[Tuple[str, ast.Expr]] = []
            for item in _split_toplevel(inner, ","):
                eq = _toplevel_eq(item)
                pairs.append((item[:eq], parse_expression(item[eq + 1:], loc)))
            return ast.ParameterDecl(pairs)
        if text.startswith("SAVE"):
            rest = text[4:]
            return ast.SaveDecl(_split_toplevel(rest, ",") if rest else [])
        if text.startswith("EXTERNAL"):
            return ast.ExternalDecl(_split_toplevel(text[8:], ","))
        if text.startswith("INTRINSIC"):
            return ast.IntrinsicDecl(_split_toplevel(text[9:], ","))
        if text.startswith("EQUIVALENCE"):
            return self._equivalence(text[11:], loc)
        if text.startswith("DATA"):
            return self._data(text, loc)
        for kw, typename in _TYPE_KEYWORDS.items():
            if text.startswith(kw):
                rest = text[len(kw):]
                char_len = None
                if rest.startswith("*"):
                    m = _LENGTH_SPEC_RE.match(rest)
                    if not m:
                        raise ParseError(f"malformed length in {text!r}", loc)
                    length = -1 if m.group(3) else int(m.group(1)
                                                      or m.group(2))
                    rest = rest[m.end():]
                    if kw == "CHARACTER":
                        char_len = length
                    elif kw == "REAL" and length == 8:
                        typename = "DOUBLE PRECISION"
                    elif kw == "INTEGER":
                        pass  # INTEGER*4/INTEGER*8 both map to INTEGER
                if not rest:
                    return None
                return ast.TypeDecl(typename, self._entity_list(rest, loc),
                                    char_len)
        return None

    def _equivalence(self, rest: str,
                     loc: SourceLocation) -> ast.EquivalenceDecl:
        groups: List[Tuple[ast.Expr, ...]] = []
        while rest:
            if rest.startswith(","):
                rest = rest[1:]
            inner, rest = _balanced_paren(rest, loc)
            refs = tuple(parse_expression(p, loc)
                         for p in _split_toplevel(inner, ",") if p)
            if len(refs) < 2 or not all(
                    isinstance(r, (ast.Var, ast.ArrayRef)) for r in refs):
                raise ParseError(
                    f"EQUIVALENCE group needs two or more variable "
                    f"references ({inner})", loc)
            groups.append(refs)
        if not groups:
            raise ParseError("empty EQUIVALENCE statement", loc)
        return ast.EquivalenceDecl(groups)

    def _entity_list(self, text: str, loc: SourceLocation) -> List[ast.Entity]:
        entities: List[ast.Entity] = []
        for item in _split_toplevel(text, ","):
            if not item:
                continue
            m = re.match(r"^([A-Z][A-Z0-9_$@]*)", item)
            if not m:
                raise ParseError(f"bad declaration entity {item!r}", loc)
            name = m.group(1)
            rest = item[m.end():]
            dims: Optional[Tuple[ast.Dim, ...]] = None
            char_len = None
            if rest.startswith("*"):
                m2 = _LENGTH_SPEC_RE.match(rest)
                if not m2:
                    raise ParseError(f"bad length spec {item!r}", loc)
                char_len = -1 if m2.group(3) else int(m2.group(1)
                                                     or m2.group(2))
                rest = rest[m2.end():]
            if rest.startswith("("):
                inner, after = _balanced_paren(rest, loc)
                if after:
                    raise ParseError(f"bad declaration entity {item!r}", loc)
                dims = tuple(self._dimension(d, loc)
                             for d in _split_toplevel(inner, ","))
            elif rest:
                raise ParseError(f"bad declaration entity {item!r}", loc)
            entities.append(ast.Entity(name, dims, char_len))
        return entities

    def _dimension(self, text: str, loc: SourceLocation) -> ast.Dim:
        parts = _split_toplevel(text, ":")
        if len(parts) == 1:
            if parts[0] == "*":
                return ast.Dim(ast.IntLit(1), None)
            return ast.Dim(ast.IntLit(1), parse_expression(parts[0], loc))
        if len(parts) == 2:
            lower = parse_expression(parts[0], loc)
            if parts[1] == "*":
                return ast.Dim(lower, None)
            return ast.Dim(lower, parse_expression(parts[1], loc))
        raise ParseError(f"bad dimension spec {text!r}", loc)

    def _data(self, text: str, loc: SourceLocation) -> ast.DataDecl:
        """Parse a condensed DATA statement (``text`` includes the DATA
        keyword, so reported offsets are absolute within the statement
        field — the classifier maps them back to card columns)."""
        targets: List[ast.Expr] = []
        values: List[ast.Expr] = []
        i = 4
        n = len(text)
        while i < n:
            j = _find_toplevel(text, "/", i)
            if j < 0:
                raise self._data_error(
                    f"malformed DATA statement {text!r}: missing '/' value "
                    f"list", loc, i)
            for t in _split_toplevel(text[i:j].strip(","), ","):
                if t:
                    targets.extend(self._expand_data_target(t, loc, {}, i))
            k = text.find("/", j + 1)
            if k < 0:
                raise self._data_error(
                    f"malformed DATA statement {text!r}: unterminated value "
                    f"list", loc, j)
            for v in _split_toplevel(text[j + 1:k], ","):
                m = re.match(r"^(\d+)\*(.+)$", v)
                if m:
                    rep = int(m.group(1))
                    val = parse_expression(m.group(2), loc)
                    values.extend([ast.clone(val) for _ in range(rep)])
                else:
                    values.append(parse_expression(v, loc))
            i = k + 1
            if i < n and text[i] == ",":
                i += 1
        # no target/value count check: a whole-array target (DATA A/10*0./)
        # legitimately consumes many values; the interpreter pairs them up
        return ast.DataDecl(targets, values)

    @staticmethod
    def _data_error(message: str, loc: SourceLocation,
                    offset: int) -> ParseError:
        err = ParseError(message, loc)
        # condensed offset of the failing region; the classifier converts
        # it to a card column for the structured diagnostic
        err.condensed_offset = offset  # type: ignore[attr-defined]
        return err

    def _expand_data_target(self, t: str, loc: SourceLocation,
                            env: dict, offset: int) -> List[ast.Expr]:
        """Expand one DATA target item; implied-DO loops over constant
        bounds become explicit element references."""
        if t.startswith("("):
            inner, after = _balanced_paren(t, loc)
            if not after:
                parts = _split_toplevel(inner, ",")
                ci = None
                m = None
                for idx, part in enumerate(parts):
                    m = re.match(r"^([A-Z][A-Z0-9_$]*)=", part)
                    if m and _find_toplevel(part, "=") >= 0:
                        ci = idx
                        break
                if ci is None or ci == 0:
                    raise self._data_error(
                        f"malformed implied-DO in DATA ({inner})", loc,
                        offset)
                ctrl = parts[ci:]
                if len(ctrl) not in (2, 3):
                    raise self._data_error(
                        f"implied-DO in DATA needs 2 or 3 control "
                        f"expressions ({inner})", loc, offset)
                var = m.group(1)
                start = self._const_int(ctrl[0][m.end():], loc, env, offset)
                stop = self._const_int(ctrl[1], loc, env, offset)
                step = (self._const_int(ctrl[2], loc, env, offset)
                        if len(ctrl) == 3 else 1)
                if step == 0:
                    raise self._data_error(
                        "implied-DO in DATA has step 0", loc, offset)
                out: List[ast.Expr] = []
                iv = start
                while (iv <= stop) if step > 0 else (iv >= stop):
                    env2 = dict(env)
                    env2[var] = iv
                    for item in parts[:ci]:
                        out.extend(self._expand_data_target(item, loc, env2,
                                                            offset))
                    iv += step
                return out
        e = parse_expression(t, loc)
        if env:
            e = _subst_const(e, env)
        return [e]

    def _const_int(self, text: str, loc: SourceLocation, env: dict,
                   offset: int) -> int:
        try:
            e = _subst_const(parse_expression(text, loc), env)
        except ParseError:
            e = None
        if not isinstance(e, ast.IntLit):
            raise self._data_error(
                f"implied-DO bound {text!r} in DATA is not a constant", loc,
                offset)
        return e.value


def _enrich_parse_error(e: ParseError, line: LogicalLine) -> ParseError:
    """Attach the offending source excerpt and a card column to a
    classification error (service responses render ``payload()``, which
    would otherwise lose the source line entirely)."""
    if e.excerpt is not None:
        return e
    _, cmap = condense_with_map(line.text)
    offset = getattr(e, "condensed_offset", 0)
    if cmap:
        offset = min(max(offset, 0), len(cmap) - 1)
        column = 7 + cmap[offset]
    else:
        column = 7
    loc = e.location or line.location
    enriched = ParseError(
        e.bare_message,
        SourceLocation(loc.filename, loc.line, column),
        excerpt=line.text.rstrip())
    return enriched


def _subst_const(e: ast.Expr, env: dict) -> ast.Expr:
    """Substitute implied-DO variables with their integer values and fold
    the resulting constant integer arithmetic."""

    def fn(x: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(x, ast.Var) and x.name in env:
            return ast.IntLit(env[x.name])
        if isinstance(x, ast.UnOp) and x.op == "-" \
                and isinstance(x.operand, ast.IntLit):
            return ast.IntLit(-x.operand.value)
        if isinstance(x, ast.BinOp) and isinstance(x.left, ast.IntLit) \
                and isinstance(x.right, ast.IntLit):
            lv, rv = x.left.value, x.right.value
            if x.op == "+":
                return ast.IntLit(lv + rv)
            if x.op == "-":
                return ast.IntLit(lv - rv)
            if x.op == "*":
                return ast.IntLit(lv * rv)
            if x.op == "/" and rv != 0:
                # Fortran integer division truncates toward zero
                return ast.IntLit(int(lv / rv))
        return None

    return ast.map_expr(e, fn)


# ---------------------------------------------------------------------------
# top-level-character scanning helpers (operate on condensed text)
# ---------------------------------------------------------------------------

def _find_toplevel(text: str, ch: str, start: int = 0) -> int:
    depth = 0
    in_quote: Optional[str] = None
    for i in range(start, len(text)):
        c = text[i]
        if in_quote:
            if c == in_quote:
                in_quote = None
        elif c in ("'", '"'):
            in_quote = c
        elif c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
        elif depth == 0 and c == ch:
            return i
    return -1


def _toplevel_comma(text: str) -> int:
    return _find_toplevel(text, ",")


def _toplevel_eq(text: str) -> int:
    eq = _find_toplevel(text, "=")
    if eq < 0:
        raise ParseError(f"expected '=' in {text!r}")
    return eq


def _split_toplevel(text: str, sep: str) -> List[str]:
    parts: List[str] = []
    depth = 0
    in_quote: Optional[str] = None
    cur: List[str] = []
    for c in text:
        if in_quote:
            cur.append(c)
            if c == in_quote:
                in_quote = None
        elif c in ("'", '"'):
            in_quote = c
            cur.append(c)
        elif c == "(":
            depth += 1
            cur.append(c)
        elif c == ")":
            depth -= 1
            cur.append(c)
        elif depth == 0 and c == sep:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def _balanced_paren(text: str, loc: SourceLocation) -> Tuple[str, str]:
    """``text`` must start with '('; return (inner, rest-after-close)."""
    if not text.startswith("("):
        raise ParseError(f"expected '(' in {text!r}", loc)
    depth = 0
    for i, c in enumerate(text):
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[1:i], text[i + 1:]
    raise ParseError(f"unbalanced parentheses in {text!r}", loc)


# ---------------------------------------------------------------------------
# Structurer
# ---------------------------------------------------------------------------

class _Structurer:
    """Builds nested statement blocks from the flat item stream."""

    def __init__(self, items: List[_Flat]):
        self.items = items

    def build(self, lo: int, hi: int) -> List[ast.Stmt]:
        out: List[ast.Stmt] = []
        i = lo
        while i < hi:
            stmt, i = self._one(i, hi)
            if stmt is not None:
                out.append(stmt)
        return out

    def _one(self, i: int, hi: int) -> Tuple[Optional[ast.Stmt], int]:
        it = self.items[i]
        if it.kind == "stmt":
            return it.stmt, i + 1
        if it.kind == "do":
            return self._do(i, hi)
        if it.kind == "if":
            return self._if(i, hi)
        if it.kind == "omp":
            return self._omp(i, hi)
        if it.kind == "tag_begin":
            return self._tagged(i, hi)
        if it.kind == "tag_end":
            raise ParseError(f"unmatched inline END tag {it.text!r}",
                             it.location)
        if it.kind in ("endif", "else", "elseif", "enddo", "end"):
            raise ParseError(f"unexpected {it.kind.upper()}", it.location)
        raise ParseError(f"unexpected item {it.kind}", it.location)

    def _do(self, i: int, hi: int) -> Tuple[ast.Stmt, int]:
        it = self.items[i]
        if it.do_term is not None:
            j = self._find_label(i + 1, hi, it.do_term)
            body = self.build(i + 1, j + 1)  # terminator is part of the body
            loop = ast.DoLoop(it.do_var, it.do_start, it.do_stop, it.do_step,
                              body, it.label, it.do_term)
            return loop, j + 1
        j = self._match_enddo(i + 1, hi)
        body = self.build(i + 1, j)
        loop = ast.DoLoop(it.do_var, it.do_start, it.do_stop, it.do_step,
                          body, it.label, None)
        return loop, j + 1

    def _find_label(self, lo: int, hi: int, label: int) -> int:
        for j in range(lo, hi):
            if self.items[j].label == label and self.items[j].kind == "stmt":
                return j
        raise ParseError(f"DO terminator label {label} not found",
                         self.items[lo - 1].location)

    def _match_enddo(self, lo: int, hi: int) -> int:
        depth = 0
        for j in range(lo, hi):
            it = self.items[j]
            if it.kind == "do" and it.do_term is None:
                depth += 1
            elif it.kind == "enddo":
                if depth == 0:
                    return j
                depth -= 1
        raise ParseError("missing ENDDO", self.items[lo - 1].location)

    def _if(self, i: int, hi: int) -> Tuple[ast.Stmt, int]:
        header = self.items[i]
        arms: List[Tuple[Optional[ast.Expr], List[ast.Stmt]]] = []
        cond: Optional[ast.Expr] = header.cond
        arm_start = i + 1
        depth = 0
        j = i + 1
        while j < hi:
            it = self.items[j]
            if it.kind == "if":
                depth += 1
            elif it.kind == "endif":
                if depth == 0:
                    arms.append((cond, self.build(arm_start, j)))
                    return ast.IfBlock(arms, header.label), j + 1
                depth -= 1
            elif depth == 0 and it.kind == "elseif":
                arms.append((cond, self.build(arm_start, j)))
                cond = it.cond
                arm_start = j + 1
            elif depth == 0 and it.kind == "else":
                arms.append((cond, self.build(arm_start, j)))
                cond = None
                arm_start = j + 1
            j += 1
        raise ParseError("missing ENDIF", header.location)

    def _omp(self, i: int, hi: int) -> Tuple[Optional[ast.Stmt], int]:
        it = self.items[i]
        text = it.text.replace(" ", "")
        if text.startswith("ENDPARALLELDO") or text.startswith("ENDDO") \
                or text.startswith("ENDPARALLEL"):
            return None, i + 1
        if not (text.startswith("PARALLELDO") or text.startswith("DO")
                or text.startswith("PARALLEL")):
            raise ParseError(f"unsupported OpenMP directive {it.text!r}",
                             it.location)
        private, reductions, schedule = _parse_omp_clauses(it.text)
        # the directive governs the next DO loop in the stream; intervening
        # companion directives (e.g. separate PARALLEL then DO) are merged
        j = i + 1
        while j < hi and self.items[j].kind == "omp":
            p2, r2, s2 = _parse_omp_clauses(self.items[j].text)
            private += p2
            reductions += r2
            schedule = schedule or s2
            j += 1
        if j >= hi or self.items[j].kind != "do":
            raise ParseError("OpenMP PARALLEL DO directive not followed by "
                             "a DO loop", it.location)
        loop_stmt, nxt = self._do(j, hi)
        assert isinstance(loop_stmt, ast.DoLoop)
        return ast.OmpParallelDo(loop_stmt, tuple(private),
                                 tuple(reductions), schedule), nxt

    def _tagged(self, i: int, hi: int) -> Tuple[ast.Stmt, int]:
        it = self.items[i]
        callee, site_id, actuals = _parse_tag_begin(it.text, it.location)
        depth = 0
        for j in range(i + 1, hi):
            item = self.items[j]
            if item.kind == "tag_begin":
                depth += 1
            elif item.kind == "tag_end":
                if depth == 0:
                    end_id = int(item.text.split()[0])
                    if end_id != site_id:
                        raise ParseError(
                            f"inline tag mismatch: BEGIN {site_id} closed by "
                            f"END {end_id}", item.location)
                    body = self.build(i + 1, j)
                    return ast.TaggedBlock(callee, site_id, actuals, body,
                                           it.label), j + 1
                depth -= 1
        raise ParseError(f"missing inline END tag for site {site_id}",
                         it.location)


def _parse_omp_clauses(text: str):
    private: List[str] = []
    reductions: List[Tuple[str, str]] = []
    schedule: Optional[str] = None
    upper = condense(text)
    for m in re.finditer(r"PRIVATE\(([^)]*)\)", upper):
        private.extend(x for x in m.group(1).split(",") if x)
    for m in re.finditer(r"REDUCTION\(([^:]+):([^)]*)\)", upper):
        op = m.group(1)
        for v in m.group(2).split(","):
            if v:
                reductions.append((op, v))
    m = re.search(r"SCHEDULE\(([^)]*)\)", upper)
    if m:
        schedule = m.group(1)
    return private, reductions, schedule


def _parse_tag_begin(text: str, loc: SourceLocation):
    """Parse ``<callee> <site_id> [actual|actual|...]``."""
    parts = text.split(None, 2)
    if len(parts) < 2:
        raise ParseError(f"malformed inline BEGIN tag {text!r}", loc)
    callee = parts[0].upper()
    site_id = int(parts[1])
    actuals: Tuple[ast.Expr, ...] = ()
    if len(parts) == 3 and parts[2].strip():
        actuals = tuple(parse_expression(a, loc)
                        for a in parts[2].split("|") if a.strip())
    return callee, site_id, actuals


# ---------------------------------------------------------------------------
# Program-unit assembly
# ---------------------------------------------------------------------------

def parse_source(text: str, filename: str = "<string>") -> ast.SourceFile:
    """Parse fixed-form source text into a :class:`~repro.fortran.ast.SourceFile`."""
    lines = read_logical_lines(text, filename)
    classifier = _StatementClassifier(filename)
    units: List[ast.ProgramUnit] = []
    current_header: Optional[Tuple[str, str, List[str], str]] = None
    current_items: List[_Flat] = []
    header_loc = SourceLocation(filename, 0)

    def finish_unit() -> None:
        nonlocal current_header, current_items
        if current_header is None:
            if current_items:
                raise ParseError("statements outside any program unit",
                                 current_items[0].location)
            return
        kind, name, params, result_type = current_header
        decls: List[ast.Decl] = []
        body_items: List[_Flat] = []
        for it in current_items:
            if it.kind == "decl":
                decls.append(it.stmt)  # type: ignore[arg-type]
            else:
                body_items.append(it)
        body = _Structurer(body_items).build(0, len(body_items))
        units.append(ast.ProgramUnit(kind, name, params, decls, body,
                                     result_type))
        current_header = None
        current_items = []

    for line in lines:
        text_c = condense(line.text)
        m = _UNIT_HEADER_RE.match(text_c) if text_c else None
        if m and m.group(2) in ("PROGRAM", "SUBROUTINE", "FUNCTION"):
            finish_unit()
            rtype = _TYPE_KEYWORDS.get(m.group(1) or "", "")
            kind = m.group(2)
            name = m.group(3)
            params: List[str] = []
            if m.group(4):
                inner = m.group(4)[1:-1]
                params = [p for p in inner.split(",") if p]
            current_header = (kind, name, params, rtype)
            header_loc = line.location
            # directives before a unit header are not meaningful; drop them
            continue
        flats = classifier.classify(line)
        for f in flats:
            if f.kind == "end":
                finish_unit()
            else:
                if current_header is None and f.kind in ("omp", "tag_begin",
                                                         "tag_end"):
                    continue  # stray trailing directives
                if current_header is None:
                    raise ParseError("statement outside any program unit",
                                     f.location)
                current_items.append(f)
    if current_header is not None:
        raise ParseError("missing END for final program unit", header_loc)
    return ast.SourceFile(units, filename)
