"""Fixed-form Fortran 77 source handling.

Fixed form rules implemented here:

* columns 1-5: statement label (digits);
* column 6: any non-blank, non-zero character marks a continuation line;
* columns 7-72: the statement field (columns beyond 72 are ignored);
* a ``C``, ``c`` or ``*`` in column 1 marks a comment line; ``!`` starts an
  inline comment in our (slightly extended) dialect;
* blank lines are ignored.

Two kinds of *structured comments* are preserved rather than discarded,
because downstream passes depend on them:

* OpenMP directives: lines whose comment body starts with ``$OMP``
  (i.e. ``C$OMP`` / ``!$OMP``), and
* inline tags produced by the annotation-based inliner: comment bodies
  starting with ``@INLINE`` (``C@INLINE BEGIN ...`` / ``C@INLINE END ...``).

The reader produces :class:`LogicalLine` objects: label, joined statement
text (continuations merged), attached directives, and the originating line
number (for diagnostics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import LexError, SourceLocation

#: maximum significant column of the statement field
STATEMENT_FIELD_END = 72


@dataclass
class Directive:
    """A structured comment that must survive parsing and unparsing.

    ``kind`` is ``"omp"`` for OpenMP directives and ``"tag"`` for inline
    annotation tags.  ``text`` is the body with the sentinel stripped, e.g.
    ``"PARALLEL DO"`` or ``"BEGIN MATMLT 3 PP(1,1,KS-1)|PHIT(1,1)|..."``.
    """

    kind: str
    text: str
    line: int = 0


@dataclass
class LogicalLine:
    """One logical Fortran statement after continuation merging."""

    label: Optional[int]
    text: str
    line: int  # first physical line number (1-based)
    filename: str = "<string>"
    #: directives encountered immediately before this statement
    leading: List[Directive] = field(default_factory=list)

    @property
    def location(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line)


def _classify_comment(body: str, line_no: int) -> Optional[Directive]:
    """Return a Directive if a comment body is structured, else None."""
    stripped = body.strip()
    upper = stripped.upper()
    if upper.startswith("$OMP"):
        return Directive("omp", stripped[4:].strip(), line_no)
    if upper.startswith("@INLINE"):
        return Directive("tag", stripped[7:].strip(), line_no)
    return None


def read_logical_lines(text: str, filename: str = "<string>") -> List[LogicalLine]:
    """Split fixed-form source text into logical lines.

    Continuation lines are appended to the statement field of the previous
    logical line.  Structured comments are attached to the *following*
    statement as ``leading`` directives (matching how OpenMP directives
    annotate the loop that follows them); structured comments at end of
    file are attached to a synthetic empty logical line so they are not
    lost.
    """
    logical: List[LogicalLine] = []
    pending: List[Directive] = []
    current: Optional[LogicalLine] = None

    def flush() -> None:
        nonlocal current
        if current is not None:
            current.text = current.text.rstrip()
            logical.append(current)
            current = None

    for idx, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        first = line[0] if line else " "
        # full-line comments
        if first in ("C", "c", "*", "!"):
            directive = _classify_comment(line[1:], idx)
            if directive is not None:
                flush()
                pending.append(directive)
            continue
        # strip inline '!' comments (outside character literals)
        line = _strip_inline_comment(line)
        if not line.strip():
            continue
        if len(line) < 6:
            line = line.ljust(6)
        label_field = line[0:5]
        cont_field = line[5]
        stmt_field = line[6:STATEMENT_FIELD_END]
        if cont_field not in (" ", "0"):
            # continuation line
            if current is None:
                raise LexError(
                    "continuation line with no statement to continue",
                    SourceLocation(filename, idx),
                )
            if pending:
                raise LexError(
                    "directive between a statement and its continuation",
                    SourceLocation(filename, idx),
                )
            current.text += stmt_field.rstrip()
            continue
        flush()
        label: Optional[int] = None
        if label_field.strip():
            if not label_field.strip().isdigit():
                raise LexError(
                    f"bad statement label {label_field.strip()!r}",
                    SourceLocation(filename, idx),
                )
            label = int(label_field.strip())
        current = LogicalLine(
            label=label,
            text=stmt_field.rstrip(),
            line=idx,
            filename=filename,
            leading=pending,
        )
        pending = []
    flush()
    if pending:
        # trailing directives: attach to a synthetic end-marker line
        logical.append(
            LogicalLine(label=None, text="", line=pending[0].line,
                        filename=filename, leading=pending)
        )
    return logical


def _strip_inline_comment(line: str) -> str:
    """Remove a trailing ``! ...`` comment, respecting quoted strings."""
    in_quote: Optional[str] = None
    for i, ch in enumerate(line):
        if in_quote:
            if ch == in_quote:
                in_quote = None
        elif ch in ("'", '"'):
            in_quote = ch
        elif ch == "!" and i != 0:
            return line[:i]
    return line


def condense(stmt: str) -> str:
    """Remove blanks and upper-case a statement field, outside strings.

    Fixed-form Fortran treats blanks in the statement field as
    insignificant; the classic implementation strategy (used by PCF-era
    compilers, including Polaris) is to condense the statement before
    classification and tokenization.  Quoted character literals keep their
    spacing and case.
    """
    out: List[str] = []
    in_quote: Optional[str] = None
    for ch in stmt:
        if in_quote:
            out.append(ch)
            if ch == in_quote:
                in_quote = None
        elif ch in ("'", '"'):
            in_quote = ch
            out.append(ch)
        elif ch == " " or ch == "\t":
            continue
        else:
            out.append(ch.upper())
    if in_quote:
        raise LexError(f"unterminated character literal in {stmt!r}")
    return "".join(out)


def condense_with_map(stmt: str) -> tuple:
    """Like :func:`condense`, but also map condensed indices back to the
    statement-field offsets they came from.

    Returns ``(condensed, indices)`` where ``indices[i]`` is the 0-based
    offset into ``stmt`` of the character that produced ``condensed[i]``.
    The fixed-form card column is ``7 + offset`` (the statement field
    starts at column 7), which is what tolerant-frontend diagnostics
    report.  Unterminated literals fall back to treating the tail as
    ordinary text instead of raising, so the map is usable during error
    recovery.
    """
    out: List[str] = []
    indices: List[int] = []
    in_quote: Optional[str] = None
    for i, ch in enumerate(stmt):
        if in_quote:
            out.append(ch)
            indices.append(i)
            if ch == in_quote:
                in_quote = None
        elif ch in ("'", '"'):
            in_quote = ch
            out.append(ch)
            indices.append(i)
        elif ch == " " or ch == "\t":
            continue
        else:
            out.append(ch.upper())
            indices.append(i)
    return "".join(out), indices
