"""Symbol tables, implicit typing and name resolution.

Fortran 77 has no reserved words and no syntactic distinction between
``A(I)`` as an array element and as a function call; resolution therefore
needs declarations.  :func:`build_symbol_table` collects everything a unit
declares (types, dimensions, COMMON membership, PARAMETER constants,
formals) and applies the implicit typing rules (I-N => INTEGER, otherwise
REAL) for undeclared names.

:func:`resolve_calls` is the whole-file pass that rewrites
:class:`~repro.fortran.ast.ArrayRef` nodes into
:class:`~repro.fortran.ast.FuncRef` when the name is an intrinsic or a known
user function, which every later analysis relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import SemanticError
from repro.fortran import ast
from repro.fortran.intrinsics import INTEGER_RESULT, is_intrinsic


@dataclass
class VarInfo:
    """Everything known statically about one name in one program unit."""

    name: str
    typename: str  # INTEGER | REAL | DOUBLE PRECISION | LOGICAL | CHARACTER
    dims: Optional[Tuple[ast.Dim, ...]] = None
    is_formal: bool = False
    common_block: Optional[str] = None
    #: position (0-based, in declaration order) within its COMMON block
    common_index: int = -1
    parameter_value: Optional[ast.Expr] = None
    char_len: Optional[int] = None
    saved: bool = False
    explicit_type: bool = False
    #: name appears in an EQUIVALENCE group (storage-associated with other
    #: names, so per-array dependence reasoning is unsound for it)
    equivalenced: bool = False

    @property
    def is_array(self) -> bool:
        return self.dims is not None

    @property
    def is_parameter(self) -> bool:
        return self.parameter_value is not None

    @property
    def is_assumed_size(self) -> bool:
        return bool(self.dims) and self.dims[-1].upper is None


def implicit_type(name: str) -> str:
    return "INTEGER" if name[0] in "IJKLMN" else "REAL"


@dataclass
class SymbolTable:
    unit_name: str
    variables: Dict[str, VarInfo] = field(default_factory=dict)
    #: COMMON block name -> ordered entity names
    common_blocks: Dict[str, List[str]] = field(default_factory=dict)
    implicit_none: bool = False
    formals: List[str] = field(default_factory=list)

    def info(self, name: str) -> VarInfo:
        """Return (creating on first use, per implicit typing) the info for
        ``name``."""
        name = name.upper()
        if name not in self.variables:
            if self.implicit_none:
                raise SemanticError(
                    f"{self.unit_name}: {name} used without declaration "
                    f"under IMPLICIT NONE")
            self.variables[name] = VarInfo(name, implicit_type(name))
        return self.variables[name]

    def declared(self, name: str) -> Optional[VarInfo]:
        return self.variables.get(name.upper())

    def is_array(self, name: str) -> bool:
        v = self.variables.get(name.upper())
        return v is not None and v.is_array


def build_symbol_table(unit: ast.ProgramUnit) -> SymbolTable:
    """Collect declarations of one program unit into a SymbolTable."""
    table = SymbolTable(unit.name)
    table.formals = [p.upper() for p in unit.params]

    def ensure(name: str) -> VarInfo:
        name = name.upper()
        if name not in table.variables:
            table.variables[name] = VarInfo(name, implicit_type(name))
        return table.variables[name]

    def apply_entity(e: ast.Entity, typename: Optional[str] = None,
                     default_len: Optional[int] = None) -> VarInfo:
        v = ensure(e.name)
        if typename is not None:
            v.typename = typename
            v.explicit_type = True
        if e.dims is not None:
            if v.dims is not None and v.dims != e.dims:
                raise SemanticError(
                    f"{unit.name}: conflicting dimensions for {e.name}")
            v.dims = e.dims
        if e.char_len is not None:
            v.char_len = e.char_len
        elif default_len is not None and v.char_len is None:
            v.char_len = default_len
        return v

    for d in unit.decls:
        if isinstance(d, ast.ImplicitDecl):
            if d.text.strip().upper() == "NONE":
                table.implicit_none = True
        elif isinstance(d, ast.TypeDecl):
            for e in d.entities:
                apply_entity(e, d.typename, d.char_len)
        elif isinstance(d, ast.DimensionDecl):
            for e in d.entities:
                apply_entity(e)
        elif isinstance(d, ast.CommonDecl):
            block = d.block.upper()
            names = table.common_blocks.setdefault(block, [])
            for e in d.entities:
                v = apply_entity(e)
                v.common_block = block
                v.common_index = len(names)
                names.append(v.name)
        elif isinstance(d, ast.ParameterDecl):
            for name, expr in d.assignments:
                v = ensure(name)
                v.parameter_value = expr
        elif isinstance(d, ast.SaveDecl):
            for name in d.names:
                ensure(name).saved = True
        elif isinstance(d, ast.EquivalenceDecl):
            for group in d.groups:
                for ref in group:
                    if isinstance(ref, (ast.Var, ast.ArrayRef)):
                        ensure(ref.name).equivalenced = True
        # EXTERNAL/INTRINSIC/DATA decls do not affect variable typing here
    for p in table.formals:
        v = ensure(p)
        v.is_formal = True
    if unit.kind == "FUNCTION":
        v = ensure(unit.name)
        if unit.result_type:
            v.typename = unit.result_type
            v.explicit_type = True
    return table


def externals_of(unit: ast.ProgramUnit) -> Set[str]:
    names: Set[str] = set()
    for d in unit.find_decls(ast.ExternalDecl):
        names.update(n.upper() for n in d.names)
    return names


def collect_procedures(source: ast.SourceFile) -> Dict[str, ast.ProgramUnit]:
    """Map procedure name -> defining unit for subroutines and functions."""
    return {u.name.upper(): u for u in source.units
            if u.kind in ("SUBROUTINE", "FUNCTION")}


def function_names(source: ast.SourceFile) -> Set[str]:
    return {u.name.upper() for u in source.units if u.kind == "FUNCTION"}


def resolve_calls(source: ast.SourceFile,
                  extra_functions: Optional[Set[str]] = None) -> ast.SourceFile:
    """Rewrite ``NAME(args)`` references into :class:`FuncRef` in place.

    A parenthesized name reference is a function call exactly when the name
    is not a declared array in the enclosing unit and is either an
    intrinsic, a FUNCTION unit in this file, an EXTERNAL name, or a caller-
    supplied extra (for functions living in other files of a multi-file
    application).
    """
    funcs = function_names(source) | (extra_functions or set())
    for unit in source.units:
        table = build_symbol_table(unit)
        ext = externals_of(unit)

        def rewrite(e: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(e, ast.ArrayRef):
                name = e.name.upper()
                if table.is_array(name):
                    return None
                if name in funcs or name in ext or is_intrinsic(name):
                    return ast.FuncRef(name, e.subs)
                # undeclared paren reference: Fortran would call this an
                # implicitly-typed statement function or an error; in our
                # subset it must be an array declared via DIMENSION/type
                if table.declared(name) is None and not table.implicit_none:
                    # treat as external function reference (linker resolves)
                    return ast.FuncRef(name, e.subs)
            return None

        unit.body = ast.map_stmt_exprs(unit.body, rewrite)
    return source


def expr_type(e: ast.Expr, table: SymbolTable) -> str:
    """Compute the static type of an expression (best effort)."""
    if isinstance(e, ast.IntLit):
        return "INTEGER"
    if isinstance(e, ast.RealLit):
        return "DOUBLE PRECISION" if e.kind == "DOUBLE" else "REAL"
    if isinstance(e, ast.StringLit):
        return "CHARACTER"
    if isinstance(e, ast.LogicalLit):
        return "LOGICAL"
    if isinstance(e, ast.Var):
        return table.info(e.name).typename
    if isinstance(e, ast.ArrayRef):
        return table.info(e.name).typename
    if isinstance(e, ast.FuncRef):
        name = e.name.upper()
        if is_intrinsic(name):
            if name in INTEGER_RESULT:
                return "INTEGER"
            if name.startswith("D"):
                return "DOUBLE PRECISION"
            # generic intrinsics inherit their argument type
            if e.args:
                return expr_type(e.args[0], table)
            return "REAL"
        return implicit_type(name)
    if isinstance(e, ast.UnOp):
        if e.op == ".NOT.":
            return "LOGICAL"
        return expr_type(e.operand, table)
    if isinstance(e, ast.BinOp):
        if e.op in ("==", "/=", "<", "<=", ">", ">=",
                    ".AND.", ".OR.", ".EQV.", ".NEQV."):
            return "LOGICAL"
        lt = expr_type(e.left, table)
        rt = expr_type(e.right, table)
        for t in ("DOUBLE PRECISION", "REAL", "INTEGER"):
            if lt == t or rt == t:
                return t
        return lt
    return "REAL"
