"""Catalogue of the Fortran 77 intrinsic functions the subset supports.

The table drives three consumers:

* the resolution pass (:mod:`repro.fortran.symbols`), which turns
  ``NAME(args)`` into :class:`~repro.fortran.ast.FuncRef` for these names;
* the dependence analyzer, which treats intrinsic calls as pure;
* the interpreter, which binds each name to a Python implementation
  (:mod:`repro.runtime.intrinsics`).
"""

from __future__ import annotations

from typing import FrozenSet

#: every intrinsic name recognized by the frontend (all are pure)
INTRINSIC_NAMES: FrozenSet[str] = frozenset({
    # type conversion
    "INT", "IFIX", "IDINT", "REAL", "FLOAT", "SNGL", "DBLE", "NINT", "IDNINT",
    # truncation / remainder
    "AINT", "ANINT", "MOD", "AMOD", "DMOD",
    # sign / magnitude
    "ABS", "IABS", "DABS", "SIGN", "ISIGN", "DSIGN", "DIM", "IDIM", "DDIM",
    # extrema (variadic)
    "MAX", "MAX0", "AMAX1", "DMAX1", "AMAX0", "MAX1",
    "MIN", "MIN0", "AMIN1", "DMIN1", "AMIN0", "MIN1",
    # algebraic / transcendental
    "SQRT", "DSQRT", "EXP", "DEXP", "LOG", "ALOG", "DLOG",
    "LOG10", "ALOG10", "DLOG10",
    "SIN", "DSIN", "COS", "DCOS", "TAN", "DTAN",
    "ASIN", "DASIN", "ACOS", "DACOS", "ATAN", "DATAN", "ATAN2", "DATAN2",
    "SINH", "DSINH", "COSH", "DCOSH", "TANH", "DTANH",
    # double-of products
    "DPROD",
    # character (minimal)
    "LEN", "ICHAR", "CHAR",
})

#: intrinsics whose result is INTEGER regardless of argument types
INTEGER_RESULT: FrozenSet[str] = frozenset({
    "INT", "IFIX", "IDINT", "NINT", "IDNINT", "IABS", "ISIGN", "IDIM",
    "MOD", "MAX0", "MIN0", "LEN", "ICHAR", "MAX1", "MIN1",
})


def is_intrinsic(name: str) -> bool:
    return name.upper() in INTRINSIC_NAMES
