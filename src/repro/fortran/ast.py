"""Typed AST for the Fortran 77 subset.

All nodes are frozen-free dataclasses with structural equality, which the
reverse inliner's pattern matcher and the dependence analyzer's expression
comparisons rely on.  ``copy.deepcopy`` is the supported cloning mechanism
(see :func:`clone`).

Expression references to a name with an argument list are parsed as
:class:`ArrayRef`; the resolution pass in :mod:`repro.fortran.symbols`
rewrites them into :class:`FuncRef` when the name denotes an intrinsic or a
user function.  Code that runs after resolution may therefore assume the
distinction is accurate.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expressions."""

    __slots__ = ()


@dataclass(eq=True)
class IntLit(Expr):
    value: int


@dataclass(eq=True)
class RealLit(Expr):
    value: float
    #: 'REAL' or 'DOUBLE' — controls the D/E exponent letter when unparsing
    kind: str = "REAL"
    #: original spelling, kept so unparse(parse(x)) == x for literals; a
    #: spelling cache only, so it does not participate in equality
    text: Optional[str] = field(default=None, compare=False)


@dataclass(eq=True)
class StringLit(Expr):
    value: str


@dataclass(eq=True)
class LogicalLit(Expr):
    value: bool


@dataclass(eq=True)
class Var(Expr):
    name: str


@dataclass(eq=True)
class ArrayRef(Expr):
    name: str
    subs: Tuple[Expr, ...]


@dataclass(eq=True)
class FuncRef(Expr):
    name: str
    args: Tuple[Expr, ...]


@dataclass(eq=True)
class BinOp(Expr):
    """Binary operation.  ``op`` uses canonical spellings:
    ``+ - * / ** // == /= < <= > >= .AND. .OR. .EQV. .NEQV.``"""

    op: str
    left: Expr
    right: Expr


@dataclass(eq=True)
class UnOp(Expr):
    """Unary operation: ``-``, ``+`` or ``.NOT.``."""

    op: str
    operand: Expr


@dataclass(eq=True)
class AltReturn(Expr):
    """An alternate-return actual argument ``*label`` in a CALL.

    Only legal in CALL argument lists; the matching formal is ``*`` and a
    ``RETURN n`` in the callee jumps to the n-th such label.  Dependence
    analysis treats a call carrying one as opaque control flow.
    """

    target: int


@dataclass(eq=True)
class RangeExpr(Expr):
    """An array-section triplet ``lo:hi[:step]``.

    Fortran 77 proper has no sections; this node appears only in subscript
    positions of code generated from annotations (the Fig-12 language allows
    Fortran 90 regions) before region lowering expands it into loops, and in
    DATA-style implied bounds.
    """

    lo: Optional[Expr]
    hi: Optional[Expr]
    step: Optional[Expr] = None


#: expression node types whose children are themselves expressions
_EXPR_CHILD_FIELDS = {
    ArrayRef: ("subs",),
    FuncRef: ("args",),
    BinOp: ("left", "right"),
    UnOp: ("operand",),
    RangeExpr: ("lo", "hi", "step"),
}


def walk_expr(e: Expr) -> Iterator[Expr]:
    """Yield ``e`` and every sub-expression, preorder."""
    yield e
    fields = _EXPR_CHILD_FIELDS.get(type(e))
    if not fields:
        return
    for name in fields:
        child = getattr(e, name)
        if child is None:
            continue
        if isinstance(child, tuple):
            for sub in child:
                yield from walk_expr(sub)
        else:
            yield from walk_expr(child)


def map_expr(e: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Rebuild ``e`` bottom-up, replacing nodes for which ``fn`` returns
    a non-None expression.  ``fn`` is applied to each node *after* its
    children have been rewritten."""
    if isinstance(e, ArrayRef):
        rebuilt: Expr = ArrayRef(e.name, tuple(map_expr(s, fn) for s in e.subs))
    elif isinstance(e, FuncRef):
        rebuilt = FuncRef(e.name, tuple(map_expr(a, fn) for a in e.args))
    elif isinstance(e, BinOp):
        rebuilt = BinOp(e.op, map_expr(e.left, fn), map_expr(e.right, fn))
    elif isinstance(e, UnOp):
        rebuilt = UnOp(e.op, map_expr(e.operand, fn))
    elif isinstance(e, RangeExpr):
        rebuilt = RangeExpr(
            map_expr(e.lo, fn) if e.lo is not None else None,
            map_expr(e.hi, fn) if e.hi is not None else None,
            map_expr(e.step, fn) if e.step is not None else None,
        )
    else:
        rebuilt = e
    out = fn(rebuilt)
    return rebuilt if out is None else out


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class for executable statements.

    Every statement carries an optional numeric ``label`` and a list of
    free-form comment directives (currently unused placeholders — OpenMP
    is modelled structurally via :class:`OmpParallelDo`).
    """

    __slots__ = ()


@dataclass(eq=True)
class Assign(Stmt):
    target: Union[Var, ArrayRef]
    value: Expr
    label: Optional[int] = None


@dataclass(eq=True)
class IfBlock(Stmt):
    """Block IF.  ``arms`` is a list of (condition, body); the final arm has
    condition ``None`` when an ELSE is present.  A one-armed IfBlock whose
    body is a single simple statement unparses as a logical IF."""

    arms: List[Tuple[Optional[Expr], List[Stmt]]]
    label: Optional[int] = None


@dataclass(eq=True)
class DoLoop(Stmt):
    var: str
    start: Expr
    stop: Expr
    step: Optional[Expr]
    body: List[Stmt]
    label: Optional[int] = None
    #: label of the terminating statement for classic ``DO 200 I=...`` form;
    #: None means DO ... ENDDO
    term_label: Optional[int] = None


@dataclass(eq=True)
class CallStmt(Stmt):
    name: str
    args: Tuple[Expr, ...]
    label: Optional[int] = None


@dataclass(eq=True)
class Goto(Stmt):
    target: int
    label: Optional[int] = None


@dataclass(eq=True)
class ComputedGoto(Stmt):
    """``GO TO (l1, l2, ...), index``.  An index value outside
    ``1..len(targets)`` falls through to the next statement (F77 rules)."""

    targets: Tuple[int, ...]
    index: Expr
    label: Optional[int] = None


@dataclass(eq=True)
class LabelAssign(Stmt):
    """``ASSIGN label TO var`` — stores a statement label in an integer
    variable for a later assigned GOTO."""

    target_label: int
    var: str
    label: Optional[int] = None


@dataclass(eq=True)
class AssignedGoto(Stmt):
    """``GO TO var [, (l1, l2, ...)]``.  ``targets`` may be empty when the
    source omits the label list, in which case the jump target set is the
    whole unit — unanalyzable control flow."""

    var: str
    targets: Tuple[int, ...] = ()
    label: Optional[int] = None


@dataclass(eq=True)
class Continue(Stmt):
    label: Optional[int] = None


@dataclass(eq=True)
class Return(Stmt):
    label: Optional[int] = None
    #: alternate-return selector expression (``RETURN n``), None for a
    #: plain RETURN
    alt: Optional[Expr] = None


@dataclass(eq=True)
class EntryStmt(Stmt):
    """``ENTRY name(params)`` — a secondary entry point into the enclosing
    unit.  Kept as an inert body marker; any unit containing one is treated
    as opaque by side-effect summaries."""

    name: str
    params: Tuple[str, ...] = ()
    label: Optional[int] = None


@dataclass(eq=True)
class Opaque(Stmt):
    """A statement the tolerant frontend accepted but could not lower.

    ``text`` is the condensed source text (re-emitted verbatim by the
    unparser), ``reason`` a stable short code naming why lowering failed
    (the full diagnostic lives in the frontend's diagnostics list, not
    here, so reparsing round-trips).  Analyses must treat an Opaque
    statement as unanalyzable: it may read or write anything.
    """

    text: str
    reason: str = "unclassified"
    label: Optional[int] = None


@dataclass(eq=True)
class Stop(Stmt):
    message: Optional[str] = None
    label: Optional[int] = None


@dataclass(eq=True)
class IoStmt(Stmt):
    """WRITE/PRINT/READ.  The control list (unit, format) is kept as raw
    text; the data items are real expressions so analyses can see the
    variables read or written by I/O."""

    kind: str  # 'WRITE' | 'PRINT' | 'READ'
    control: str
    items: Tuple[Expr, ...]
    label: Optional[int] = None


@dataclass(eq=True)
class OmpParallelDo(Stmt):
    """An OpenMP-parallelized DO loop.

    Produced by the parallelizer; unparses to ``!$OMP PARALLEL DO`` /
    ``!$OMP END PARALLEL DO`` around the loop.  ``private``, ``reductions``
    and ``schedule`` model the clause set Polaris emits.
    """

    loop: DoLoop
    private: Tuple[str, ...] = ()
    #: (operator, variable) pairs, e.g. ("+", "SUM1")
    reductions: Tuple[Tuple[str, str], ...] = ()
    schedule: Optional[str] = None
    label: Optional[int] = None


@dataclass(eq=True)
class TaggedBlock(Stmt):
    """A code segment produced by annotation-based inlining.

    ``callee`` names the annotated subroutine, ``site_id`` uniquely
    identifies the call site, and ``actuals`` records the original actual
    argument expressions (the reverse inliner *re-derives* actuals by
    pattern matching and cross-checks them against these).
    """

    callee: str
    site_id: int
    actuals: Tuple[Expr, ...]
    body: List[Stmt]
    label: Optional[int] = None


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass(eq=True)
class Dim:
    """One array dimension ``lower:upper``; ``upper is None`` encodes an
    assumed-size ``*`` final dimension."""

    lower: Expr
    upper: Optional[Expr]

    @staticmethod
    def upto(upper: Optional[Expr]) -> "Dim":
        return Dim(IntLit(1), upper)


@dataclass(eq=True)
class Entity:
    """A declared name with optional dimensions / character length."""

    name: str
    dims: Optional[Tuple[Dim, ...]] = None
    char_len: Optional[int] = None


class Decl:
    """Base class for specification statements."""

    __slots__ = ()


@dataclass(eq=True)
class TypeDecl(Decl):
    typename: str  # 'INTEGER' | 'REAL' | 'DOUBLE PRECISION' | 'LOGICAL' | 'CHARACTER'
    entities: List[Entity]
    char_len: Optional[int] = None  # CHARACTER*n default length


@dataclass(eq=True)
class DimensionDecl(Decl):
    entities: List[Entity]


@dataclass(eq=True)
class CommonDecl(Decl):
    block: str  # '' for blank common
    entities: List[Entity]


@dataclass(eq=True)
class ParameterDecl(Decl):
    assignments: List[Tuple[str, Expr]]


@dataclass(eq=True)
class DataDecl(Decl):
    #: parallel lists of targets and value expressions (repeat factors
    #: expanded by the parser: ``DATA A /3*0.0/`` becomes three values)
    targets: List[Expr]
    values: List[Expr]


@dataclass(eq=True)
class EquivalenceDecl(Decl):
    """``EQUIVALENCE (A, B(3)), (C, D)`` — storage association groups.

    Each group is a tuple of Var/ArrayRef references sharing storage.  The
    dependence analyzer refuses to parallelize loops touching any
    equivalenced name (aliasing defeats the per-array dependence model).
    """

    groups: List[Tuple[Expr, ...]]


@dataclass(eq=True)
class SaveDecl(Decl):
    names: List[str]


@dataclass(eq=True)
class ExternalDecl(Decl):
    names: List[str]


@dataclass(eq=True)
class IntrinsicDecl(Decl):
    names: List[str]


@dataclass(eq=True)
class ImplicitDecl(Decl):
    #: only 'NONE' is given special meaning; other texts are preserved
    text: str


# ---------------------------------------------------------------------------
# Program units
# ---------------------------------------------------------------------------

@dataclass(eq=True)
class ProgramUnit:
    kind: str  # 'PROGRAM' | 'SUBROUTINE' | 'FUNCTION'
    name: str
    params: List[str]
    decls: List[Decl]
    body: List[Stmt]
    #: declared result type for FUNCTION units ('' = implicit)
    result_type: str = ""

    def find_decls(self, cls) -> List[Decl]:
        return [d for d in self.decls if isinstance(d, cls)]


@dataclass(eq=True)
class SourceFile:
    units: List[ProgramUnit]
    filename: str = "<string>"

    def unit(self, name: str) -> ProgramUnit:
        for u in self.units:
            if u.name == name.upper():
                return u
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------

def stmt_children(s: Stmt) -> List[List[Stmt]]:
    """Return the nested statement lists of ``s`` (possibly empty)."""
    if isinstance(s, DoLoop):
        return [s.body]
    if isinstance(s, IfBlock):
        return [body for _, body in s.arms]
    if isinstance(s, OmpParallelDo):
        return [[s.loop]]
    if isinstance(s, TaggedBlock):
        return [s.body]
    return []


def walk_stmts(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in ``body``, preorder, recursing into blocks."""
    for s in body:
        yield s
        for child in stmt_children(s):
            yield from walk_stmts(child)


def stmt_exprs(s: Stmt) -> List[Expr]:
    """Return the top-level expressions of a single statement (not
    recursing into nested statements)."""
    if isinstance(s, Assign):
        return [s.target, s.value]
    if isinstance(s, IfBlock):
        return [cond for cond, _ in s.arms if cond is not None]
    if isinstance(s, DoLoop):
        out = [s.start, s.stop]
        if s.step is not None:
            out.append(s.step)
        return out
    if isinstance(s, CallStmt):
        return list(s.args)
    if isinstance(s, IoStmt):
        return list(s.items)
    if isinstance(s, TaggedBlock):
        return list(s.actuals)
    if isinstance(s, ComputedGoto):
        return [s.index]
    if isinstance(s, AssignedGoto):
        # expose the read of the label variable (a fresh Var node: equality
        # is structural, so analyses see it as an ordinary scalar read)
        return [Var(s.var)]
    if isinstance(s, Return) and s.alt is not None:
        return [s.alt]
    return []


def walk_all_exprs(body: Sequence[Stmt]) -> Iterator[Expr]:
    """Yield every expression node appearing anywhere in ``body``."""
    for s in walk_stmts(body):
        for e in stmt_exprs(s):
            yield from walk_expr(e)


def map_stmts(body: List[Stmt],
              fn: Callable[[Stmt], Optional[List[Stmt]]]) -> List[Stmt]:
    """Rebuild a statement list, replacing statements for which ``fn``
    returns a replacement list (None keeps the statement).  ``fn`` is
    applied after children have been rewritten; the callback may expand a
    statement into several or delete it (empty list)."""
    out: List[Stmt] = []
    for s in body:
        if isinstance(s, DoLoop):
            old = s
            s = DoLoop(s.var, s.start, s.stop, s.step,
                       map_stmts(s.body, fn), s.label, s.term_label)
            copy_loop_meta(old, s)
        elif isinstance(s, IfBlock):
            s = IfBlock([(c, map_stmts(b, fn)) for c, b in s.arms], s.label)
        elif isinstance(s, OmpParallelDo):
            inner = map_stmts([s.loop], fn)
            if len(inner) == 1 and isinstance(inner[0], DoLoop):
                s = OmpParallelDo(inner[0], s.private, s.reductions,
                                  s.schedule, s.label)
            else:
                out.extend(inner)
                continue
        elif isinstance(s, TaggedBlock):
            s = TaggedBlock(s.callee, s.site_id, s.actuals,
                            map_stmts(s.body, fn), s.label)
        replaced = fn(s)
        if replaced is None:
            out.append(s)
        else:
            out.extend(replaced)
    return out


def map_stmt_exprs(body: List[Stmt],
                   fn: Callable[[Expr], Optional[Expr]]) -> List[Stmt]:
    """Rewrite every expression in ``body`` with :func:`map_expr`."""

    def rewrite(s: Stmt) -> Optional[List[Stmt]]:
        if isinstance(s, Assign):
            tgt = map_expr(s.target, fn)
            if not isinstance(tgt, (Var, ArrayRef)):
                tgt = s.target  # refuse to rewrite targets into non-lvalues
            return [Assign(tgt, map_expr(s.value, fn), s.label)]
        if isinstance(s, IfBlock):
            return [IfBlock(
                [(map_expr(c, fn) if c is not None else None, b)
                 for c, b in s.arms], s.label)]
        if isinstance(s, DoLoop):
            rebuilt = DoLoop(s.var, map_expr(s.start, fn),
                             map_expr(s.stop, fn),
                             map_expr(s.step, fn) if s.step is not None
                             else None,
                             s.body, s.label, s.term_label)
            return [copy_loop_meta(s, rebuilt)]
        if isinstance(s, CallStmt):
            return [CallStmt(s.name, tuple(map_expr(a, fn) for a in s.args),
                             s.label)]
        if isinstance(s, IoStmt):
            return [IoStmt(s.kind, s.control,
                           tuple(map_expr(i, fn) for i in s.items), s.label)]
        if isinstance(s, ComputedGoto):
            return [ComputedGoto(s.targets, map_expr(s.index, fn), s.label)]
        return None

    return map_stmts(body, rewrite)


def clone(node):
    """Deep-copy an AST node (or list of nodes)."""
    return copy.deepcopy(node)


def copy_loop_meta(old: DoLoop, new: DoLoop) -> DoLoop:
    """Carry the non-field loop metadata (the ``origin`` identity used for
    Table II accounting) across a structural rebuild."""
    if hasattr(old, "origin"):
        new.origin = old.origin  # type: ignore[attr-defined]
    return new


def count_statements(body: Sequence[Stmt]) -> int:
    """Number of statements, the metric Polaris' inlining heuristic uses."""
    return sum(1 for _ in walk_stmts(body))
