"""Tolerant fixed-form Fortran frontend.

The strict frontend (:mod:`repro.fortran.parser`) fails fast — right for
the curated PERFECT-style inputs the experiments replay, wrong for
ingesting arbitrary real-world Fortran 77.  This package layers recovery
on top of the same statement-classification tables:

* :func:`tolerant_read` repairs malformed cards (labels, continuations);
* :func:`parse_source_tolerant` boxes unclassifiable statements as
  :class:`~repro.fortran.ast.Opaque` markers and implicitly closes
  unterminated blocks, recording every action as a :class:`Diagnostic`;
* :func:`parallelize_source` runs the full paper pipeline (parse ->
  annotation inference -> Polaris -> OpenMP unparse) over the tolerant
  tree and returns annotated source plus per-loop decision records.

See ``docs/frontend.md`` for the dialect table and recovery semantics.
"""

from .diagnostics import SEVERITIES, Diagnostic, DiagnosticSink
from .parser import parse_source_tolerant
from .pipeline import parallelize_source
from .reader import tolerant_read

__all__ = [
    "Diagnostic",
    "DiagnosticSink",
    "SEVERITIES",
    "parallelize_source",
    "parse_source_tolerant",
    "tolerant_read",
]
