"""End-to-end ``parallelize_source``: tolerant parse -> inline ->
Polaris -> OpenMP unparse, with per-loop explanations.

This is the service/CLI entry point behind ``repro parallelize FILE.f``
and the ``{"kind": "parallelize"}`` job payload.  Unlike the strict
pipeline (:func:`repro.cli._pipeline` over :class:`repro.program.Program`),
it accepts real-world fixed-form input: dialect constructs the strict
frontend rejects become conservative IR (EQUIVALENCE, computed/assigned
GOTO, ENTRY, alternate returns, CHARACTER substrings), and outright
malformed statements become :class:`~repro.fortran.ast.Opaque` markers —
both analyzed as "may touch anything", so every verdict stays sound.

The returned mapping is JSON-ready (service responses forward it as-is):

``output``
    the annotated source (OpenMP directives inserted);
``diagnostics``
    recovery actions from the tolerant frontend, one dict per action;
``loops``
    one dict per analyzed loop — the
    :class:`~repro.trace.decisions.LoopDecision` record plus its
    human-readable ``explanation``;
``parallel_count``
    loops that received a directive.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.fortran import ast
from repro.program import Program
from repro.trace import Tracer

from .parser import parse_source_tolerant

__all__ = ["parallelize_source"]


def _build_program(sources: Dict[str, str], tolerant: bool,
                   diagnostics: List[dict]) -> Program:
    if not tolerant:
        return Program.from_sources(sources)
    files: List[ast.SourceFile] = []
    for fname, text in sources.items():
        sf, diags = parse_source_tolerant(text, fname)
        files.append(sf)
        diagnostics.extend(d.to_dict() for d in diags)
    prog = Program(files, "parallelize")
    prog.resolve()
    return prog


def parallelize_source(sources: Dict[str, str],
                       config: str = "annotation",
                       annotations_mode: str = "inferred",
                       annotations_text: str = "",
                       tolerant: bool = True,
                       tracer: Optional[Tracer] = None) -> Dict[str, object]:
    """Parallelize a ``{filename: text}`` mapping of fixed-form sources.

    ``config``/``annotations_mode`` select the inlining strategy exactly
    as the CLI flags do; the default (``annotation`` + ``inferred``)
    needs no hand-written annotation file, which is the right default
    for arbitrary ingested programs.  Raises
    :class:`~repro.errors.ReproError` only in strict mode
    (``tolerant=False``) on the first frontend error.
    """
    from repro.annotations import (AnnotationInliner, AnnotationRegistry,
                                   ReverseInliner)
    from repro.inlining import ConventionalInliner
    from repro.polaris import Polaris

    diagnostics: List[dict] = []
    t0 = perf_counter()
    program = _build_program(sources, tolerant, diagnostics)
    parse_seconds = perf_counter() - t0

    registry = (AnnotationRegistry.from_text(annotations_text)
                if annotations_text else AnnotationRegistry())
    tracer = tracer or Tracer(label="parallelize")

    demand = None
    if config == "conventional":
        ConventionalInliner().run(program)
    elif config == "annotation":
        if annotations_mode != "hand":
            from repro.annotations.infer import infer_annotations
            from repro.inlining.demand import DemandInliner
            hand = registry if annotations_mode == "demand" else None
            inference = infer_annotations(program, hand=hand)
            registry = inference.registry()
            if annotations_mode == "demand":
                demand = DemandInliner(
                    registry, inference=inference,
                    hand_names=frozenset(hand.names()))
        if demand is None:
            AnnotationInliner(registry).run(program)
    report = Polaris(demand=demand).run(program, tracer)
    if config == "annotation":
        ReverseInliner(registry).run(program)
    report.add_timing("parse", parse_seconds)

    loops = []
    for d in tracer.decisions:
        rec = d.to_dict()
        rec["explanation"] = d.describe()
        loops.append(rec)
    output = "".join(program.unparse().values())
    return {
        "output": output,
        "code_lines": len(output.splitlines()),
        "diagnostics": diagnostics,
        "loops": loops,
        "parallel_count": report.parallel_count(),
        "config": config,
        "annotations_mode": annotations_mode,
        "units": [u.name for u in program.units],
    }
