"""Tolerant fixed-form parser: classify what you can, box the rest.

Built on the strict frontend's statement-classification tables
(:class:`repro.fortran.parser._StatementClassifier`) and block structurer,
this module adds the error-recovery layer the strict parser deliberately
lacks:

* a statement that fails to classify becomes an
  :class:`~repro.fortran.ast.Opaque` marker carrying the raw card text
  and a stable reason code — downstream analyses already treat Opaque as
  "may read or write anything" (``AccessSet.has_opaque``), so recovery is
  conservative, never unsound;
* unterminated blocks (missing ENDDO / ENDIF / DO terminator label /
  inline END tag) are implicitly closed at the end of the enclosing
  block;
* stray closers and statements outside any program unit are skipped;
* a missing final END yields an implicit one.

Every action is recorded as a
:class:`~repro.fortran.fixedform.diagnostics.Diagnostic`; the pair
``(SourceFile, [Diagnostic])`` is the whole parse result — the tolerant
frontend never raises for malformed *input* (only for internal bugs).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import LexError, ParseError, ReproError, SourceLocation
from repro.fortran import ast
from repro.fortran.parser import (_TYPE_KEYWORDS, _UNIT_HEADER_RE, _Flat,
                                  _StatementClassifier, _Structurer,
                                  _enrich_parse_error, _parse_omp_clauses,
                                  _parse_tag_begin)
from repro.fortran.source import LogicalLine, condense_with_map

from .diagnostics import DiagnosticSink
from .reader import tolerant_read

__all__ = ["parse_source_tolerant"]


def _opaque_flat(line: LogicalLine, reason: str) -> _Flat:
    stmt = ast.Opaque(text=line.text.strip(), reason=reason,
                      label=line.label)
    return _Flat("stmt", label=line.label, stmt=stmt,
                 location=line.location)


class _TolerantClassifier(_StatementClassifier):
    """Statement classifier that records failures instead of raising."""

    def __init__(self, filename: str, sink: DiagnosticSink):
        super().__init__(filename)
        self.sink = sink

    def classify(self, line: LogicalLine) -> List[_Flat]:
        loc = line.location
        out: List[_Flat] = []
        for d in line.leading:
            try:
                out.extend(self._directive(d, loc))
            except (ReproError, ValueError) as e:
                self.sink.emit("bad-directive", str(e), loc,
                               excerpt=d.text, severity="skipped")
        text, _ = condense_with_map(line.text)
        if not text:
            return out
        try:
            flat = self._statement(text, line.label, loc)
        except ParseError as e:
            enriched = _enrich_parse_error(e, line)
            self.sink.error(enriched, "parse-error")
            flat = _opaque_flat(line, "parse-error")
        except LexError as e:
            self.sink.emit("unterminated-literal", e.bare_message, loc,
                           excerpt=line.text.rstrip())
            flat = _opaque_flat(line, "unterminated-literal")
        except ReproError as e:
            self.sink.emit("parse-error", e.bare_message, loc,
                           excerpt=line.text.rstrip())
            flat = _opaque_flat(line, "parse-error")
        if flat is not None:
            out.append(flat)
        return out


class _TolerantStructurer(_Structurer):
    """Block structurer with implicit-close recovery.

    Missing terminators close the block at the end of the *enclosing*
    region (which is how most real compilers recover); unexpected closers
    are dropped.  Both actions emit a diagnostic.
    """

    def __init__(self, items: List[_Flat], sink: DiagnosticSink):
        super().__init__(items)
        self.sink = sink

    # -- top-level dispatch with stray-closer recovery ----------------
    def _one(self, i: int, hi: int):
        it = self.items[i]
        if it.kind in ("endif", "else", "elseif", "enddo", "end"):
            self.sink.emit("stray-closer",
                           f"unexpected {it.kind.upper()}; skipping it",
                           it.location, severity="skipped")
            return None, i + 1
        if it.kind == "tag_end":
            self.sink.emit("stray-closer",
                           f"unmatched inline END tag {it.text!r}; "
                           "skipping it",
                           it.location, severity="skipped")
            return None, i + 1
        return super()._one(i, hi)

    # -- DO: missing terminator label / ENDDO -------------------------
    def _do(self, i: int, hi: int):
        it = self.items[i]
        if it.do_term is not None:
            j = self._try_find_label(i + 1, hi, it.do_term)
            if j is None:
                self.sink.emit(
                    "missing-do-label",
                    f"DO terminator label {it.do_term} not found; "
                    "closing the loop at the end of the enclosing block",
                    it.location, severity="note")
                body = self.build(i + 1, hi)
                loop = ast.DoLoop(it.do_var, it.do_start, it.do_stop,
                                  it.do_step, body, it.label, None)
                return loop, hi
            body = self.build(i + 1, j + 1)
            loop = ast.DoLoop(it.do_var, it.do_start, it.do_stop,
                              it.do_step, body, it.label, it.do_term)
            return loop, j + 1
        j = self._try_match_enddo(i + 1, hi)
        if j is None:
            self.sink.emit(
                "missing-enddo",
                "missing ENDDO; closing the loop at the end of the "
                "enclosing block",
                it.location, severity="note")
            body = self.build(i + 1, hi)
            loop = ast.DoLoop(it.do_var, it.do_start, it.do_stop,
                              it.do_step, body, it.label, None)
            return loop, hi
        body = self.build(i + 1, j)
        loop = ast.DoLoop(it.do_var, it.do_start, it.do_stop, it.do_step,
                          body, it.label, None)
        return loop, j + 1

    def _try_find_label(self, lo: int, hi: int, label: int) -> Optional[int]:
        for j in range(lo, hi):
            if self.items[j].label == label and self.items[j].kind == "stmt":
                return j
        return None

    def _try_match_enddo(self, lo: int, hi: int) -> Optional[int]:
        depth = 0
        for j in range(lo, hi):
            it = self.items[j]
            if it.kind == "do" and it.do_term is None:
                depth += 1
            elif it.kind == "enddo":
                if depth == 0:
                    return j
                depth -= 1
        return None

    # -- IF: missing ENDIF --------------------------------------------
    def _if(self, i: int, hi: int):
        header = self.items[i]
        arms: List[Tuple[Optional[ast.Expr], List[ast.Stmt]]] = []
        cond: Optional[ast.Expr] = header.cond
        arm_start = i + 1
        depth = 0
        j = i + 1
        while j < hi:
            it = self.items[j]
            if it.kind == "if":
                depth += 1
            elif it.kind == "endif":
                if depth == 0:
                    arms.append((cond, self.build(arm_start, j)))
                    return ast.IfBlock(arms, header.label), j + 1
                depth -= 1
            elif depth == 0 and it.kind == "elseif":
                arms.append((cond, self.build(arm_start, j)))
                cond = it.cond
                arm_start = j + 1
            elif depth == 0 and it.kind == "else":
                arms.append((cond, self.build(arm_start, j)))
                cond = None
                arm_start = j + 1
            j += 1
        self.sink.emit("missing-endif",
                       "missing ENDIF; closing the IF block at the end "
                       "of the enclosing block",
                       header.location, severity="note")
        arms.append((cond, self.build(arm_start, hi)))
        return ast.IfBlock(arms, header.label), hi

    # -- OpenMP: dangling directives ----------------------------------
    def _omp(self, i: int, hi: int):
        it = self.items[i]
        text = it.text.replace(" ", "")
        if text.startswith("ENDPARALLELDO") or text.startswith("ENDDO") \
                or text.startswith("ENDPARALLEL"):
            return None, i + 1
        if not (text.startswith("PARALLELDO") or text.startswith("DO")
                or text.startswith("PARALLEL")):
            self.sink.emit("bad-omp",
                           f"unsupported OpenMP directive {it.text!r}; "
                           "dropping it",
                           it.location, severity="skipped")
            return None, i + 1
        private, reductions, schedule = _parse_omp_clauses(it.text)
        j = i + 1
        while j < hi and self.items[j].kind == "omp":
            p2, r2, s2 = _parse_omp_clauses(self.items[j].text)
            private += p2
            reductions += r2
            schedule = schedule or s2
            j += 1
        if j >= hi or self.items[j].kind != "do":
            self.sink.emit("omp-no-loop",
                           "OpenMP PARALLEL DO directive not followed by "
                           "a DO loop; dropping the directive",
                           it.location, severity="skipped")
            return None, j
        loop_stmt, nxt = self._do(j, hi)
        assert isinstance(loop_stmt, ast.DoLoop)
        return ast.OmpParallelDo(loop_stmt, tuple(private),
                                 tuple(reductions), schedule), nxt

    # -- inline tags: unmatched / mismatched --------------------------
    def _tagged(self, i: int, hi: int):
        it = self.items[i]
        try:
            callee, site_id, actuals = _parse_tag_begin(it.text, it.location)
        except (ReproError, ValueError) as e:
            self.sink.emit("bad-tag", str(e), it.location,
                           excerpt=it.text, severity="skipped")
            return None, i + 1
        depth = 0
        for j in range(i + 1, hi):
            item = self.items[j]
            if item.kind == "tag_begin":
                depth += 1
            elif item.kind == "tag_end":
                if depth == 0:
                    try:
                        end_id = int(item.text.split()[0])
                    except (ValueError, IndexError):
                        end_id = site_id
                    if end_id != site_id:
                        self.sink.emit(
                            "tag-mismatch",
                            f"inline tag mismatch: BEGIN {site_id} closed "
                            f"by END {end_id}; accepting the closure",
                            item.location, severity="note")
                    body = self.build(i + 1, j)
                    return ast.TaggedBlock(callee, site_id, actuals, body,
                                           it.label), j + 1
                depth -= 1
        self.sink.emit("missing-end-tag",
                       f"missing inline END tag for site {site_id}; "
                       "closing it at the end of the enclosing block",
                       it.location, severity="note")
        body = self.build(i + 1, hi)
        return ast.TaggedBlock(callee, site_id, actuals, body,
                               it.label), hi


# ---------------------------------------------------------------------------
# Program-unit assembly with recovery
# ---------------------------------------------------------------------------

def parse_source_tolerant(text: str, filename: str = "<string>"):
    """Parse fixed-form source text, recovering from every malformed
    construct.  Returns ``(SourceFile, [Diagnostic])``.

    The returned tree is always structurally valid: statements that could
    not be understood appear as :class:`~repro.fortran.ast.Opaque`
    markers, which the analyses treat as "may touch anything".
    """
    sink = DiagnosticSink()
    lines = tolerant_read(text, filename, sink)
    classifier = _TolerantClassifier(filename, sink)
    units: List[ast.ProgramUnit] = []
    current_header: Optional[Tuple[str, str, List[str], str]] = None
    current_items: List[_Flat] = []
    header_loc = SourceLocation(filename, 0)

    def finish_unit() -> None:
        nonlocal current_header, current_items
        if current_header is None:
            current_items = []
            return
        kind, name, params, result_type = current_header
        decls: List[ast.Decl] = []
        body_items: List[_Flat] = []
        for it in current_items:
            if it.kind == "decl":
                decls.append(it.stmt)  # type: ignore[arg-type]
            else:
                body_items.append(it)
        try:
            body = _TolerantStructurer(body_items, sink).build(
                0, len(body_items))
        except ReproError as e:
            # a structuring failure recovery did not anticipate: keep the
            # unit, box its whole body
            sink.emit("unit-structure", e.bare_message, header_loc,
                      severity="recovered")
            body = [ast.Opaque(text=f"{kind} {name} body",
                               reason="unit-structure")]
        units.append(ast.ProgramUnit(kind, name, params, decls, body,
                                     result_type))
        current_header = None
        current_items = []

    for line in lines:
        text_c, _ = condense_with_map(line.text)
        m = _UNIT_HEADER_RE.match(text_c) if text_c else None
        if m and m.group(2) in ("PROGRAM", "SUBROUTINE", "FUNCTION"):
            finish_unit()
            rtype = _TYPE_KEYWORDS.get(m.group(1) or "", "")
            kind = m.group(2)
            name = m.group(3)
            params: List[str] = []
            if m.group(4):
                inner = m.group(4)[1:-1]
                params = [p for p in inner.split(",") if p]
            current_header = (kind, name, params, rtype)
            header_loc = line.location
            continue
        flats = classifier.classify(line)
        for f in flats:
            if f.kind == "end":
                finish_unit()
            else:
                if current_header is None:
                    if f.kind in ("omp", "tag_begin", "tag_end"):
                        continue
                    sink.emit("stray-statement",
                              "statement outside any program unit; "
                              "skipping it",
                              f.location,
                              excerpt=line.text.rstrip(),
                              severity="skipped")
                    continue
                current_items.append(f)
    if current_header is not None:
        sink.emit("missing-end",
                  "missing END for final program unit; adding an "
                  "implicit one",
                  header_loc, severity="note")
        finish_unit()
    return ast.SourceFile(units, filename), sink.items
