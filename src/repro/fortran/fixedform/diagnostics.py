"""Structured diagnostics for the tolerant fixed-form frontend.

Every recovery action the tolerant reader/classifier/structurer takes is
recorded as one :class:`Diagnostic`: a *stable short code* (the corpus
expectation files match on it), a human message, the card position
(1-based line, 1-based column where known), the offending source excerpt
and a severity.

Severities:

* ``recovered`` — the construct was replaced by a conservative stand-in
  (usually an :class:`~repro.fortran.ast.Opaque` statement) and analysis
  continues soundly around it;
* ``skipped`` — the item could not be represented at all and was dropped
  (stray closers, statements outside any unit);
* ``note`` — the frontend repaired something silently repairable
  (implicit END, implicitly closed block).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.errors import ReproError, SourceLocation

SEVERITIES = ("recovered", "skipped", "note")


@dataclass(frozen=True)
class Diagnostic:
    """One recovery action taken by the tolerant frontend."""

    code: str                  # stable short code, e.g. "parse-error"
    message: str
    file: str = "<string>"
    line: int = 0
    column: int = 0
    excerpt: str = ""
    severity: str = "recovered"

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "Diagnostic":
        return Diagnostic(
            code=str(d.get("code", "")),
            message=str(d.get("message", "")),
            file=str(d.get("file", "<string>")),
            line=int(d.get("line", 0) or 0),
            column=int(d.get("column", 0) or 0),
            excerpt=str(d.get("excerpt", "")),
            severity=str(d.get("severity", "recovered")),
        )

    @staticmethod
    def from_error(err: ReproError, code: str,
                   severity: str = "recovered") -> "Diagnostic":
        """Build a diagnostic from an (enriched) frontend error."""
        loc = err.location or SourceLocation()
        return Diagnostic(
            code=code,
            message=err.bare_message,
            file=loc.filename,
            line=loc.line,
            column=loc.column,
            excerpt=err.excerpt or "",
            severity=severity,
        )

    def describe(self) -> str:
        where = f"{self.file}:{self.line}"
        if self.column:
            where += f":{self.column}"
        out = f"{where}: [{self.code}] {self.message}"
        if self.excerpt:
            out += f"\n    | {self.excerpt}"
        return out


class DiagnosticSink:
    """Accumulates diagnostics; shared by the reader, classifier and
    structurer so one parse yields one ordered list."""

    def __init__(self) -> None:
        self.items: List[Diagnostic] = []

    def add(self, diag: Diagnostic) -> None:
        self.items.append(diag)

    def emit(self, code: str, message: str,
             location: Optional[SourceLocation] = None,
             excerpt: str = "", severity: str = "recovered") -> None:
        loc = location or SourceLocation()
        self.add(Diagnostic(code=code, message=message, file=loc.filename,
                            line=loc.line, column=loc.column,
                            excerpt=excerpt, severity=severity))

    def error(self, err: ReproError, code: str,
              severity: str = "recovered") -> None:
        self.add(Diagnostic.from_error(err, code, severity))

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)
