"""Tolerant fixed-form card reader.

The strict reader (:func:`repro.fortran.source.read_logical_lines`)
raises :class:`~repro.errors.LexError` on the first malformed card.  This
variant applies the classic "keep reading" recovery of PCF-era frontends:
each bad card is repaired in the least surprising way, a
:class:`~repro.fortran.fixedform.diagnostics.Diagnostic` is recorded, and
reading continues.  Recovery actions:

* a continuation card with nothing to continue starts a fresh statement
  (``orphan-continuation``);
* a directive between a statement and its continuation stays pending and
  attaches to the *next* statement (``directive-in-continuation``);
* a non-numeric label field is dropped (``bad-label``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import SourceLocation
from repro.fortran.source import (STATEMENT_FIELD_END, LogicalLine,
                                  _classify_comment, _strip_inline_comment)

from .diagnostics import DiagnosticSink


def tolerant_read(text: str, filename: str,
                  sink: DiagnosticSink) -> List[LogicalLine]:
    """Split source text into logical lines, recovering from bad cards."""
    logical: List[LogicalLine] = []
    pending: list = []
    current: Optional[LogicalLine] = None

    def flush() -> None:
        nonlocal current
        if current is not None:
            current.text = current.text.rstrip()
            logical.append(current)
            current = None

    for idx, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip("\n")
        if not line.strip():
            continue
        first = line[0] if line else " "
        if first in ("C", "c", "*", "!"):
            directive = _classify_comment(line[1:], idx)
            if directive is not None:
                flush()
                pending.append(directive)
            continue
        line = _strip_inline_comment(line)
        if not line.strip():
            continue
        if len(line) < 6:
            line = line.ljust(6)
        label_field = line[0:5]
        cont_field = line[5]
        stmt_field = line[6:STATEMENT_FIELD_END]
        if cont_field not in (" ", "0"):
            if current is None:
                sink.emit("orphan-continuation",
                          "continuation line with no statement to continue; "
                          "treating it as a new statement",
                          SourceLocation(filename, idx, 6),
                          excerpt=raw.rstrip())
                current = LogicalLine(label=None, text=stmt_field.rstrip(),
                                      line=idx, filename=filename,
                                      leading=pending)
                pending = []
                continue
            if pending:
                sink.emit("directive-in-continuation",
                          "directive between a statement and its "
                          "continuation; attaching it to the next statement",
                          SourceLocation(filename, idx),
                          excerpt=raw.rstrip())
                # pending stays queued for the statement after this one
            current.text += stmt_field.rstrip()
            continue
        flush()
        label: Optional[int] = None
        if label_field.strip():
            if not label_field.strip().isdigit():
                sink.emit("bad-label",
                          f"bad statement label {label_field.strip()!r}; "
                          "ignoring the label field",
                          SourceLocation(filename, idx, 1),
                          excerpt=raw.rstrip())
            else:
                label = int(label_field.strip())
        current = LogicalLine(label=label, text=stmt_field.rstrip(),
                              line=idx, filename=filename, leading=pending)
        pending = []
    flush()
    if pending:
        logical.append(LogicalLine(label=None, text="",
                                   line=pending[0].line, filename=filename,
                                   leading=pending))
    return logical
