"""Fortran 77 frontend: fixed-form reader, lexer, parser, AST, unparser.

This subpackage is the substrate everything else stands on.  It handles the
Fortran 77 subset documented in DESIGN.md section 6, which covers all the
constructs exercised by the PERFECT-style benchmark programs as well as the
code produced by the inliners.

Public entry points:

* :func:`repro.fortran.parser.parse_source` — source text -> :class:`ast.SourceFile`
* :func:`repro.fortran.unparser.unparse` — AST -> fixed-form source text
"""

from repro.fortran import ast  # noqa: F401
from repro.fortran.parser import parse_source  # noqa: F401
from repro.fortran.unparser import unparse  # noqa: F401
