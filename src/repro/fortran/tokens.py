"""Token definitions for the Fortran 77 lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    NAME = auto()        # identifiers (no reserved words in Fortran 77)
    INT = auto()         # 123
    REAL = auto()        # 1.5, 1.5E3, 2.D0
    STRING = auto()      # 'text'
    LOGICAL = auto()     # .TRUE. / .FALSE.
    OP = auto()          # + - * / ** = < > etc. and dot-operators
    LPAREN = auto()
    RPAREN = auto()
    COMMA = auto()
    COLON = auto()
    EOF = auto()


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    pos: int = 0  # character offset in the condensed statement

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"


#: Fortran dot-delimited operators and logical literals, longest first so the
#: lexer can match greedily.
DOT_OPERATORS = (
    ".FALSE.", ".TRUE.",
    ".NEQV.", ".EQV.",
    ".AND.", ".NOT.",
    ".OR.",
    ".GE.", ".GT.", ".LE.", ".LT.", ".EQ.", ".NE.",
)

#: canonical spelling used in the AST for each operator token
DOT_OP_CANONICAL = {
    ".EQ.": "==", ".NE.": "/=", ".LT.": "<", ".LE.": "<=",
    ".GT.": ">", ".GE.": ">=",
    ".AND.": ".AND.", ".OR.": ".OR.", ".NOT.": ".NOT.",
    ".EQV.": ".EQV.", ".NEQV.": ".NEQV.",
}
