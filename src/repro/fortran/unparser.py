"""Fixed-form Fortran 77 code generation from the AST.

The unparser is the inverse of :mod:`repro.fortran.parser`:
``parse_source(unparse(ast))`` reproduces an equal AST for every tree the
parser can produce (property-tested).  Statement text that exceeds column
72 is split onto continuation lines; comment lines (OpenMP directives and
inline tags) are exempt from the column limit, matching what the fixed-form
reader accepts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.fortran import ast

#: operator precedence levels for minimal parenthesization (higher binds
#: tighter); mirrors the parser's grammar
_PREC = {
    ".EQV.": 1, ".NEQV.": 1,
    ".OR.": 2,
    ".AND.": 3,
    # .NOT. is 4
    "==": 5, "/=": 5, "<": 5, "<=": 5, ">": 5, ">=": 5,
    "//": 6,
    "+": 7, "-": 7,
    "*": 8, "/": 8,
    "**": 9,
}

#: canonical operator -> Fortran 77 spelling
_F77_OPS = {
    "==": ".EQ.", "/=": ".NE.", "<": ".LT.", "<=": ".LE.",
    ">": ".GT.", ">=": ".GE.",
}


def expr_to_str(e: ast.Expr) -> str:
    """Render an expression with minimal parentheses (F77 spellings)."""
    return _expr(e, 0)


def _expr(e: ast.Expr, parent_prec: int) -> str:
    if isinstance(e, ast.IntLit):
        return str(e.value)
    if isinstance(e, ast.RealLit):
        return _real_text(e)
    if isinstance(e, ast.StringLit):
        return f"'{e.value}'"
    if isinstance(e, ast.LogicalLit):
        return ".TRUE." if e.value else ".FALSE."
    if isinstance(e, ast.Var):
        return e.name
    if isinstance(e, ast.AltReturn):
        return f"*{e.target}"
    if isinstance(e, (ast.ArrayRef, ast.FuncRef)):
        args = e.subs if isinstance(e, ast.ArrayRef) else e.args
        inner = ",".join(_expr(a, 0) for a in args)
        return f"{e.name}({inner})"
    if isinstance(e, ast.RangeExpr):
        lo = _expr(e.lo, 0) if e.lo is not None else ""
        hi = _expr(e.hi, 0) if e.hi is not None else "*" if e.lo is None else ""
        text = f"{lo}:{hi}" if (e.lo is not None or e.hi is not None) else "*"
        if e.step is not None:
            text += f":{_expr(e.step, 0)}"
        return text
    if isinstance(e, ast.UnOp):
        if e.op == ".NOT.":
            inner = _expr(e.operand, 4)
            text = f".NOT.{inner}"
            return f"({text})" if parent_prec > 4 else text
        inner = _expr(e.operand, 8)  # sign binds between +- and */
        text = f"{e.op}{inner}"
        # a leading sign is legal at the start of an additive chain
        # (parent_prec <= 7); multiplicative/power contexts and right
        # operands of +/- (which pass prec 8) need parentheses
        return f"({text})" if parent_prec >= 8 else text
    if isinstance(e, ast.BinOp):
        prec = _PREC[e.op]
        op = _F77_OPS.get(e.op, e.op)
        if e.op == "**":
            # right-associative
            left = _expr(e.left, prec + 1)
            right = _expr(e.right, prec)
        else:
            left = _expr(e.left, prec)
            # left-associative: right operand needs one level more
            right = _expr(e.right, prec + 1)
        text = f"{left}{op}{right}"
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"cannot unparse expression {e!r}")


def _real_text(e: ast.RealLit) -> str:
    if e.text is not None:
        return e.text
    text = repr(e.value)
    if e.kind == "DOUBLE":
        if "e" in text:
            return text.upper().replace("E", "D")
        return text + "D0"
    return text


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []

    def comment(self, text: str) -> None:
        self.lines.append(text)

    def stmt(self, text: str, label: Optional[int] = None,
             indent: int = 0) -> None:
        label_field = f"{label:>5}" if label is not None else "     "
        body = " " * indent + text
        line = label_field + " " + body
        if len(line) <= 72:
            self.lines.append(line.rstrip())
            return
        # split onto continuation lines at column 72
        head_width = 72 - 6
        first, rest = line[6:6 + head_width], line[6 + head_width:]
        self.lines.append((label_field + " " + first).rstrip("\n"))
        cont_width = 72 - 6
        while rest:
            chunk, rest = rest[:cont_width], rest[cont_width:]
            self.lines.append("     &" + chunk)


def unparse(node, indent_step: int = 2) -> str:
    """Unparse a SourceFile, ProgramUnit, or statement list to source text."""
    w = _Writer()
    if isinstance(node, ast.SourceFile):
        for u in node.units:
            _unit(w, u, indent_step)
    elif isinstance(node, ast.ProgramUnit):
        _unit(w, node, indent_step)
    elif isinstance(node, list):
        _body(w, node, 0, indent_step)
    elif isinstance(node, ast.Stmt):
        _body(w, [node], 0, indent_step)
    else:
        raise TypeError(f"cannot unparse {type(node).__name__}")
    return "\n".join(w.lines) + "\n"


def _unit(w: _Writer, u: ast.ProgramUnit, step: int) -> None:
    header = u.kind
    if u.kind == "FUNCTION" and u.result_type:
        header = f"{u.result_type} FUNCTION"
    text = f"{header} {u.name}"
    if u.kind != "PROGRAM" and u.params is not None:
        text += "(" + ",".join(u.params) + ")"
    w.stmt(text)
    for d in u.decls:
        _decl(w, d, step)
    _body(w, u.body, step, step)
    w.stmt("END")


def _entities(entities: Sequence[ast.Entity]) -> str:
    out = []
    for e in entities:
        text = e.name
        if e.char_len is not None:
            text += "*(*)" if e.char_len == -1 else f"*{e.char_len}"
        if e.dims is not None:
            text += "(" + ",".join(_dim(d) for d in e.dims) + ")"
        out.append(text)
    return ",".join(out)


def _dim(d: ast.Dim) -> str:
    upper = "*" if d.upper is None else expr_to_str(d.upper)
    if d.lower == ast.IntLit(1):
        return upper
    return f"{expr_to_str(d.lower)}:{upper}"


def _decl(w: _Writer, d: ast.Decl, indent: int) -> None:
    if isinstance(d, ast.TypeDecl):
        typename = d.typename
        if d.typename == "CHARACTER" and d.char_len is not None:
            typename = ("CHARACTER*(*)" if d.char_len == -1
                        else f"CHARACTER*{d.char_len}")
        w.stmt(f"{typename} {_entities(d.entities)}", indent=indent)
    elif isinstance(d, ast.DimensionDecl):
        w.stmt(f"DIMENSION {_entities(d.entities)}", indent=indent)
    elif isinstance(d, ast.CommonDecl):
        block = f"/{d.block}/" if d.block else ""
        w.stmt(f"COMMON {block}{_entities(d.entities)}", indent=indent)
    elif isinstance(d, ast.ParameterDecl):
        inner = ",".join(f"{n}={expr_to_str(e)}" for n, e in d.assignments)
        w.stmt(f"PARAMETER ({inner})", indent=indent)
    elif isinstance(d, ast.DataDecl):
        targets = ",".join(expr_to_str(t) for t in d.targets)
        values = ",".join(expr_to_str(v) for v in d.values)
        w.stmt(f"DATA {targets}/{values}/", indent=indent)
    elif isinstance(d, ast.SaveDecl):
        w.stmt("SAVE" + (" " + ",".join(d.names) if d.names else ""),
               indent=indent)
    elif isinstance(d, ast.ExternalDecl):
        w.stmt(f"EXTERNAL {','.join(d.names)}", indent=indent)
    elif isinstance(d, ast.IntrinsicDecl):
        w.stmt(f"INTRINSIC {','.join(d.names)}", indent=indent)
    elif isinstance(d, ast.EquivalenceDecl):
        groups = ",".join(
            "(" + ",".join(expr_to_str(r) for r in g) + ")"
            for g in d.groups)
        w.stmt(f"EQUIVALENCE {groups}", indent=indent)
    elif isinstance(d, ast.ImplicitDecl):
        w.stmt(f"IMPLICIT {d.text}", indent=indent)
    else:
        raise TypeError(f"cannot unparse declaration {d!r}")


def _body(w: _Writer, body: Sequence[ast.Stmt], indent: int,
          step: int) -> None:
    for s in body:
        _stmt(w, s, indent, step)


def _is_simple(s: ast.Stmt) -> bool:
    """Statements permitted inside a one-line logical IF."""
    return isinstance(s, (ast.Assign, ast.CallStmt, ast.Goto, ast.Continue,
                          ast.Return, ast.Stop, ast.IoStmt,
                          ast.ComputedGoto, ast.AssignedGoto,
                          ast.LabelAssign))


def _stmt(w: _Writer, s: ast.Stmt, indent: int, step: int) -> None:
    if isinstance(s, ast.Assign):
        w.stmt(f"{expr_to_str(s.target)} = {expr_to_str(s.value)}",
               s.label, indent)
    elif isinstance(s, ast.IfBlock):
        _if(w, s, indent, step)
    elif isinstance(s, ast.DoLoop):
        _do(w, s, indent, step)
    elif isinstance(s, ast.CallStmt):
        args = ",".join(expr_to_str(a) for a in s.args)
        w.stmt(f"CALL {s.name}({args})", s.label, indent)
    elif isinstance(s, ast.Goto):
        w.stmt(f"GO TO {s.target}", s.label, indent)
    elif isinstance(s, ast.ComputedGoto):
        targets = ",".join(str(t) for t in s.targets)
        w.stmt(f"GO TO ({targets}), {expr_to_str(s.index)}", s.label, indent)
    elif isinstance(s, ast.AssignedGoto):
        text = f"GO TO {s.var}"
        if s.targets:
            text += ", (" + ",".join(str(t) for t in s.targets) + ")"
        w.stmt(text, s.label, indent)
    elif isinstance(s, ast.LabelAssign):
        w.stmt(f"ASSIGN {s.target_label} TO {s.var}", s.label, indent)
    elif isinstance(s, ast.EntryStmt):
        text = f"ENTRY {s.name}"
        if s.params:
            text += "(" + ",".join(s.params) + ")"
        w.stmt(text, s.label, indent)
    elif isinstance(s, ast.Opaque):
        w.stmt(s.text, s.label, indent)
    elif isinstance(s, ast.Continue):
        w.stmt("CONTINUE", s.label, indent)
    elif isinstance(s, ast.Return):
        if s.alt is not None:
            w.stmt(f"RETURN {expr_to_str(s.alt)}", s.label, indent)
        else:
            w.stmt("RETURN", s.label, indent)
    elif isinstance(s, ast.Stop):
        text = "STOP"
        if s.message is not None:
            text += f" '{s.message}'"
        w.stmt(text, s.label, indent)
    elif isinstance(s, ast.IoStmt):
        items = ",".join(expr_to_str(i) for i in s.items)
        if s.kind == "PRINT":
            text = f"PRINT {s.control}"
            if items:
                text += f",{items}"
        else:
            text = f"{s.kind}({s.control})"
            if items:
                text += f" {items}"
        w.stmt(text, s.label, indent)
    elif isinstance(s, ast.OmpParallelDo):
        _omp(w, s, indent, step)
    elif isinstance(s, ast.TaggedBlock):
        actuals = "|".join(expr_to_str(a) for a in s.actuals)
        w.comment(f"C@INLINE BEGIN {s.callee} {s.site_id} {actuals}".rstrip())
        _body(w, s.body, indent, step)
        w.comment(f"C@INLINE END {s.site_id}")
    else:
        raise TypeError(f"cannot unparse statement {s!r}")


def _if(w: _Writer, s: ast.IfBlock, indent: int, step: int) -> None:
    first_cond, first_body = s.arms[0]
    if (len(s.arms) == 1 and len(first_body) == 1
            and _is_simple(first_body[0]) and first_body[0].label is None
            and first_cond is not None):
        # logical IF
        inner = _Writer()
        _stmt(inner, first_body[0], 0, step)
        text = inner.lines[0][6:].strip()
        if len(inner.lines) == 1:
            w.stmt(f"IF ({expr_to_str(first_cond)}) {text}", s.label, indent)
            return
    for idx, (cond, body) in enumerate(s.arms):
        if idx == 0:
            w.stmt(f"IF ({expr_to_str(cond)}) THEN", s.label, indent)
        elif cond is not None:
            w.stmt(f"ELSE IF ({expr_to_str(cond)}) THEN", None, indent)
        else:
            w.stmt("ELSE", None, indent)
        _body(w, body, indent + step, step)
    w.stmt("END IF", None, indent)


def _do_header_text(s: ast.DoLoop) -> str:
    rng = f"{s.var} = {expr_to_str(s.start)}, {expr_to_str(s.stop)}"
    if s.step is not None:
        rng += f", {expr_to_str(s.step)}"
    return rng


def _terminates(body: Sequence[ast.Stmt], label: int) -> bool:
    """True when ``body`` ends at a statement carrying ``label`` (the
    classic label-terminated DO form can then be emitted faithfully).
    Nested loops sharing one terminator (``DO 200 ... DO 200 ... 200``)
    recurse: the labelled statement lives in the innermost body."""
    if not body:
        return False
    last = body[-1]
    if getattr(last, "label", None) == label and _is_simple(last):
        return True
    if isinstance(last, ast.DoLoop) and last.term_label == label:
        return _terminates(last.body, label)
    return False


def _do(w: _Writer, s: ast.DoLoop, indent: int, step: int) -> None:
    if s.term_label is not None and _terminates(s.body, s.term_label):
        w.stmt(f"DO {s.term_label} {_do_header_text(s)}", s.label, indent)
        # the labelled terminator is unparsed as part of the body; nested
        # loops sharing the terminator emit it exactly once (innermost)
        _body(w, s.body, indent + step, step)
    else:
        w.stmt(f"DO {_do_header_text(s)}", s.label, indent)
        _body(w, s.body, indent + step, step)
        w.stmt("END DO", None, indent)


def _omp(w: _Writer, s: ast.OmpParallelDo, indent: int, step: int) -> None:
    clauses = " DEFAULT(SHARED)"
    if s.private:
        clauses += f" PRIVATE({','.join(s.private)})"
    for op, var in s.reductions:
        clauses += f" REDUCTION({op}:{var})"
    if s.schedule:
        clauses += f" SCHEDULE({s.schedule})"
    w.comment(f"!$OMP PARALLEL DO{clauses}")
    _stmt(w, s.loop, indent, step)
    w.comment("!$OMP END PARALLEL DO")
