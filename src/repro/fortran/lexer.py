"""Tokenizer for condensed fixed-form Fortran 77 statements.

The lexer operates on one *condensed* statement at a time (blanks removed,
upper-cased; see :func:`repro.fortran.source.condense`), which resolves the
fixed-form blank-insensitivity rules before tokenization.

The only genuinely tricky spot in Fortran lexing is the period, which can
introduce a real literal (``1.5``, ``.5``, ``3.``), a dot operator
(``.GT.``), or a logical literal (``.TRUE.``).  We resolve it the way
production F77 front ends do: at a period, first try to match a known dot
operator / logical literal; only if none matches is the period treated as
part of a number.  The one remaining ambiguity — ``1.EQ.2`` where ``1.``
could be a real — is resolved *against* the number: a period directly
followed by a dot-operator name terminates the number, so ``1.EQ.2`` lexes
as ``1 .EQ. 2`` (this matches the standard's intent and every mainstream
compiler).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import LexError, SourceLocation
from repro.fortran.tokens import DOT_OPERATORS, Token, TokenType

_DIGITS = set("0123456789")
_NAME_START = set("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
_NAME_CHARS = _NAME_START | _DIGITS | {"_", "$"}
_EXPONENT_LETTERS = set("EDQ")


def tokenize(stmt: str, location: Optional[SourceLocation] = None) -> List[Token]:
    """Tokenize a condensed statement into a token list ending with EOF."""
    tokens: List[Token] = []
    i = 0
    n = len(stmt)
    while i < n:
        ch = stmt[i]
        if ch in _NAME_START:
            j = i + 1
            while j < n and stmt[j] in _NAME_CHARS:
                j += 1
            tokens.append(Token(TokenType.NAME, stmt[i:j], i))
            i = j
        elif ch in _DIGITS or (ch == "." and i + 1 < n and stmt[i + 1] in _DIGITS
                               and _dot_operator_at(stmt, i) is None):
            tok, i = _lex_number(stmt, i, location)
            tokens.append(tok)
        elif ch == ".":
            op = _dot_operator_at(stmt, i)
            if op is None:
                raise LexError(f"stray '.' in {stmt!r}", location)
            if op in (".TRUE.", ".FALSE."):
                tokens.append(Token(TokenType.LOGICAL, op, i))
            else:
                tokens.append(Token(TokenType.OP, op, i))
            i += len(op)
        elif ch in ("'", '"'):
            j = i + 1
            while j < n and stmt[j] != ch:
                j += 1
            if j >= n:
                raise LexError(f"unterminated string in {stmt!r}", location)
            tokens.append(Token(TokenType.STRING, stmt[i + 1:j], i))
            i = j + 1
        elif ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", i))
            i += 1
        elif ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", i))
            i += 1
        elif ch == ",":
            tokens.append(Token(TokenType.COMMA, ",", i))
            i += 1
        elif ch == ":":
            tokens.append(Token(TokenType.COLON, ":", i))
            i += 1
        elif ch == "*" and i + 1 < n and stmt[i + 1] == "*":
            tokens.append(Token(TokenType.OP, "**", i))
            i += 2
        elif ch == "/" and i + 1 < n and stmt[i + 1] == "/":
            tokens.append(Token(TokenType.OP, "//", i))
            i += 2
        elif ch in "+-*/=<>":
            # two-character relational spellings from Fortran 90 are accepted
            # because Polaris-era tools emit them in directives
            two = stmt[i:i + 2]
            if two in ("==", "/=", "<=", ">="):
                tokens.append(Token(TokenType.OP, two, i))
                i += 2
            else:
                tokens.append(Token(TokenType.OP, ch, i))
                i += 1
        elif ch == "$" or ch == "@":
            # allowed in generated names (inliner temporaries)
            j = i + 1
            while j < n and stmt[j] in _NAME_CHARS:
                j += 1
            tokens.append(Token(TokenType.NAME, stmt[i:j], i))
            i = j
        else:
            raise LexError(f"unexpected character {ch!r} in {stmt!r}", location)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _dot_operator_at(stmt: str, i: int) -> Optional[str]:
    """Return the dot operator starting at position ``i``, if any."""
    rest = stmt[i:]
    for op in DOT_OPERATORS:
        if rest.startswith(op):
            return op
    return None


def _lex_number(stmt: str, i: int, location: Optional[SourceLocation]):
    """Lex an integer or real literal starting at position ``i``."""
    n = len(stmt)
    j = i
    is_real = False
    while j < n and stmt[j] in _DIGITS:
        j += 1
    if j < n and stmt[j] == ".":
        # a period followed by a dot-operator name ends the number: 1.EQ.2
        if _dot_operator_at(stmt, j) is None:
            is_real = True
            j += 1
            while j < n and stmt[j] in _DIGITS:
                j += 1
    if j < n and stmt[j] in _EXPONENT_LETTERS:
        # exponent part: E/D/Q followed by optional sign and digits
        k = j + 1
        if k < n and stmt[k] in "+-":
            k += 1
        if k < n and stmt[k] in _DIGITS:
            k += 1
            while k < n and stmt[k] in _DIGITS:
                k += 1
            is_real = True
            j = k
    text = stmt[i:j]
    if is_real:
        return Token(TokenType.REAL, text, i), j
    return Token(TokenType.INT, text, i), j
