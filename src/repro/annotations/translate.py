"""Annotation -> Fortran translation (the Section III-C1 lowering).

For one call site, :func:`translate_call` instantiates a subroutine
annotation into plain Fortran 77 statements:

* **formals** are bound to the actual arguments — scalars by expression
  substitution, arrays by subscript remapping against the actual's
  declared shape (keeping the annotation's multi-dimensional view, which
  is how annotation inlining avoids the linearization pathology);
* **``unknown(e1..en)``** lowers to writes of the operands into a fresh
  per-occurrence capture array ``GU<j>$A<site>`` followed by reads of that
  array — the paper's "define a new uninitialized global array, modify the
  array with all the operands, then replace the invocation with an access
  to the new array".  Capture arrays are compiler-generated scratch: the
  parallelizer recognizes the ``$A`` suffix convention via
  :func:`is_generated_name` and treats them as iteration-private;
* **``unique(x1..xn)``** lowers to the injective linear form
  ``B**(n-1)*x1 + ... + B*x(n-1) + xn`` (base ``B`` configurable — the
  ablation benchmark shows independence proofs need ``B`` to exceed the
  inner subscript ranges, i.e. injectivity over the actual value ranges);
* **array regions / whole-array assignments** lower to generated DO loops
  over the region extents (exactly what the paper's Figure 18 shows for
  ``M3 = 0.0``), with deterministic per-site loop variable names so the
  reverse inliner can regenerate byte-identical templates.

``pattern_mode=True`` generates the *matching template* instead: formals
become ``PAT$<name>`` placeholders that the reverse inliner unifies
against the optimized code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.annotations import ast as aast
from repro.errors import AnnotationError
from repro.fortran import ast as fast
from repro.fortran.symbols import SymbolTable

from repro.naming import (GENERATED_SUFFIX_MARKER, PATTERN_PREFIX,  # noqa: F401
                          is_capture_array, is_generated_name)


@dataclass(frozen=True)
class TranslateOptions:
    unique_base: int = 64


@dataclass
class ArrayBinding:
    """Array formal bound to caller array ``name``: ``F[i1..ir]`` maps to
    ``name(i1 + base[0]-1, ..., ir + base[r-1]-1, trailing...)``."""

    name: str
    base: Tuple[fast.Expr, ...]
    trailing: Tuple[fast.Expr, ...]


@dataclass
class Translation:
    stmts: List[fast.Stmt]
    decls: List[fast.Decl]
    capture_arrays: List[str]


class _Translator:
    def __init__(self, ann: aast.ASubroutine,
                 actuals: Sequence[fast.Expr],
                 caller_table: Optional[SymbolTable],
                 site_id: int,
                 opts: TranslateOptions,
                 pattern_mode: bool):
        self.ann = ann
        self.site_id = site_id
        self.opts = opts
        self.pattern_mode = pattern_mode
        self.caller_table = caller_table
        self.ann_dims = ann.declared_dims()
        self.decls: List[fast.Decl] = []
        self.captures: List[str] = []
        self.unknown_counter = 0
        self.loopvar_counter = 0
        self.scalar_bind: Dict[str, fast.Expr] = {}
        self.array_bind: Dict[str, ArrayBinding] = {}
        self.local_rename: Dict[str, str] = {}
        self._bind_formals(actuals)
        self._collect_locals()

    # ------------------------------------------------------------------
    def _suffix(self, base: str) -> str:
        return f"{base}{GENERATED_SUFFIX_MARKER}{self.site_id}"

    def _bind_formals(self, actuals: Sequence[fast.Expr]) -> None:
        params = [p.upper() for p in self.ann.params]
        if self.pattern_mode:
            for p in params:
                if p in self.ann_dims:
                    self.array_bind[p] = ArrayBinding(
                        PATTERN_PREFIX + p, tuple(), tuple())
                else:
                    self.scalar_bind[p] = fast.Var(PATTERN_PREFIX + p)
            return
        if len(actuals) != len(params):
            raise AnnotationError(
                f"{self.ann.name}: annotation has {len(params)} formals "
                f"but the call passes {len(actuals)} arguments")
        for p, actual in zip(params, actuals):
            if p in self.ann_dims:
                self.array_bind[p] = self._array_binding(p, actual)
            else:
                self.scalar_bind[p] = fast.clone(actual)

    def _array_binding(self, formal: str, actual: fast.Expr) -> ArrayBinding:
        rank = len(self.ann_dims[formal])
        if isinstance(actual, fast.Var):
            if self.caller_table is not None:
                info = self.caller_table.declared(actual.name)
                if info is not None and info.dims is not None \
                        and len(info.dims) != rank:
                    raise AnnotationError(
                        f"{self.ann.name}: array formal {formal} has rank "
                        f"{rank} but actual {actual.name} has rank "
                        f"{len(info.dims)}")
            return ArrayBinding(actual.name.upper(),
                                (fast.IntLit(1),) * rank, tuple())
        if isinstance(actual, fast.ArrayRef):
            subs = actual.subs
            if len(subs) < rank:
                raise AnnotationError(
                    f"{self.ann.name}: actual {actual.name} has fewer "
                    f"subscripts than formal {formal}'s rank {rank}")
            return ArrayBinding(actual.name.upper(),
                                tuple(subs[:rank]), tuple(subs[rank:]))
        raise AnnotationError(
            f"{self.ann.name}: array formal {formal} bound to a "
            f"non-array expression")

    def _collect_locals(self) -> None:
        """Annotation-declared locals (typed declarations of non-formals)
        and loop variables are renamed site-uniquely."""
        params = {p.upper() for p in self.ann.params}

        def scan(stmts: Sequence[aast.AnnStmt]) -> None:
            for s in stmts:
                if isinstance(s, aast.ADecl) and s.typename:
                    for e in s.entities:
                        if e.name.upper() not in params:
                            self.local_rename[e.name.upper()] = \
                                self._suffix(e.name.upper())
                elif isinstance(s, aast.ADo):
                    self.local_rename[s.var.upper()] = \
                        self._suffix(s.var.upper())
                    scan(s.body)
                elif isinstance(s, aast.AIf):
                    scan(s.then)
                    scan(s.els)

        scan(self.ann.body)

    # ------------------------------------------------------------------
    def run(self) -> Translation:
        stmts = self._stmts(self.ann.body)
        return Translation(stmts, self.decls, self.captures)

    def _stmts(self, body: Sequence[aast.AnnStmt]) -> List[fast.Stmt]:
        out: List[fast.Stmt] = []
        for s in body:
            out.extend(self._stmt(s))
        return out

    def _stmt(self, s: aast.AnnStmt) -> List[fast.Stmt]:
        if isinstance(s, aast.AAssign):
            return self._assign(s)
        if isinstance(s, aast.AIf):
            pre: List[fast.Stmt] = []
            cond = self._expr(s.cond, pre)
            arms: List[Tuple[Optional[fast.Expr], List[fast.Stmt]]] = [
                (cond, self._stmts(s.then))]
            if s.els:
                arms.append((None, self._stmts(s.els)))
            return pre + [fast.IfBlock(arms)]
        if isinstance(s, aast.ADo):
            pre = []
            start = self._expr(s.start, pre)
            stop = self._expr(s.stop, pre)
            step = self._expr(s.step, pre) if s.step is not None else None
            var = self.local_rename[s.var.upper()]
            body = self._stmts(s.body)
            return pre + [fast.DoLoop(var, start, stop, step, body)]
        if isinstance(s, aast.ADecl):
            return self._decl(s)
        if isinstance(s, aast.AReturn):
            raise AnnotationError(
                f"{self.ann.name}: 'return' is only meaningful for "
                f"function annotations, which this pipeline does not "
                f"inline")
        raise AnnotationError(f"unsupported annotation statement {s!r}")

    def _decl(self, s: aast.ADecl) -> List[fast.Stmt]:
        params = {p.upper() for p in self.ann.params}
        for e in s.entities:
            name = e.name.upper()
            if name in params:
                continue  # formal shape declarations guide binding only
            if s.typename:
                self.decls.append(fast.TypeDecl(
                    s.typename,
                    [fast.Entity(self.local_rename.get(name, name),
                                 e.dims)]))
            elif self.caller_table is not None \
                    and self.caller_table.declared(name) is None \
                    and not self.pattern_mode:
                # a global the caller does not declare: supply the shape
                self.decls.append(fast.DimensionDecl(
                    [fast.Entity(name, e.dims)]))
        return []

    # ------------------------------------------------------------------
    def _assign(self, s: aast.AAssign) -> List[fast.Stmt]:
        """Lower one annotation assignment.

        Multi-target assignments (grammar: ``vars = unknown(...)``) lower
        the special-operator RHS once (one capture array) and assign each
        target a distinct capture element; region or whole-array targets
        each expand into their own generated loops broadcasting the value.
        Single-target assignments with regions on both sides (the MATMLT
        form) substitute the target's generated loop variables
        positionally into the RHS regions before translation.
        """
        if isinstance(s.value, (aast.Unknown, aast.Unique)):
            pre: List[fast.Stmt] = []
            value = self._expr(s.value, pre)
            out = list(pre)
            for t_index, target in enumerate(s.targets):
                tvalue = value
                if len(s.targets) > 1:
                    tvalue = self._retarget_capture(value, t_index)
                out.extend(self._lower_target(target, tvalue, rhs_raw=None))
            return out
        if len(s.targets) != 1:
            raise AnnotationError(
                f"{self.ann.name}: multi-target assignment requires an "
                f"unknown()/unique() right-hand side")
        return self._lower_target(s.targets[0], None, rhs_raw=s.value)

    def _retarget_capture(self, value: fast.Expr, t_index: int) -> fast.Expr:
        """For ``(a,b,c) = unknown(...)`` each target reads a distinct
        element of the capture array (modulo its size)."""
        if isinstance(value, fast.ArrayRef) and is_capture_array(value.name):
            size = self._capture_size(value.name)
            idx = (t_index % size) + 1
            return fast.ArrayRef(value.name, (fast.IntLit(idx),))
        return fast.clone(value)

    def _capture_size(self, name: str) -> int:
        for d in self.decls:
            if isinstance(d, fast.TypeDecl) \
                    and d.entities[0].name == name \
                    and d.entities[0].dims:
                upper = d.entities[0].dims[0].upper
                if isinstance(upper, fast.IntLit):
                    return upper.value
        return 1

    def _lower_target(self, target: fast.Expr,
                      value_translated: Optional[fast.Expr],
                      rhs_raw: Optional[fast.Expr]) -> List[fast.Stmt]:
        """Emit the statements assigning one target.

        Exactly one of ``value_translated`` (an already-lowered capture
        read) and ``rhs_raw`` (an untranslated annotation expression) is
        given.
        """
        # normalize the target to (name, raw subscript tuple or None)
        if isinstance(target, fast.Var):
            name = target.name.upper()
            if name in self.scalar_bind or (
                    not self._is_known_array(name)
                    and name not in self.array_bind):
                # plain scalar target
                return self._point_assign(target, value_translated, rhs_raw)
            rank = (len(self.ann_dims[name]) if name in self.array_bind
                    else self._array_rank(name))
            subs: Tuple[fast.Expr, ...] = tuple(
                fast.RangeExpr(None, None) for _ in range(rank))
        elif isinstance(target, fast.ArrayRef):
            name = target.name.upper()
            subs = target.subs
        else:
            raise AnnotationError(f"bad assignment target {target!r}")

        if not any(isinstance(x, fast.RangeExpr) for x in subs):
            return self._point_assign(fast.ArrayRef(name, subs),
                                      value_translated, rhs_raw)

        # region target: build generated loops over the region extents
        loops: List[Tuple[str, fast.Expr, fast.Expr]] = []
        point_subs: List[fast.Expr] = []
        for k, sub in enumerate(subs):
            if isinstance(sub, fast.RangeExpr):
                lo_raw, hi_raw = self._region_bounds_raw(name, k, sub)
                self.loopvar_counter += 1
                var = self._suffix(f"Z{self.loopvar_counter}")
                pre_b: List[fast.Stmt] = []
                lo = self._expr(lo_raw, pre_b)
                hi = self._expr(hi_raw, pre_b)
                if pre_b:
                    raise AnnotationError(
                        f"{self.ann.name}: region bounds of {name} may "
                        f"not contain unknown()")
                loops.append((var, lo, hi))
                point_subs.append(fast.Var(var))
            else:
                point_subs.append(sub)

        if rhs_raw is not None:
            rhs_raw = self._substitute_rhs_regions(rhs_raw, loops)
        pre: List[fast.Stmt] = []
        if rhs_raw is not None:
            value = self._expr(rhs_raw, pre)
        else:
            value = fast.clone(value_translated)
        mapped = self._map_array_ref(name, tuple(point_subs), pre)
        stmt: fast.Stmt = fast.Assign(mapped, value)
        for var, lo, hi in reversed(loops):
            stmt = fast.DoLoop(var, lo, hi, None, [stmt])
        return pre + [stmt]

    def _point_assign(self, target: fast.Expr,
                      value_translated: Optional[fast.Expr],
                      rhs_raw: Optional[fast.Expr]) -> List[fast.Stmt]:
        pre: List[fast.Stmt] = []
        if rhs_raw is not None:
            value = self._expr(rhs_raw, pre)
        else:
            value = fast.clone(value_translated)
        if isinstance(target, fast.Var):
            name = target.name.upper()
            if name in self.scalar_bind:
                bound = self.scalar_bind[name]
                if isinstance(bound, (fast.Var, fast.ArrayRef)):
                    return pre + [fast.Assign(fast.clone(bound), value)]
                raise AnnotationError(
                    f"{self.ann.name}: cannot assign through formal "
                    f"{name} bound to an expression")
            return pre + [fast.Assign(
                fast.Var(self.local_rename.get(name, name)), value)]
        assert isinstance(target, fast.ArrayRef)
        mapped = self._map_array_ref(target.name.upper(), target.subs, pre)
        if not isinstance(mapped, fast.ArrayRef):
            raise AnnotationError(
                f"bad array assignment target {target.name}")
        return pre + [fast.Assign(mapped, value)]

    def _substitute_rhs_regions(
            self, value: fast.Expr,
            loops: List[Tuple[str, fast.Expr, fast.Expr]]) -> fast.Expr:
        """Positionally substitute the target's generated loop variables
        into region reads on the RHS (the MATMLT form).  Regions inside
        unknown()/unique() operands are left intact — they lower into
        capture-array writes where a region read is meaningful on its
        own."""

        def rewrite(e: fast.Expr) -> Optional[fast.Expr]:
            if isinstance(e, (aast.Unknown, aast.Unique)):
                return e  # children already rebuilt; regions inside stay
            if isinstance(e, fast.ArrayRef) and any(
                    isinstance(x, fast.RangeExpr) for x in e.subs):
                regions = [x for x in e.subs
                           if isinstance(x, fast.RangeExpr)]
                if len(regions) != len(loops):
                    raise AnnotationError(
                        f"{self.ann.name}: RHS region on {e.name} does "
                        f"not match the target's region count")
                it = iter(loops)
                new = tuple(fast.Var(next(it)[0])
                            if isinstance(x, fast.RangeExpr) else x
                            for x in e.subs)
                return fast.ArrayRef(e.name, new)
            return None

        # map_expr rebuilds bottom-up, so guard Unknown/Unique by
        # substituting on a shallow copy that hides their args
        hidden: List[fast.Expr] = []

        def hide(e: fast.Expr) -> Optional[fast.Expr]:
            if isinstance(e, (aast.Unknown, aast.Unique)):
                hidden.append(e)
                return fast.Var(f"HIDDEN${len(hidden) - 1}")
            return None

        def unhide(e: fast.Expr) -> Optional[fast.Expr]:
            if isinstance(e, fast.Var) and e.name.startswith("HIDDEN$"):
                return hidden[int(e.name[7:])]
            return None

        value = fast.map_expr(value, hide)
        value = fast.map_expr(value, rewrite)
        return fast.map_expr(value, unhide)

    def _region_bounds_raw(self, name: str, dim_index: int,
                           sub: fast.RangeExpr
                           ) -> Tuple[fast.Expr, fast.Expr]:
        """Raw (untranslated) bounds of one region dimension.  Bounds for
        array formals are in the *formal's* index space — the point
        reference produced under the generated loops maps through the
        binding offsets afterwards."""
        if sub.lo is not None and sub.hi is not None:
            return fast.clone(sub.lo), fast.clone(sub.hi)
        dims = self._declared_dims(name)
        if dims is None or dim_index >= len(dims) \
                or dims[dim_index].upper is None:
            raise AnnotationError(
                f"{self.ann.name}: cannot determine the extent of "
                f"dimension {dim_index + 1} of {name}")
        d = dims[dim_index]
        lo = fast.clone(sub.lo) if sub.lo is not None else fast.clone(d.lower)
        hi = fast.clone(sub.hi) if sub.hi is not None else fast.clone(d.upper)
        return lo, hi

    def _declared_dims(self, name: str):
        name = name.upper()
        if name in self.ann_dims:
            return self.ann_dims[name]
        if self.caller_table is not None:
            info = self.caller_table.declared(name)
            if info is not None:
                return info.dims
        return None

    def _is_known_array(self, name: str) -> bool:
        dims = self._declared_dims(name)
        return dims is not None

    def _array_rank(self, name: str) -> int:
        dims = self._declared_dims(name)
        return len(dims) if dims else 1

    # -- expressions -------------------------------------------------------
    def _expr(self, e: Optional[fast.Expr],
              pre: List[fast.Stmt]) -> fast.Expr:
        """Translate an annotation expression, appending capture writes for
        ``unknown`` occurrences to ``pre``."""
        if e is None:
            raise AnnotationError("missing expression")
        if isinstance(e, aast.Unknown):
            return self._lower_unknown(e, pre)
        if isinstance(e, aast.Unique):
            return self._lower_unique(e, pre)
        if isinstance(e, fast.Var):
            name = e.name.upper()
            if name in self.scalar_bind:
                return fast.clone(self.scalar_bind[name])
            if name in self.array_bind:
                return fast.Var(self.array_bind[name].name)
            return fast.Var(self.local_rename.get(name, name))
        if isinstance(e, fast.ArrayRef):
            return self._map_array_ref(e.name.upper(), e.subs, pre)
        if isinstance(e, fast.FuncRef):
            return fast.FuncRef(e.name, tuple(self._expr(a, pre)
                                              for a in e.args))
        if isinstance(e, fast.BinOp):
            return fast.BinOp(e.op, self._expr(e.left, pre),
                              self._expr(e.right, pre))
        if isinstance(e, fast.UnOp):
            return fast.UnOp(e.op, self._expr(e.operand, pre))
        if isinstance(e, fast.RangeExpr):
            lo = self._expr(e.lo, pre) if e.lo is not None else None
            hi = self._expr(e.hi, pre) if e.hi is not None else None
            return fast.RangeExpr(lo, hi)
        return fast.clone(e)  # literals

    def _map_array_ref(self, name: str, subs: Tuple[fast.Expr, ...],
                       pre: List[fast.Stmt]) -> fast.Expr:
        """Translate one array reference, applying formal bindings.

        Subscript translation is idempotent for generated loop variables,
        so callers may pass a mixture of raw annotation subscripts and
        already-generated ``Z<k>$A<site>`` variables.  A region subscript
        that reaches a bound formal is materialized against the formal's
        declared extent and offset into the actual's index space.
        """
        subs = tuple(self._expr(x, pre) for x in subs)
        if name in self.array_bind:
            binding = self.array_bind[name]
            if self.pattern_mode:
                return fast.ArrayRef(binding.name, subs)
            fdims = self.ann_dims[name]
            mapped: List[fast.Expr] = []
            for k, sub in enumerate(subs):
                b = binding.base[k]
                mapped.append(self._offset_binding_sub(name, fdims, k,
                                                       sub, b))
            mapped.extend(fast.clone(t) for t in binding.trailing)
            return fast.ArrayRef(binding.name, tuple(mapped))
        if name in self.scalar_bind:
            raise AnnotationError(
                f"{self.ann.name}: scalar formal {name} used with "
                f"subscripts")
        return fast.ArrayRef(self.local_rename.get(name, name), subs)

    def _offset_binding_sub(self, formal: str, fdims, k: int,
                            sub: fast.Expr, b: fast.Expr) -> fast.Expr:
        def offset(e: fast.Expr) -> fast.Expr:
            if b == fast.IntLit(1):
                return e
            return fast.BinOp("+", e, fast.BinOp(
                "-", fast.clone(b), fast.IntLit(1)))

        if isinstance(sub, fast.RangeExpr):
            lo = sub.lo
            hi = sub.hi
            # materialize missing bounds from the formal's declared dims,
            # translating them into caller terms (they usually mention
            # other formals, e.g. dimension M1[L,M])
            if lo is None:
                lo = self._expr(fast.clone(fdims[k].lower), [])
            if hi is None:
                if fdims[k].upper is None:
                    raise AnnotationError(
                        f"{self.ann.name}: region on assumed-size "
                        f"dimension of formal {formal}")
                hi = self._expr(fast.clone(fdims[k].upper), [])
            return fast.RangeExpr(offset(lo), offset(hi))
        return offset(sub)

    def _lower_unknown(self, e: aast.Unknown,
                       pre: List[fast.Stmt]) -> fast.Expr:
        self.unknown_counter += 1
        name = self._suffix(f"GU{self.unknown_counter}")
        size = max(1, len(e.args))
        self.decls.append(fast.TypeDecl(
            "DOUBLE PRECISION",
            [fast.Entity(name, (fast.Dim.upto(fast.IntLit(size)),))]))
        self.captures.append(name)
        for k, arg in enumerate(e.args, start=1):
            pre.append(fast.Assign(fast.ArrayRef(name, (fast.IntLit(k),)),
                                   self._expr(arg, pre)))
        return fast.ArrayRef(name, (fast.IntLit(1),))

    def _lower_unique(self, e: aast.Unique,
                      pre: List[fast.Stmt]) -> fast.Expr:
        if not e.args:
            raise AnnotationError("unique() needs at least one operand")
        base = self.opts.unique_base
        n = len(e.args)
        total: Optional[fast.Expr] = None
        for i, arg in enumerate(e.args):
            translated = self._expr(arg, pre)
            weight = base ** (n - 1 - i)
            term = translated if weight == 1 else fast.BinOp(
                "*", fast.IntLit(weight), translated)
            total = term if total is None else fast.BinOp("+", total, term)
        assert total is not None
        return total


def translate_call(ann: aast.ASubroutine,
                   actuals: Sequence[fast.Expr],
                   caller_table: Optional[SymbolTable],
                   site_id: int,
                   opts: Optional[TranslateOptions] = None,
                   pattern_mode: bool = False) -> Translation:
    """Instantiate ``ann`` for a call with ``actuals`` at ``site_id``.

    With ``pattern_mode`` the actuals are ignored and formals become
    ``PAT$`` placeholders (the reverse inliner's template).
    """
    return _Translator(ann, actuals, caller_table, site_id,
                       opts or TranslateOptions(), pattern_mode).run()
