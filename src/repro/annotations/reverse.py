"""The reverse inliner (Section III-C3).

For every :class:`~repro.fortran.ast.TaggedBlock` left in the optimized
program, the reverse inliner

1. regenerates the *matching template* for the callee's annotation with
   ``PAT$`` placeholders for the formals (same ``site_id``, so generated
   names — capture arrays, region loop variables, renamed locals — are
   byte-identical to what the forward inliner emitted);
2. unifies the template against the observed (optimized) block body.  The
   matcher tolerates exactly the transformations our Polaris applies:

   * OpenMP directives inserted inside the block (unwrapped and dropped);
   * statement reordering (backtracking multiset match);
   * constant propagation and expression reassociation (equivalence is
     checked at the symbolic-polynomial level);
   * forward substitution of block-local definitions (template-side
     definition unfolding);

3. derives the actual arguments from the unification bindings, cross-checks
   them against the actuals recorded in the tag, and replaces the block
   with the original ``CALL``.

A block that cannot be matched raises
:class:`~repro.errors.ReverseInlineError` — the reverse inliner never
silently emits wrong code.  Afterwards the generated declarations
(capture arrays etc.) are removed from the unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.symbolic import exprs_equivalent, from_expr
from repro.annotations.registry import AnnotationRegistry
from repro.annotations.translate import (PATTERN_PREFIX, TranslateOptions,
                                         is_generated_name, translate_call)
from repro.errors import ReverseInlineError
from repro.fortran import ast
from repro.program import Program

_MAX_UNFOLD_DEPTH = 4


@dataclass
class _ArrayMatch:
    name: str
    #: per-dimension base subscripts (None until first subscripted use)
    base: Optional[Tuple[ast.Expr, ...]]
    trailing: Tuple[ast.Expr, ...]


@dataclass
class _Env:
    scalars: Dict[str, ast.Expr] = field(default_factory=dict)
    arrays: Dict[str, _ArrayMatch] = field(default_factory=dict)

    def copy(self) -> "_Env":
        return _Env(dict(self.scalars),
                    {k: _ArrayMatch(v.name, v.base, v.trailing)
                     for k, v in self.arrays.items()})

    def restore(self, other: "_Env") -> None:
        self.scalars = other.scalars
        self.arrays = other.arrays


@dataclass
class ReverseSite:
    caller: str
    callee: str
    site_id: int
    actuals: Tuple[ast.Expr, ...]
    dropped_inner_directives: int
    #: False when the matcher-derived actuals differ from the recorded
    #: ones — legal when normalization (forward substitution, constant
    #: propagation) rewrote the caller, but worth surfacing
    derived_agrees: bool = True


@dataclass
class ReverseResult:
    sites: List[ReverseSite] = field(default_factory=list)

    @property
    def reversed_count(self) -> int:
        return len(self.sites)

    @property
    def dropped_inner_directives(self) -> int:
        return sum(s.dropped_inner_directives for s in self.sites)


@dataclass
class ReverseInliner:
    registry: AnnotationRegistry
    options: TranslateOptions = field(default_factory=TranslateOptions)
    #: when True, a formal whose actual can be derived neither from the
    #: match nor from the recorded tag is fatal (it always should be)
    strict: bool = True

    def run(self, program: Program) -> ReverseResult:
        result = ReverseResult()
        for unit in program.units:
            self._unit(program, unit, result)
        program.resolve()
        return result

    # ------------------------------------------------------------------
    def _unit(self, program: Program, unit: ast.ProgramUnit,
              result: ReverseResult) -> None:
        changed = [False]

        table = program.symtab(unit)

        def replace(s: ast.Stmt) -> Optional[List[ast.Stmt]]:
            if not isinstance(s, ast.TaggedBlock):
                return None
            call = self._reverse_block(unit.name, s, result, table)
            changed[0] = True
            return [call]

        unit.body = ast.map_stmts(unit.body, replace)
        if changed[0]:
            self._drop_generated_decls(unit)
            self._scrub_clauses(unit)
            program.invalidate(unit)

    def _scrub_clauses(self, unit: ast.ProgramUnit) -> None:
        """Remove generated names (capture arrays, region loop variables)
        from PRIVATE clauses of directives that survive reversal.  The
        remaining names are real program variables; the runtime honours
        their privatization throughout the dynamic extent of the loop,
        including inside the restored calls."""
        for s in ast.walk_stmts(unit.body):
            if isinstance(s, ast.OmpParallelDo):
                s.private = tuple(n for n in s.private
                                  if not is_generated_name(n))

    def _drop_generated_decls(self, unit: ast.ProgramUnit) -> None:
        kept: List[ast.Decl] = []
        for d in unit.decls:
            entities = getattr(d, "entities", None)
            if entities is not None:
                remaining = [e for e in entities
                             if not is_generated_name(e.name)]
                if not remaining:
                    continue
                d.entities = remaining
            kept.append(d)
        unit.decls = kept

    # ------------------------------------------------------------------
    def _reverse_block(self, caller_name: str, tb: ast.TaggedBlock,
                       result: ReverseResult, table=None) -> ast.CallStmt:
        ann = self.registry.get(tb.callee)
        if ann is None:
            raise ReverseInlineError(
                f"{caller_name}: no annotation for tagged callee "
                f"{tb.callee} (site {tb.site_id})")
        template = translate_call(ann, (), table, tb.site_id, self.options,
                                  pattern_mode=True).stmts
        observed, dropped = _strip_omp(tb.body)
        env = _Env()
        defs = _collect_defs(template)
        matcher = _Matcher(defs)
        if not matcher.match_block(template, observed, env):
            raise ReverseInlineError(
                f"{caller_name}: tagged block for {tb.callee} "
                f"(site {tb.site_id}) does not match its annotation "
                f"template; refusing to reverse-inline")
        actuals, agrees = self._derive_actuals(ann, env, tb)
        result.sites.append(ReverseSite(caller_name, tb.callee, tb.site_id,
                                        actuals, dropped, agrees))
        return ast.CallStmt(tb.callee, actuals, tb.label)

    def _derive_actuals(self, ann, env: _Env, tb: ast.TaggedBlock):
        """The matcher-derived actuals, cross-checked against the tag.

        The recorded actual is preferred when both are available: it is
        the literal original call expression, while the derived one may
        reflect normalizations (``ID`` forward-substituted to
        ``IDBEGS(ISS)+1+K``) that are equivalent but noisier.  Genuine
        divergence is surfaced via ``derived_agrees``.
        """
        recorded = tb.actuals
        out: List[ast.Expr] = []
        agrees = True
        dims = ann.declared_dims()
        for k, p in enumerate(ann.params):
            p = p.upper()
            derived: Optional[ast.Expr] = None
            if p in dims:
                m = env.arrays.get(p)
                if m is not None:
                    derived = _array_actual(m)
            else:
                derived = env.scalars.get(p)
            rec = recorded[k] if k < len(recorded) else None
            if derived is None and rec is None:
                if self.strict:
                    raise ReverseInlineError(
                        f"cannot derive actual for formal {p} of "
                        f"{tb.callee} (site {tb.site_id})")
                derived = ast.Var(p)
            if derived is not None and rec is not None \
                    and not _actuals_agree(derived, rec):
                agrees = False
            out.append(ast.clone(rec) if rec is not None else derived)
        return tuple(out), agrees


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _strip_omp(body: Sequence[ast.Stmt]) -> Tuple[List[ast.Stmt], int]:
    dropped = [0]

    def unwrap(s: ast.Stmt) -> Optional[List[ast.Stmt]]:
        if isinstance(s, ast.OmpParallelDo):
            dropped[0] += 1
            return [s.loop]
        return None

    return ast.map_stmts(list(body), unwrap), dropped[0]


def _collect_defs(template: Sequence[ast.Stmt]) -> Dict[str, ast.Expr]:
    """Template-local scalar definitions available for unfolding (our
    forward substitution rewrites *uses*, keeping the defining
    assignment)."""
    defs: Dict[str, ast.Expr] = {}
    for s in ast.walk_stmts(template):
        if isinstance(s, ast.Assign) and isinstance(s.target, ast.Var):
            name = s.target.name.upper()
            if name in defs:
                defs.pop(name)  # multiply-defined: not safe to unfold
            else:
                defs[name] = s.value
    return defs


def _array_actual(m: _ArrayMatch) -> ast.Expr:
    if m.base is None or (not m.trailing and all(
            b == ast.IntLit(1) for b in m.base)):
        return ast.Var(m.name)
    return ast.ArrayRef(m.name, tuple(ast.clone(b) for b in m.base)
                        + tuple(ast.clone(t) for t in m.trailing))


def _actuals_agree(derived: ast.Expr, recorded: ast.Expr) -> bool:
    if exprs_equivalent(derived, recorded):
        return True
    # Var(A) vs A(1,1,...): both denote the array's first element region
    for whole, element in ((derived, recorded), (recorded, derived)):
        if isinstance(whole, ast.Var) and isinstance(element, ast.ArrayRef) \
                and whole.name.upper() == element.name.upper() \
                and all(sub == ast.IntLit(1) for sub in element.subs):
            return True
    return False


def _has_pattern(e: ast.Expr) -> bool:
    for n in ast.walk_expr(e):
        if isinstance(n, (ast.Var, ast.ArrayRef)) \
                and n.name.upper().startswith(PATTERN_PREFIX):
            return True
    return False


class _Matcher:
    def __init__(self, defs: Dict[str, ast.Expr]):
        self.defs = defs

    # -- statements ------------------------------------------------------
    def match_block(self, template: Sequence[ast.Stmt],
                    observed: Sequence[ast.Stmt], env: _Env) -> bool:
        if len(template) != len(observed):
            return False
        return self._backtrack(list(template), list(observed), 0,
                               [False] * len(observed), env)

    def _backtrack(self, template, observed, ti, used, env) -> bool:
        if ti == len(template):
            return True
        for oi in range(len(observed)):
            if used[oi]:
                continue
            snapshot = env.copy()
            if self.match_stmt(template[ti], observed[oi], env):
                used[oi] = True
                if self._backtrack(template, observed, ti + 1, used, env):
                    return True
                used[oi] = False
            env.restore(snapshot)
        return False

    def match_stmt(self, t: ast.Stmt, o: ast.Stmt, env: _Env) -> bool:
        if isinstance(o, ast.OmpParallelDo):
            o = o.loop
        if isinstance(t, ast.Assign) and isinstance(o, ast.Assign):
            return (self.match_expr(t.target, o.target, env)
                    and self.match_expr(t.value, o.value, env))
        if isinstance(t, ast.DoLoop) and isinstance(o, ast.DoLoop):
            if t.var.upper() != o.var.upper():
                return False
            if not self.match_expr(t.start, o.start, env):
                return False
            if not self.match_expr(t.stop, o.stop, env):
                return False
            if (t.step is None) != (o.step is None):
                # a dropped unit step is equivalent to step 1
                step_t = t.step if t.step is not None else ast.IntLit(1)
                step_o = o.step if o.step is not None else ast.IntLit(1)
                if not self.match_expr(step_t, step_o, env):
                    return False
            elif t.step is not None and not self.match_expr(
                    t.step, o.step, env):
                return False
            return self.match_block(t.body, o.body, env)
        if isinstance(t, ast.IfBlock) and isinstance(o, ast.IfBlock):
            if len(t.arms) != len(o.arms):
                return False
            for (tc, tb), (oc, ob) in zip(t.arms, o.arms):
                if (tc is None) != (oc is None):
                    return False
                if tc is not None and not self.match_expr(tc, oc, env):
                    return False
                if not self.match_block(tb, ob, env):
                    return False
            return True
        if isinstance(t, ast.Continue) and isinstance(o, ast.Continue):
            return True
        return False

    # -- expressions -------------------------------------------------------
    def match_expr(self, t: ast.Expr, o: ast.Expr, env: _Env,
                   depth: int = 0) -> bool:
        t = self._resolve(t, env)
        if not _has_pattern(t):
            if exprs_equivalent(t, o):
                return True
            return self._match_unfolding(t, o, env, depth)
        if isinstance(t, ast.Var) and t.name.upper().startswith(
                PATTERN_PREFIX):
            formal = t.name.upper()[len(PATTERN_PREFIX):]
            bound = env.scalars.get(formal)
            if bound is not None:
                return exprs_equivalent(bound, o)
            env.scalars[formal] = ast.clone(o)
            return True
        if isinstance(t, ast.ArrayRef) and t.name.upper().startswith(
                PATTERN_PREFIX):
            return self._match_array_pattern(t, o, env, depth)
        # structural recursion
        if isinstance(t, ast.BinOp) and isinstance(o, ast.BinOp) \
                and t.op == o.op:
            snapshot = env.copy()
            if self.match_expr(t.left, o.left, env, depth) \
                    and self.match_expr(t.right, o.right, env, depth):
                return True
            env.restore(snapshot)
        if isinstance(t, ast.UnOp) and isinstance(o, ast.UnOp) \
                and t.op == o.op:
            return self.match_expr(t.operand, o.operand, env, depth)
        if isinstance(t, ast.ArrayRef) \
                and isinstance(o, (ast.ArrayRef, ast.FuncRef)) \
                and t.name.upper() == o.name.upper():
            o_subs = o.subs if isinstance(o, ast.ArrayRef) else o.args
            if len(t.subs) == len(o_subs):
                snapshot = env.copy()
                if all(self.match_expr(ts, os_, env, depth)
                       for ts, os_ in zip(t.subs, o_subs)):
                    return True
                env.restore(snapshot)
        if isinstance(t, ast.FuncRef) and isinstance(o, (ast.FuncRef,
                                                         ast.ArrayRef)) \
                and t.name.upper() == o.name.upper():
            o_args = o.args if isinstance(o, ast.FuncRef) else o.subs
            if len(t.args) == len(o_args):
                snapshot = env.copy()
                if all(self.match_expr(ta, oa, env, depth)
                       for ta, oa in zip(t.args, o_args)):
                    return True
                env.restore(snapshot)
        if isinstance(t, ast.RangeExpr) and isinstance(o, ast.RangeExpr):
            for tp, op_ in ((t.lo, o.lo), (t.hi, o.hi), (t.step, o.step)):
                if (tp is None) != (op_ is None):
                    return False
                if tp is not None and not self.match_expr(tp, op_, env,
                                                          depth):
                    return False
            return True
        # arithmetic fallback: solve for a single unbound scalar pattern
        if self._match_linear(t, o, env):
            return True
        return self._match_unfolding(t, o, env, depth)

    # ------------------------------------------------------------------
    def _resolve(self, t: ast.Expr, env: _Env) -> ast.Expr:
        def rewrite(e: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(e, ast.Var) and e.name.upper().startswith(
                    PATTERN_PREFIX):
                bound = env.scalars.get(
                    e.name.upper()[len(PATTERN_PREFIX):])
                if bound is not None:
                    return ast.clone(bound)
            return None

        return ast.map_expr(ast.clone(t), rewrite)

    def _match_unfolding(self, t: ast.Expr, o: ast.Expr, env: _Env,
                         depth: int) -> bool:
        """Tolerate forward substitution: unfold template-local variable
        definitions and retry."""
        if depth >= _MAX_UNFOLD_DEPTH:
            return False
        unfolded = [False]

        def rewrite(e: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(e, ast.Var):
                name = e.name.upper()
                if is_generated_name(name) and name in self.defs:
                    unfolded[0] = True
                    return ast.clone(self.defs[name])
            return None

        t2 = ast.map_expr(ast.clone(t), rewrite)
        if not unfolded[0]:
            return False
        return self.match_expr(t2, o, env, depth + 1)

    def _match_array_pattern(self, t: ast.ArrayRef, o: ast.Expr,
                             env: _Env, depth: int) -> bool:
        formal = t.name.upper()[len(PATTERN_PREFIX):]
        if not isinstance(o, ast.ArrayRef):
            return False
        m = env.arrays.get(formal)
        if m is not None and m.name != o.name.upper():
            return False
        r = len(t.subs)
        if len(o.subs) < r:
            return False
        if any(isinstance(ts, ast.RangeExpr) for ts in t.subs):
            # region occurrence (capture-array operand): the forward
            # translation materialized bounds and offsets the template
            # cannot reconstruct — bind the array name only; point
            # occurrences elsewhere pin down the base offsets
            if m is None:
                env.arrays[formal] = _ArrayMatch(o.name.upper(), None, ())
            return True
        # resolve template subscripts; they must be pattern-free to derive
        # base offsets
        resolved: List[ast.Expr] = []
        for ts in t.subs:
            rs = self._resolve(ts, env)
            if _has_pattern(rs):
                # try matching subscripts pairwise first (binds patterns),
                # deriving base offsets only for pattern-free dims
                if not self.match_expr(rs, o.subs[len(resolved)], env,
                                       depth + 1):
                    return False
                rs = self._resolve(rs, env)
                if _has_pattern(rs):
                    return False
            resolved.append(rs)
        base: List[ast.Expr] = []
        for k in range(r):
            diff = from_expr(o.subs[k]) - from_expr(resolved[k])
            if any(is_generated_name(tok) for tok in diff.variables()):
                return False  # offset varies with a generated loop var
            base_poly = diff + from_expr(ast.IntLit(1))
            base.append(base_poly.to_expr())
        trailing = tuple(ast.clone(x) for x in o.subs[r:])
        if m is None:
            env.arrays[formal] = _ArrayMatch(o.name.upper(), tuple(base),
                                             trailing)
            return True
        if m.base is None:
            m.base = tuple(base)
            m.trailing = trailing
            return True
        if len(m.base) != len(base) or len(m.trailing) != len(trailing):
            return False
        for a, b in zip(m.base, base):
            if not exprs_equivalent(a, b):
                return False
        for a, b in zip(m.trailing, trailing):
            if not exprs_equivalent(a, b):
                return False
        return True

    def _match_linear(self, t: ast.Expr, o: ast.Expr, env: _Env) -> bool:
        """Solve ``poly(t) == poly(o)`` for exactly one unbound scalar
        pattern variable appearing linearly outside any atom."""
        t = self._resolve(t, env)
        pt = from_expr(t)
        po = from_expr(o)
        pattern_tokens = [tok for tok in pt.variables()
                          if tok.startswith(PATTERN_PREFIX)]
        if len(pattern_tokens) != 1:
            return False
        token = pattern_tokens[0]
        if pt.degree_in(token) != 1:
            return False
        coeff = pt.coeff(token)
        if coeff == 0:
            return False  # the pattern only occurs in nonlinear monomials
        rest = pt.without([token])
        residual = po - rest
        # residual must be divisible by coeff
        if any(c % coeff for c in residual.terms.values()):
            return False
        solved = type(residual)(
            {m: c // coeff for m, c in residual.terms.items()},
            dict(residual.atom_names))
        formal = token[len(PATTERN_PREFIX):]
        expr = solved.to_expr()
        bound = env.scalars.get(formal)
        if bound is not None:
            return exprs_equivalent(bound, expr)
        env.scalars[formal] = expr
        return True
