"""Parser for the Figure-12 annotation language.

Grammar (from the paper, concrete syntax of Figures 13/14/16):

    file        := annotation*
    annotation  := 'subroutine' NAME '(' [params] ')' block
    block       := '{' stmt* '}'
    stmt        := block
                 | 'if' '(' expr ')' stmt ['else' stmt]
                 | 'do' '(' NAME '=' expr ':' expr [':' expr] ')' stmt
                 | 'return' [expr] ';'
                 | type NAME entity (',' entity)* ';'
                 | 'dimension' entity (',' entity)* ';'
                 | targets '=' expr ';'
    targets     := var | '(' var (',' var)* ')'
    var         := NAME [ '[' subscripts ']' ]
    type        := 'integer' | 'real' | 'double' | 'logical'

Expressions are Fortran-like with C-style comparison spellings
(``==``, ``!=``, ``<`` ...), ``[ ]`` array references whose subscripts may
be regions (``*`` or ``lo:hi``), intrinsic calls with ``( )``, and the two
special operators ``unknown(...)`` / ``unique(...)``.  ``#`` starts a
line comment.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.annotations import ast as aast
from repro.errors import AnnotationError
from repro.fortran import ast as fast

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<real>\d+\.\d*([EDed][+-]?\d+)?|\d+[EDed][+-]?\d+|\.\d+)
  | (?P<int>\d+)
  | (?P<name>[A-Za-z][A-Za-z0-9_$]*)
  | (?P<op>\*\*|==|!=|<=|>=|&&|\|\||[-+*/<>=(){}\[\],;:!])
""", re.VERBOSE)

_KEYWORDS = {"SUBROUTINE", "FUNCTION", "IF", "ELSE", "DO", "RETURN",
             "DIMENSION", "INTEGER", "REAL", "DOUBLE", "LOGICAL",
             "UNKNOWN", "UNIQUE"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise AnnotationError(
                f"bad character {text[pos]!r} in annotation source")
        pos = m.end()
        if m.lastgroup == "ws" or (m.group().startswith("#")):
            continue
        kind = m.lastgroup
        value = m.group()
        if kind == "name":
            value = value.upper()
            if value in _KEYWORDS:
                tokens.append(("kw", value))
                continue
        tokens.append((kind, value))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.toks = _tokenize(text)
        self.i = 0

    # -- helpers -------------------------------------------------------
    def peek(self) -> Tuple[str, str]:
        return self.toks[self.i]

    def next(self) -> Tuple[str, str]:
        t = self.toks[self.i]
        self.i += 1
        return t

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        k, v = self.peek()
        return k == kind and (value is None or v == value)

    def expect(self, kind: str, value: Optional[str] = None) -> str:
        k, v = self.next()
        if k != kind or (value is not None and v != value):
            raise AnnotationError(
                f"expected {value or kind}, found {v!r} in annotation")
        return v

    # -- annotations -----------------------------------------------------
    def file(self) -> List[aast.ASubroutine]:
        out = []
        while not self.at("eof"):
            out.append(self.subroutine())
        return out

    def subroutine(self) -> aast.ASubroutine:
        self.expect("kw", "SUBROUTINE")
        name = self.expect("name")
        self.expect("op", "(")
        params: List[str] = []
        if not self.at("op", ")"):
            params.append(self.expect("name"))
            while self.at("op", ","):
                self.next()
                params.append(self.expect("name"))
        self.expect("op", ")")
        body = self.block()
        return aast.ASubroutine(name, params, body)

    def block(self) -> List[aast.AnnStmt]:
        self.expect("op", "{")
        stmts: List[aast.AnnStmt] = []
        while not self.at("op", "}"):
            stmts.extend(self.statement())
        self.expect("op", "}")
        return stmts

    def statement_or_block(self) -> List[aast.AnnStmt]:
        if self.at("op", "{"):
            return self.block()
        return self.statement()

    def statement(self) -> List[aast.AnnStmt]:
        k, v = self.peek()
        if k == "kw" and v == "IF":
            self.next()
            self.expect("op", "(")
            cond = self.expression()
            self.expect("op", ")")
            then = self.statement_or_block()
            els: List[aast.AnnStmt] = []
            if self.at("kw", "ELSE"):
                self.next()
                els = self.statement_or_block()
            return [aast.AIf(cond, then, els)]
        if k == "kw" and v == "DO":
            self.next()
            self.expect("op", "(")
            var = self.expect("name")
            self.expect("op", "=")
            start = self.expression()
            self.expect("op", ":")
            stop = self.expression()
            step = None
            if self.at("op", ":"):
                self.next()
                step = self.expression()
            self.expect("op", ")")
            body = self.statement_or_block()
            return [aast.ADo(var, start, stop, step, body)]
        if k == "kw" and v == "RETURN":
            self.next()
            value = None
            if not self.at("op", ";"):
                value = self.expression()
            self.expect("op", ";")
            return [aast.AReturn(value)]
        if k == "kw" and v in ("INTEGER", "REAL", "DOUBLE", "LOGICAL"):
            self.next()
            typename = {"DOUBLE": "DOUBLE PRECISION"}.get(v, v)
            entities = self.entity_list()
            self.expect("op", ";")
            return [aast.ADecl(typename, entities)]
        if k == "kw" and v == "DIMENSION":
            self.next()
            entities = self.entity_list()
            self.expect("op", ";")
            return [aast.ADecl("", entities)]
        # assignment
        targets = self.target_list()
        self.expect("op", "=")
        value = self.expression()
        self.expect("op", ";")
        return [aast.AAssign(targets, value)]

    def entity_list(self) -> List[fast.Entity]:
        entities = [self.entity()]
        while self.at("op", ","):
            self.next()
            entities.append(self.entity())
        return entities

    def entity(self) -> fast.Entity:
        name = self.expect("name")
        dims: Optional[Tuple[fast.Dim, ...]] = None
        if self.at("op", "["):
            self.next()
            out: List[fast.Dim] = []
            while True:
                if self.at("op", "*"):
                    self.next()
                    out.append(fast.Dim(fast.IntLit(1), None))
                else:
                    e = self.expression()
                    if self.at("op", ":"):
                        self.next()
                        hi = self.expression()
                        out.append(fast.Dim(e, hi))
                    else:
                        out.append(fast.Dim(fast.IntLit(1), e))
                if self.at("op", ","):
                    self.next()
                    continue
                break
            self.expect("op", "]")
            dims = tuple(out)
        return fast.Entity(name, dims)

    def target_list(self) -> Tuple[fast.Expr, ...]:
        if self.at("op", "("):
            self.next()
            targets = [self.var_ref()]
            while self.at("op", ","):
                self.next()
                targets.append(self.var_ref())
            self.expect("op", ")")
            return tuple(targets)
        return (self.var_ref(),)

    def var_ref(self) -> fast.Expr:
        name = self.expect("name")
        if self.at("op", "["):
            return self._finish_bracket_ref(name)
        return fast.Var(name)

    # -- expressions ---------------------------------------------------
    def expression(self) -> fast.Expr:
        return self._or()

    def _or(self) -> fast.Expr:
        e = self._and()
        while self.at("op", "||"):
            self.next()
            e = fast.BinOp(".OR.", e, self._and())
        return e

    def _and(self) -> fast.Expr:
        e = self._not()
        while self.at("op", "&&"):
            self.next()
            e = fast.BinOp(".AND.", e, self._not())
        return e

    def _not(self) -> fast.Expr:
        if self.at("op", "!") and not self.at("op", "!="):
            self.next()
            return fast.UnOp(".NOT.", self._not())
        return self._rel()

    _REL = {"==": "==", "!=": "/=", "<": "<", "<=": "<=",
            ">": ">", ">=": ">="}

    def _rel(self) -> fast.Expr:
        e = self._add()
        k, v = self.peek()
        if k == "op" and v in self._REL:
            self.next()
            return fast.BinOp(self._REL[v], e, self._add())
        return e

    def _add(self) -> fast.Expr:
        if self.at("op", "-"):
            self.next()
            e: fast.Expr = fast.UnOp("-", self._mul())
        elif self.at("op", "+"):
            self.next()
            e = self._mul()
        else:
            e = self._mul()
        while self.at("op", "+") or self.at("op", "-"):
            _, op = self.next()
            e = fast.BinOp(op, e, self._mul())
        return e

    def _mul(self) -> fast.Expr:
        e = self._pow()
        while self.at("op", "*") or self.at("op", "/"):
            _, op = self.next()
            e = fast.BinOp(op, e, self._pow())
        return e

    def _pow(self) -> fast.Expr:
        e = self._primary()
        if self.at("op", "**"):
            self.next()
            return fast.BinOp("**", e, self._pow())
        return e

    def _primary(self) -> fast.Expr:
        k, v = self.peek()
        if k == "int":
            self.next()
            return fast.IntLit(int(v))
        if k == "real":
            self.next()
            kind = "DOUBLE" if ("D" in v.upper()) else "REAL"
            return fast.RealLit(float(v.upper().replace("D", "E")), kind, v)
        if k == "op" and v == "(":
            self.next()
            e = self.expression()
            self.expect("op", ")")
            return e
        if k == "kw" and v in ("UNKNOWN", "UNIQUE"):
            self.next()
            self.expect("op", "(")
            args: List[fast.Expr] = []
            if not self.at("op", ")"):
                args.append(self.expression())
                while self.at("op", ","):
                    self.next()
                    args.append(self.expression())
            self.expect("op", ")")
            cls = aast.Unknown if v == "UNKNOWN" else aast.Unique
            return cls(tuple(args))
        if k == "name":
            self.next()
            if self.at("op", "["):
                return self._finish_bracket_ref(v)
            if self.at("op", "("):
                # intrinsic-style call, e.g. ABS(...)
                self.next()
                args = []
                if not self.at("op", ")"):
                    args.append(self.expression())
                    while self.at("op", ","):
                        self.next()
                        args.append(self.expression())
                self.expect("op", ")")
                return fast.FuncRef(v, tuple(args))
            return fast.Var(v)
        raise AnnotationError(f"unexpected token {v!r} in annotation "
                              f"expression")

    def _finish_bracket_ref(self, name: str) -> fast.ArrayRef:
        self.expect("op", "[")
        subs: List[fast.Expr] = []
        while True:
            if self.at("op", "*"):
                self.next()
                subs.append(fast.RangeExpr(None, None))
            else:
                e = self.expression()
                if self.at("op", ":"):
                    self.next()
                    hi = self.expression()
                    subs.append(fast.RangeExpr(e, hi))
                else:
                    subs.append(e)
            if self.at("op", ","):
                self.next()
                continue
            break
        self.expect("op", "]")
        return fast.ArrayRef(name, tuple(subs))


def parse_annotations(text: str) -> List[aast.ASubroutine]:
    """Parse annotation source text into a list of subroutine summaries."""
    return _Parser(text).file()


def parse_annotation_expr(text: str) -> fast.Expr:
    """Parse a standalone annotation expression (used by tests)."""
    p = _Parser(text)
    e = p.expression()
    if not p.at("eof"):
        raise AnnotationError(f"trailing tokens in {text!r}")
    return e
