"""Static consistency checks for annotations.

The paper notes (Section III-D) that annotation soundness is the user's
responsibility and is verified at runtime; these checks catch the
*mechanical* mistakes early:

* the annotation's formal list must match the subroutine's (when the
  source is available);
* every array formal used with subscripts needs a ``dimension``
  declaration in the annotation;
* subscript counts must match declared ranks;
* ``unique`` needs integer-valued operands (we check they are not real
  literals);
* ``return`` is rejected in subroutine annotations.

Runtime verification proper lives in :mod:`repro.runtime.difftest`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.annotations import ast as aast
from repro.annotations.ast import walk_ann_exprs
from repro.fortran import ast as fast
from repro.program import Program


def validate_annotation(ann: aast.ASubroutine,
                        program: Optional[Program] = None) -> List[str]:
    """Return a list of problem descriptions (empty when clean)."""
    problems: List[str] = []
    name = ann.name.upper()
    dims = ann.declared_dims()
    params = {p.upper() for p in ann.params}

    if program is not None and program.has_unit(name):
        unit = program.unit(name)
        declared = [p.upper() for p in unit.params]
        if declared != [p.upper() for p in ann.params]:
            problems.append(
                f"{name}: annotation formals {ann.params} do not match "
                f"the subroutine's {unit.params}")

    # return statements
    def scan_return(stmts) -> None:
        for s in stmts:
            if isinstance(s, aast.AReturn):
                problems.append(f"{name}: 'return' in a subroutine "
                                f"annotation")
            elif isinstance(s, aast.AIf):
                scan_return(s.then)
                scan_return(s.els)
            elif isinstance(s, aast.ADo):
                scan_return(s.body)

    scan_return(ann.body)

    for e in walk_ann_exprs(ann.body):
        if isinstance(e, fast.ArrayRef):
            ref = e.name.upper()
            if ref in params and ref not in dims:
                problems.append(
                    f"{name}: formal {ref} used with subscripts but has "
                    f"no dimension declaration")
            elif ref in dims and len(e.subs) != len(dims[ref]):
                problems.append(
                    f"{name}: {ref} referenced with {len(e.subs)} "
                    f"subscripts but declared with {len(dims[ref])}")
        elif isinstance(e, aast.Unique):
            if not e.args:
                problems.append(f"{name}: unique() with no operands")
            for a in e.args:
                if isinstance(a, fast.RealLit):
                    problems.append(
                        f"{name}: unique() operand must be integer-valued")
    return problems
