"""Annotation-based inlining — the paper's contribution.

* :mod:`repro.annotations.parser` — the Figure-12 annotation language;
* :mod:`repro.annotations.registry` — annotation database per subroutine;
* :mod:`repro.annotations.translate` — annotation -> Fortran lowering
  (``unknown`` -> fresh capture arrays, ``unique`` -> injective linear
  forms, array regions -> generated loops);
* :mod:`repro.annotations.inliner` — tagged substitution of call sites;
* :mod:`repro.annotations.reverse` — the pattern-matching reverse inliner.
"""

from repro.annotations.inliner import AnnotationInliner  # noqa: F401
from repro.annotations.parser import parse_annotations  # noqa: F401
from repro.annotations.registry import AnnotationRegistry  # noqa: F401
from repro.annotations.reverse import ReverseInliner  # noqa: F401
