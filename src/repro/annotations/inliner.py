"""Annotation-based inlining (Section III-C1).

Replaces CALL sites whose callee has an annotation with a
:class:`~repro.fortran.ast.TaggedBlock` containing the translated
annotation body.  The tags (callee name, site id, recorded actuals)
survive parallelization and drive the reverse inliner.

Unlike conventional inlining, this transformation:

* needs no callee source (only the annotation) — external-library and
  recursive subroutines qualify;
* never linearizes caller arrays (the annotation's own shape declarations
  drive the subscript remapping);
* is applied even to opaque compositional subroutines like the paper's
  FSMP.

When the callee's source *is* present in the program, its COMMON blocks
are merged into the caller so that global names used by the annotation
resolve to the right arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.annotations.registry import AnnotationRegistry
from repro.annotations.translate import TranslateOptions, translate_call
from repro.errors import AnnotationError, InlineError
from repro.fortran import ast
from repro.program import Program


@dataclass
class AnnotationSite:
    caller: str
    callee: str
    site_id: int
    inlined: bool
    reason: str = ""


@dataclass
class AnnotationInlineResult:
    sites: List[AnnotationSite] = field(default_factory=list)

    @property
    def inlined_count(self) -> int:
        return sum(1 for s in self.sites if s.inlined)


@dataclass
class AnnotationInliner:
    registry: AnnotationRegistry
    options: TranslateOptions = field(default_factory=TranslateOptions)
    #: inline only call sites inside loop nests (the Polaris site filter);
    #: annotation inlining is cheap, so by default all sites are taken
    require_loop_context: bool = False

    def run(self, program: Program) -> AnnotationInlineResult:
        result = AnnotationInlineResult()
        counter = [0]
        for unit in program.units:
            self._unit(program, unit, result, counter)
        program.resolve()
        return result

    # ------------------------------------------------------------------
    def _unit(self, program: Program, unit: ast.ProgramUnit,
              result: AnnotationInlineResult, counter: List[int]) -> None:
        changed = [False]

        def process(body: List[ast.Stmt], in_loop: bool) -> List[ast.Stmt]:
            out: List[ast.Stmt] = []
            for s in body:
                if isinstance(s, ast.DoLoop):
                    s.body[:] = process(s.body, True)
                    out.append(s)
                elif isinstance(s, ast.IfBlock):
                    for _, arm in s.arms:
                        arm[:] = process(arm, in_loop)
                    out.append(s)
                elif isinstance(s, ast.CallStmt) \
                        and s.name.upper() in self.registry \
                        and (in_loop or not self.require_loop_context):
                    block = self._site(program, unit, s, result, counter)
                    if block is None:
                        out.append(s)
                    else:
                        out.append(block)
                        changed[0] = True
                else:
                    out.append(s)
            return out

        unit.body = process(unit.body, False)
        if changed[0]:
            program.invalidate(unit)

    # ------------------------------------------------------------------
    def _site(self, program: Program, caller: ast.ProgramUnit,
              call: ast.CallStmt, result: AnnotationInlineResult,
              counter: List[int]) -> Optional[ast.TaggedBlock]:
        ann = self.registry.get(call.name)
        assert ann is not None
        counter[0] += 1
        site_id = counter[0]
        try:
            self._merge_callee_commons(program, caller, call.name)
            translation = translate_call(
                ann, call.args, program.symtab(caller), site_id,
                self.options)
        except (AnnotationError, InlineError) as exc:
            result.sites.append(AnnotationSite(
                caller.name, call.name.upper(), site_id, False, str(exc)))
            return None
        self._merge_decls(caller, translation.decls)
        program.invalidate(caller)
        result.sites.append(AnnotationSite(
            caller.name, call.name.upper(), site_id, True))
        return ast.TaggedBlock(call.name.upper(), site_id,
                               ast.clone(call.args), translation.stmts,
                               call.label)

    def _merge_callee_commons(self, program: Program,
                              caller: ast.ProgramUnit,
                              callee_name: str) -> None:
        callee = program.procedures.get(callee_name.upper())
        if callee is None:
            return  # external library routine: only the annotation exists
        caller_blocks = {d.block.upper() for d in
                         caller.find_decls(ast.CommonDecl)}
        merged = False
        for d in callee.find_decls(ast.CommonDecl):
            if d.block.upper() not in caller_blocks:
                caller.decls.append(ast.clone(d))
                merged = True
        if merged:
            program.invalidate(caller)

    def _merge_decls(self, caller: ast.ProgramUnit,
                     decls: List[ast.Decl]) -> None:
        existing: Set[str] = set()
        for d in caller.decls:
            for e in getattr(d, "entities", []) or []:
                existing.add(e.name.upper())
        for d in decls:
            entities = getattr(d, "entities", None)
            if entities and all(e.name.upper() in existing
                                for e in entities):
                continue
            caller.decls.append(d)
            for e in entities or []:
                existing.add(e.name.upper())
