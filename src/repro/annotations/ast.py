"""AST for the Figure-12 annotation language.

Expressions reuse the Fortran expression nodes
(:mod:`repro.fortran.ast`) plus two special operators:

* :class:`Unknown` — ``unknown(e1, ..., en)``: the result is computed from
  the operands in an arbitrary (unmodelled) way;
* :class:`Unique` — ``unique(x1, ..., xn)``: the result is a one-to-one
  function of the operands.

Array references in annotation source use ``[ ]`` brackets and may contain
Fortran-90 style regions (``*`` or ``lo:hi``); both parse into the
ordinary :class:`~repro.fortran.ast.ArrayRef`/:class:`~repro.fortran.ast.RangeExpr`
nodes so the translation layer can share machinery with the frontend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.fortran import ast as fast


@dataclass(eq=True)
class Unknown(fast.Expr):
    args: Tuple[fast.Expr, ...]


@dataclass(eq=True)
class Unique(fast.Expr):
    args: Tuple[fast.Expr, ...]


class AnnStmt:
    __slots__ = ()


@dataclass(eq=True)
class AAssign(AnnStmt):
    """Assignment; ``targets`` has several entries for the
    ``(a, b, c) = unknown(...)`` form."""

    targets: Tuple[fast.Expr, ...]
    value: fast.Expr


@dataclass(eq=True)
class AIf(AnnStmt):
    cond: fast.Expr
    then: List[AnnStmt]
    els: List[AnnStmt]


@dataclass(eq=True)
class ADo(AnnStmt):
    var: str
    start: fast.Expr
    stop: fast.Expr
    step: Optional[fast.Expr]
    body: List[AnnStmt]


@dataclass(eq=True)
class ADecl(AnnStmt):
    """``integer I, J;`` or ``dimension M1[L,M], M2[M,N];``  — typename is
    '' for bare DIMENSION declarations."""

    typename: str
    entities: List[fast.Entity]


@dataclass(eq=True)
class AReturn(AnnStmt):
    value: Optional[fast.Expr]


@dataclass(eq=True)
class ASubroutine:
    name: str
    params: List[str]
    body: List[AnnStmt]

    def declared_dims(self) -> dict:
        """Formal/global array shapes declared in the annotation."""
        dims = {}
        for s in self.body:
            if isinstance(s, ADecl):
                for e in s.entities:
                    if e.dims is not None:
                        dims[e.name.upper()] = e.dims
        return dims


def walk_ann_exprs(stmts: List[AnnStmt]):
    """Yield every expression node in an annotation statement list."""
    for s in stmts:
        if isinstance(s, AAssign):
            for t in s.targets:
                yield from fast.walk_expr(t)
            yield from fast.walk_expr(s.value)
        elif isinstance(s, AIf):
            yield from fast.walk_expr(s.cond)
            yield from walk_ann_exprs(s.then)
            yield from walk_ann_exprs(s.els)
        elif isinstance(s, ADo):
            yield from fast.walk_expr(s.start)
            yield from fast.walk_expr(s.stop)
            if s.step is not None:
                yield from fast.walk_expr(s.step)
            yield from walk_ann_exprs(s.body)
        elif isinstance(s, AReturn) and s.value is not None:
            yield from fast.walk_expr(s.value)


# register the extra expression nodes with the Fortran walker so generic
# traversals (walk_expr / map_expr) see their children
fast._EXPR_CHILD_FIELDS[Unknown] = ("args",)
fast._EXPR_CHILD_FIELDS[Unique] = ("args",)
