"""Annotation database.

Maps subroutine names to their :class:`~repro.annotations.ast.ASubroutine`
summaries.  The experiments attach one registry per benchmark application;
the annotation inliner and the reverse inliner both consult it (the
reverse inliner regenerates translation templates from the same source of
truth, which is what makes round-tripping deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.annotations.ast import ASubroutine
from repro.annotations.parser import parse_annotations
from repro.errors import AnnotationError


@dataclass
class AnnotationRegistry:
    annotations: Dict[str, ASubroutine] = field(default_factory=dict)

    @staticmethod
    def from_text(text: str) -> "AnnotationRegistry":
        reg = AnnotationRegistry()
        for ann in parse_annotations(text):
            reg.add(ann)
        return reg

    def add(self, ann: ASubroutine) -> None:
        name = ann.name.upper()
        if name in self.annotations:
            raise AnnotationError(f"duplicate annotation for {name}")
        self.annotations[name] = ann

    def get(self, name: str) -> Optional[ASubroutine]:
        return self.annotations.get(name.upper())

    def __contains__(self, name: str) -> bool:
        return name.upper() in self.annotations

    def __iter__(self) -> Iterator[ASubroutine]:
        return iter(self.annotations.values())

    def names(self) -> List[str]:
        return sorted(self.annotations)
