"""First-class annotation inference — the ``--annotations`` axis.

The paper's Section VI asks for techniques to *automatically derive*
the Figure-12 annotations.  :mod:`repro.annotations.generate` mechanizes
the per-subroutine derivation (read/write sets, region projection,
RMW-scalar inputs); this module promotes it into a whole-program
subsystem with explicit fallback semantics:

* for every subroutine the program calls, :func:`infer_annotations`
  produces an :class:`InferenceOutcome` — a hand-written annotation
  (when a registry is supplied and has one), an inferred annotation, or
  a recorded *fallback* with the refusal reason;
* inference adds one whole-program soundness check the per-body
  generator cannot do: a callee whose COMMON block is also passed to it
  as an actual argument is refused (``aliased COMMON``) — the derived
  summary would model the formal and the COMMON variable as distinct
  memory;
* fallback callees get **no** annotation: their call sites stay opaque,
  so the legality analyzer conservatively serializes enclosing loops —
  exactly the pre-inference behavior, now with the reason on record
  (surfaced as :class:`~repro.trace.decisions.SiteDecision` records by
  the pipeline).

The three axis values consumed by the experiment drivers:

``hand``
    only the benchmark's hand-written annotations (the default);
``inferred``
    only inferred annotations — hand-written ones are *ignored*, which
    measures how much of the paper's Table II the inference recovers;
``demand``
    hand-written annotations take precedence, inference fills the gaps,
    and nothing is inlined up front — the driver pulls summaries in
    on demand (:mod:`repro.inlining.demand`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.annotations import ast as aast
from repro.annotations.generate import generate_annotation
from repro.annotations.registry import AnnotationRegistry
from repro.fortran import ast as fast
from repro.program import Program

#: the CLI/service values of the annotations axis
ANNOTATION_MODES = ("hand", "inferred", "demand")

#: outcome sources, in precedence order
SOURCES = ("hand", "inferred", "fallback")


@dataclass
class InferenceOutcome:
    """What inference decided for one subroutine."""

    name: str
    source: str                                  # one of SOURCES
    annotation: Optional[aast.ASubroutine] = None
    reason: str = ""                             # set when source == fallback
    omitted_error_checks: int = 0

    @property
    def ok(self) -> bool:
        return self.annotation is not None


@dataclass
class InferenceReport:
    """All outcomes for one program, plus registry/statistics views."""

    outcomes: Dict[str, InferenceOutcome] = field(default_factory=dict)

    def registry(self) -> AnnotationRegistry:
        """An :class:`AnnotationRegistry` of every usable annotation
        (hand-written + inferred; fallbacks contribute nothing)."""
        registry = AnnotationRegistry()
        for name in sorted(self.outcomes):
            outcome = self.outcomes[name]
            if outcome.annotation is not None:
                registry.add(outcome.annotation)
        return registry

    def fallbacks(self) -> Dict[str, str]:
        """``{callee: refusal reason}`` for every conservative fallback."""
        return {name: o.reason for name, o in sorted(self.outcomes.items())
                if o.source == "fallback"}

    def counts(self) -> Dict[str, int]:
        out = {source: 0 for source in SOURCES}
        for outcome in self.outcomes.values():
            out[outcome.source] += 1
        return out

    def describe(self) -> str:
        counts = self.counts()
        parts = [f"{counts[s]} {s}" for s in SOURCES]
        return ", ".join(parts)


def infer_annotations(program: Program,
                      hand: Optional[AnnotationRegistry] = None
                      ) -> InferenceReport:
    """Infer annotations for every subroutine of ``program``.

    ``hand`` annotations (when given) take precedence per subroutine;
    inference only fills the gaps.  Pass ``hand=None`` for the pure
    ``inferred`` axis.  The program is not modified.
    """
    report = InferenceReport()
    for name, unit in sorted(program.procedures.items()):
        if unit.kind != "SUBROUTINE":
            continue
        if hand is not None and name in hand:
            report.outcomes[name] = InferenceOutcome(
                name, "hand", hand.get(name))
            continue
        hazard = _common_alias_hazard(program, name)
        if hazard is not None:
            report.outcomes[name] = InferenceOutcome(
                name, "fallback", reason=hazard)
            continue
        result = generate_annotation(program, name)
        if result.ok:
            report.outcomes[name] = InferenceOutcome(
                name, "inferred", result.annotation,
                omitted_error_checks=result.omitted_error_checks)
        else:
            report.outcomes[name] = InferenceOutcome(
                name, "fallback", reason=result.reason,
                omitted_error_checks=result.omitted_error_checks)
    # hand annotations for procedures without source (library units
    # compiled elsewhere) still apply — carry them through verbatim
    if hand is not None:
        for name in hand.names():
            if name not in report.outcomes:
                report.outcomes[name] = InferenceOutcome(
                    name, "hand", hand.get(name))
    return report


def _common_alias_hazard(program: Program, name: str) -> Optional[str]:
    """A caller passing a COMMON variable to a callee that declares the
    same COMMON block aliases two names the summary treats as distinct
    memory — refuse inference for such callees."""
    callee = program.procedures.get(name.upper())
    if callee is None:
        return None
    blocks = {d.block.upper()
              for d in callee.decls if isinstance(d, fast.CommonDecl)}
    if not blocks:
        return None
    target = name.upper()
    for unit in program.units:
        table = program.symtab(unit)
        for stmt in fast.walk_stmts(unit.body):
            if not isinstance(stmt, fast.CallStmt) \
                    or stmt.name.upper() != target:
                continue
            for arg in stmt.args:
                for e in fast.walk_expr(arg):
                    if not isinstance(e, (fast.Var, fast.ArrayRef)):
                        continue
                    info = table.declared(e.name)
                    if info is not None and info.common_block is not None \
                            and info.common_block.upper() in blocks:
                        return (f"actual argument {e.name.upper()} in "
                                f"{unit.name} aliases COMMON "
                                f"/{info.common_block.upper()}/ visible "
                                f"in the callee")
    return None


def render_fallbacks(report: InferenceReport) -> Iterable[str]:
    """Human-readable one-liners for the fallback outcomes."""
    for name, reason in report.fallbacks().items():
        yield f"{name}: conservative fallback ({reason})"
