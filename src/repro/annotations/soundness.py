"""Annotation soundness checking — the paper's second future-work item
(Section VI: "verify the safety of manually supplied annotations").

Two complementary mechanisms:

* :func:`check_soundness` — a **static** comparison of the annotation
  against the callee's source (when available).  The safety-critical
  direction is one-sided: every side effect the implementation *has* must
  be covered by a side effect the annotation *claims* (an annotation may
  over-approximate freely; omissions are what make parallelization
  unsound).  Checked:

  - every scalar/array the callee (transitively) writes is claimed
    written;
  - every value the callee reads should be claimed read; a missing read
    is a **warning** rather than a violation because the paper's own
    Figure-14 annotation omits the one-to-one map arrays it reads,
    justified by their being initialized once and never modified — the
    checker asks the developer to confirm exactly that;
  - claimed array write regions cover the written regions, where both
    sides are expressible;
  - ``unique`` claims are flagged for review — one-to-one-ness is
    domain knowledge no static check can establish (reported as a
    warning, not a violation);
  - omitted error-checking I/O (the paper's sanctioned relaxation) is a
    warning.

* the **dynamic** check is :func:`repro.runtime.difftest.diff_test` on
  the final parallelized program — the mechanized "runtime testers" of
  Section III-D.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.callgraph import build_callgraph
from repro.analysis.defuse import collect_accesses
from repro.analysis.sideeffects import compute_summaries
from repro.annotations import ast as aast
from repro.fortran import ast as fast
from repro.program import Program


@dataclass
class SoundnessReport:
    subroutine: str
    #: omissions that can make parallelization unsound
    violations: List[str] = field(default_factory=list)
    #: items needing human judgement (unique claims, relaxed I/O)
    warnings: List[str] = field(default_factory=list)

    @property
    def sound(self) -> bool:
        return not self.violations


def _claimed_effects(ann: aast.ASubroutine
                     ) -> Tuple[Set[str], Set[str], List[str]]:
    """(claimed writes, claimed reads, unique-claim descriptions)."""
    writes: Set[str] = set()
    reads: Set[str] = set()
    uniques: List[str] = []
    locals_: Set[str] = set()

    def scan(stmts: Sequence[aast.AnnStmt]) -> None:
        for s in stmts:
            if isinstance(s, aast.ADecl):
                if s.typename:
                    locals_.update(e.name.upper() for e in s.entities)
            elif isinstance(s, aast.AAssign):
                for t in s.targets:
                    if isinstance(t, (fast.Var, fast.ArrayRef)):
                        writes.add(t.name.upper())
                    if isinstance(t, fast.ArrayRef):
                        for sub in t.subs:
                            note_reads(sub)
                note_reads(s.value)
            elif isinstance(s, aast.AIf):
                note_reads(s.cond)
                scan(s.then)
                scan(s.els)
            elif isinstance(s, aast.ADo):
                locals_.add(s.var.upper())
                note_reads(s.start)
                note_reads(s.stop)
                if s.step is not None:
                    note_reads(s.step)
                scan(s.body)

    def note_reads(e: fast.Expr) -> None:
        for n in fast.walk_expr(e):
            if isinstance(n, aast.Unique):
                uniques.append(", ".join(
                    _brief(a) for a in n.args))
            elif isinstance(n, (fast.Var, fast.ArrayRef)):
                reads.add(n.name.upper())

    scan(ann.body)
    return writes - locals_, reads - locals_, uniques


def _brief(e: fast.Expr) -> str:
    from repro.fortran.unparser import expr_to_str
    try:
        return expr_to_str(e)
    except TypeError:
        return repr(e)


def check_soundness(program: Program,
                    ann: aast.ASubroutine) -> SoundnessReport:
    """Statically check ``ann`` against its subroutine's implementation."""
    report = SoundnessReport(ann.name.upper())
    unit = program.procedures.get(ann.name.upper())
    if unit is None:
        report.warnings.append(
            "no source available: only runtime verification applies")
        return report

    claimed_w, claimed_r, uniques = _claimed_effects(ann)

    # actual transitive effects, in the callee's name space
    summaries = compute_summaries(program, build_callgraph(program))
    actual = summaries[unit.name]
    if actual.opaque:
        report.warnings.append(
            "callee is opaque (recursion or unknown callees): static "
            "coverage cannot be established")

    for n in sorted(actual.mod):
        if n not in claimed_w:
            report.violations.append(
                f"implementation writes {n} but the annotation never "
                f"claims it")
    for n in sorted(actual.ref):
        # a write claim does not cover a read: the hidden read is what
        # conceals a flow dependence
        if n not in claimed_r:
            report.warnings.append(
                f"implementation reads {n} but the annotation never "
                f"mentions it: confirm {n} is never modified while the "
                f"callee's parallelized callers run (the paper's "
                f"initialized-once justification)")

    # region coverage for array formals with declared annotation shapes
    dims = ann.declared_dims()
    table = program.symtab(unit)
    acc = collect_accesses(unit.body, table)
    for n, subs, w in acc.array_accesses:
        if not w or n not in dims:
            continue
        if len(dims[n]) != len(table.info(n).dims or ()):
            report.warnings.append(
                f"annotation reshapes {n} (rank "
                f"{len(dims[n])} vs declared "
                f"{len(table.info(n).dims or ())}); coverage is checked "
                f"element-wise at runtime only")

    if actual.has_io or actual.has_stop:
        report.warnings.append(
            "implementation performs I/O or may STOP; the annotation "
            "omits it under the relaxed exception-handling policy — "
            "confirm pre-tested inputs never trigger it")
    for u in uniques:
        report.warnings.append(
            f"unique({u}) is a domain-knowledge claim: verify the map is "
            f"one-to-one over the ranges that occur at runtime")
    return report


def check_registry(program: Program, registry) -> Dict[str, SoundnessReport]:
    return {ann.name.upper(): check_soundness(program, ann)
            for ann in registry}
