"""Automatic annotation derivation — the paper's first future-work item
(Section VI: "develop techniques to automatically derive necessary
annotations").

For a *leaf* subroutine whose body the analyses can fully summarize, the
generator derives the Figure-12 annotation a developer would have
written:

* every array written gets a region-assignment summary: per-dimension
  bounds are computed by projecting each write's subscripts over its
  enclosing loops (re-using the kill-analysis region machinery); the
  ``unknown`` operand list is the callee's read set;
* scalars written get ``name = unknown(reads...)``;
* callee-local temporaries (implicit locals never visible outside) are
  omitted entirely, as the paper prescribes;
* debugging/error-checking conditionals (an IF arm consisting only of
  I/O and STOP) are *omitted* under the paper's relaxed
  exception-handling policy — reported in the result so the developer
  can veto;
* anything the analysis cannot summarize (calls, GOTO, non-projectable
  write regions, writes through formals without declarable shapes) makes
  the subroutine ineligible, with the reason recorded.

Derived annotations are ordinary :class:`~repro.annotations.ast.ASubroutine`
values: they feed the same inliner/reverse pipeline and can be serialized
with :func:`render_annotation` for human review.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.defuse import collect_accesses
from repro.analysis.regions import Region, project_over_loop, ref_region
from repro.annotations import ast as aast
from repro.fortran import ast as fast
from repro.fortran.symbols import SymbolTable, build_symbol_table
from repro.fortran.unparser import expr_to_str
from repro.program import Program


@dataclass
class GenerationResult:
    annotation: Optional[aast.ASubroutine]
    reason: str = ""  # why generation failed, when annotation is None
    #: error-handling conditionals that were omitted (paper relaxation)
    omitted_error_checks: int = 0

    @property
    def ok(self) -> bool:
        return self.annotation is not None


@dataclass
class _WriteSummary:
    #: per-dimension (lo, hi) bound expressions, or a point subscript
    dims: Tuple[Tuple[Optional[fast.Expr], Optional[fast.Expr]], ...]


def generate_annotation(program: Program,
                        name: str) -> GenerationResult:
    """Derive an annotation for subroutine ``name`` from its body."""
    unit = program.procedures.get(name.upper())
    if unit is None:
        return GenerationResult(None, "no source available")
    if unit.kind != "SUBROUTINE":
        return GenerationResult(None, "not a subroutine")
    table = program.symtab(unit)
    acc = collect_accesses(unit.body, table)
    if acc.has_call:
        return GenerationResult(None, "calls other procedures")
    if acc.has_goto:
        return GenerationResult(None, "unstructured control flow")
    if acc.has_opaque:
        return GenerationResult(
            None, "body contains an ENTRY point or unlowered statement")
    if acc.unanalyzable:
        return GenerationResult(
            None, f"unanalyzable access to "
                  f"{sorted(acc.unanalyzable)[0]} (substring)")
    if any(isinstance(d, fast.EquivalenceDecl) for d in unit.decls):
        return GenerationResult(
            None, "EQUIVALENCE storage association in the body")
    if any(isinstance(s, fast.Return) and s.alt is not None
           for s in fast.walk_stmts(unit.body)):
        return GenerationResult(None, "alternate-return exit")

    # summarize a normalized clone: induction-variable substitution and
    # forward substitution turn I = I + 1 subscripts into loop-index
    # form, exactly as the dependence analysis would see them
    from repro.analysis.normalize import normalize_unit
    work = fast.clone(unit)
    normalize_unit(work, build_symbol_table(work))

    body, omitted = _strip_error_checks(work.body, table)
    acc = collect_accesses(body, table)
    if acc.has_io or acc.has_stop:
        return GenerationResult(
            None, "performs I/O outside error-checking conditionals",
            omitted)

    formals = set(table.formals)

    def visible(n: str) -> bool:
        info = table.declared(n)
        if n in formals:
            return True
        return info is not None and info.common_block is not None

    # the ``unknown`` operand list: every visible value the body reads.
    # Scalars that are also *written* stay in the list: for a
    # read-modify-write like ``S = S + X`` the incoming value is an input
    # to the summary, and omitting it would erase the loop-carried flow
    # dependence at call sites (found by repro.fuzz, seed 203606025241)
    reads: List[fast.Expr] = []
    seen: Set[str] = set()
    for n in sorted(acc.scalar_reads):
        if visible(n) and n not in seen:
            reads.append(fast.Var(n))
            seen.add(n)
    for n, subs, w in acc.array_accesses:
        if not w and visible(n) and n not in seen:
            reads.append(fast.ArrayRef(n, (fast.IntLit(1),)
                                       * len(table.info(n).dims or (None,))))
            seen.add(n)

    stmts: List[aast.AnnStmt] = []
    dims_decls: List[fast.Entity] = []

    # array writes -> region summaries
    arrays_written = sorted({n for n, _, w in acc.array_accesses if w})
    for n in arrays_written:
        if not visible(n):
            continue  # local temporary: omitted by design
        region = _written_region(body, n, table)
        if region is None:
            return GenerationResult(
                None, f"cannot summarize the region written to {n}",
                omitted)
        info = table.info(n)
        if n in formals:
            if info.dims is None:
                return GenerationResult(
                    None, f"array formal {n} has no declared shape",
                    omitted)
            dims_decls.append(fast.Entity(n, _annotation_dims(region,
                                                              info)))
        subs = _region_subs(region)
        if subs is None:
            return GenerationResult(
                None, f"write region of {n} is not expressible", omitted)
        stmts.append(aast.AAssign(
            (fast.ArrayRef(n, subs),),
            aast.Unknown(tuple(fast.clone(r) for r in reads))))

    # visible scalar writes
    for n in sorted(acc.scalar_writes):
        if not visible(n):
            continue
        stmts.append(aast.AAssign(
            (fast.Var(n),),
            aast.Unknown(tuple(fast.clone(r) for r in reads))))

    if not stmts:
        return GenerationResult(None, "no visible side effects to "
                                      "summarize", omitted)
    # array formals that are only *read* still need a shape declaration,
    # or call-site translation cannot bind them (hand-written annotations
    # always declare the formals they subscript)
    declared = {e.name for e in dims_decls}
    for n in sorted({a for a, _, w in acc.array_accesses if not w}):
        if n not in formals or n in declared:
            continue
        info = table.info(n)
        if info.dims is None or any(d.upper is None for d in info.dims):
            return GenerationResult(
                None, f"array formal {n} has no declared shape", omitted)
        dims_decls.append(fast.Entity(n, fast.clone(info.dims)))
        declared.add(n)
    if dims_decls:
        stmts.insert(0, aast.ADecl("", dims_decls))
    ann = aast.ASubroutine(unit.name, list(unit.params), stmts)
    return GenerationResult(ann, "", omitted)


def generate_all(program: Program) -> Dict[str, GenerationResult]:
    """Attempt generation for every subroutine in the program."""
    return {name: generate_annotation(program, name)
            for name, u in sorted(program.procedures.items())
            if u.kind == "SUBROUTINE"}


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _strip_error_checks(body: List[fast.Stmt], table: SymbolTable
                        ) -> Tuple[List[fast.Stmt], int]:
    """Remove IF arms consisting solely of I/O + STOP (the paper's
    relaxed exception-handling policy), counting the omissions."""
    omitted = [0]

    def is_error_arm(arm: List[fast.Stmt]) -> bool:
        if not arm:
            return False
        for s in arm:
            if not isinstance(s, (fast.IoStmt, fast.Stop, fast.Continue)):
                return False
        return any(isinstance(s, fast.Stop) for s in arm)

    def rewrite(s: fast.Stmt) -> Optional[List[fast.Stmt]]:
        if isinstance(s, fast.IfBlock):
            arms = [(c, a) for c, a in s.arms if not is_error_arm(a)]
            if len(arms) != len(s.arms):
                omitted[0] += len(s.arms) - len(arms)
                if not arms:
                    return []
                return [fast.IfBlock(arms, s.label)]
        return None

    return fast.map_stmts(fast.clone(body), rewrite), omitted[0]


def _written_region(body: Sequence[fast.Stmt], name: str,
                    table: SymbolTable) -> Optional[Region]:
    """The union-as-single-region of all writes to ``name``, projected
    over enclosing loops; None when writes differ structurally."""
    info = table.info(name)
    regions: List[Region] = []

    def walk(stmts: Sequence[fast.Stmt],
             loops: Tuple[fast.DoLoop, ...]) -> None:
        for s in stmts:
            if isinstance(s, fast.Assign) \
                    and isinstance(s.target, fast.ArrayRef) \
                    and s.target.name.upper() == name:
                r = ref_region(s.target.subs, info)
                for lp in reversed(loops):
                    r = project_over_loop(r, lp)
                regions.append(r)
            elif isinstance(s, fast.DoLoop):
                walk(s.body, loops + (s,))
            elif isinstance(s, fast.IfBlock):
                for _, arm in s.arms:
                    walk(arm, loops)

    walk(body, ())
    if not regions:
        return None
    merged = regions[0]
    for r in regions[1:]:
        if merged.covers(r):
            continue
        if r.covers(merged):
            merged = r
            continue
        return None  # structurally different writes: give up
    return merged


def _region_subs(region: Region
                 ) -> Optional[Tuple[fast.Expr, ...]]:
    subs: List[fast.Expr] = []
    for d in region.dims:
        if d.lo is None or d.hi is None:
            return None
        lo = d.lo.to_expr()
        hi = d.hi.to_expr()
        if lo == hi:
            subs.append(lo)
        else:
            subs.append(fast.RangeExpr(lo, hi))
    return tuple(subs)


def _annotation_dims(region: Region, info) -> Tuple[fast.Dim, ...]:
    """Shape declaration for an array formal: the declared dims where
    constant, otherwise the written extent."""
    out: List[fast.Dim] = []
    for k, d in enumerate(info.dims):
        if d.upper is not None:
            out.append(fast.Dim(fast.clone(d.lower), fast.clone(d.upper)))
        elif region.dims[k].hi is not None:
            out.append(fast.Dim(fast.IntLit(1),
                                region.dims[k].hi.to_expr()))
        else:
            out.append(fast.Dim(fast.IntLit(1), None))
    return tuple(out)


# ---------------------------------------------------------------------------
# serialization (for human review / EXPERIMENTS artifacts)
# ---------------------------------------------------------------------------

def render_annotation(ann: aast.ASubroutine) -> str:
    lines = [f"subroutine {ann.name}({', '.join(ann.params)}) {{"]
    for s in ann.body:
        lines.extend(_render_stmt(s, 1))
    lines.append("}")
    return "\n".join(lines)


def _render_expr(e: fast.Expr) -> str:
    if isinstance(e, aast.Unknown):
        return "unknown(" + ", ".join(_render_expr(a) for a in e.args) + ")"
    if isinstance(e, aast.Unique):
        return "unique(" + ", ".join(_render_expr(a) for a in e.args) + ")"
    if isinstance(e, fast.ArrayRef):
        return e.name + "[" + ", ".join(_render_expr(s)
                                        for s in e.subs) + "]"
    if isinstance(e, fast.RangeExpr):
        lo = _render_expr(e.lo) if e.lo is not None else ""
        hi = _render_expr(e.hi) if e.hi is not None else ""
        if not lo and not hi:
            return "*"
        return f"{lo}:{hi}"
    if isinstance(e, fast.BinOp):
        return f"{_render_expr(e.left)} {e.op} {_render_expr(e.right)}"
    if isinstance(e, fast.UnOp):
        return f"{e.op}{_render_expr(e.operand)}"
    return expr_to_str(e)


def _render_stmt(s: aast.AnnStmt, depth: int) -> List[str]:
    pad = "  " * depth
    if isinstance(s, aast.AAssign):
        targets = ", ".join(_render_expr(t) for t in s.targets)
        if len(s.targets) > 1:
            targets = f"({targets})"
        return [f"{pad}{targets} = {_render_expr(s.value)};"]
    if isinstance(s, aast.ADecl):
        kw = s.typename.lower() if s.typename else "dimension"
        ents = []
        for e in s.entities:
            if e.dims:
                dims = ", ".join(
                    _render_expr(d.upper) if d.lower == fast.IntLit(1)
                    else f"{_render_expr(d.lower)}:{_render_expr(d.upper)}"
                    for d in e.dims)
                ents.append(f"{e.name}[{dims}]")
            else:
                ents.append(e.name)
        return [f"{pad}{kw} {', '.join(ents)};"]
    if isinstance(s, aast.ADo):
        head = f"{pad}do ({s.var} = {_render_expr(s.start)}:" \
               f"{_render_expr(s.stop)}"
        if s.step is not None:
            head += f":{_render_expr(s.step)}"
        head += ") {"
        out = [head]
        for inner in s.body:
            out.extend(_render_stmt(inner, depth + 1))
        out.append(f"{pad}}}")
        return out
    if isinstance(s, aast.AIf):
        out = [f"{pad}if ({_render_expr(s.cond)}) {{"]
        for inner in s.then:
            out.extend(_render_stmt(inner, depth + 1))
        if s.els:
            out.append(f"{pad}}} else {{")
            for inner in s.els:
                out.extend(_render_stmt(inner, depth + 1))
        out.append(f"{pad}}}")
        return out
    raise TypeError(f"cannot render {s!r}")
