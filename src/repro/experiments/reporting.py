"""Plain-text rendering of tables, bar charts and phase profiles for the
terminal."""

from __future__ import annotations

from typing import Dict, List, Sequence


def text_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
               title: str = "") -> str:
    cols = [[str(h)] + [str(r[i]) for r in rows]
            for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in rows:
        lines.append(" | ".join(str(c).ljust(w)
                                for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_profile(timings: Dict[str, float],
                   title: str = "phase timings "
                                "(wall-clock seconds, summed over "
                                "work units)") -> str:
    """Render per-phase timings in the pipeline's canonical phase order
    (unknown phases follow, alphabetically), plus a total."""
    from repro.polaris.report import PHASES
    known = [p for p in PHASES if p in timings]
    extra = sorted(set(timings) - set(PHASES))
    rows = [[phase, f"{timings[phase]:.3f}"] for phase in known + extra]
    rows.append(["total", f"{sum(timings.values()):.3f}"])
    return text_table(["phase", "seconds"], rows, title=title)


def bar_chart(labels: Sequence[str], values: Sequence[float],
              title: str = "", width: int = 40,
              fmt: str = "{:.3f}") -> str:
    """Horizontal ASCII bars (Figure 20 style: one bar per config)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    vmax = max(values) if values else 1.0
    label_w = max((len(l) for l in labels), default=0)
    for label, v in zip(labels, values):
        n = int(round(width * v / vmax)) if vmax > 0 else 0
        lines.append(f"{label.ljust(label_w)} | "
                     f"{'#' * n} {fmt.format(v)}")
    return "\n".join(lines)
