"""The three-configuration evaluation pipeline (paper Figure 15 + the
Table II measurement protocol).

For one benchmark the pipeline runs:

* ``none`` — Polaris directly (no inlining);
* ``conventional`` — the Polaris default inliner, then Polaris;
* ``annotation`` — annotation-based inlining, Polaris, reverse inlining.

Counting protocol (the paper's): each *original* loop (origin identity)
counts once; a loop counts as parallelized in a configuration when any of
its copies in an *execution-reachable* unit received a directive.  A
procedure whose every call site was inlined away is dead code — its
still-parallelizable original no longer executes, which is exactly how
conventional inlining manifests ``#par-loss``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.callgraph import build_callgraph
from repro.analysis.loops import assign_origins
from repro.annotations.inliner import (AnnotationInlineResult,
                                       AnnotationInliner)
from repro.annotations.registry import AnnotationRegistry
from repro.annotations.reverse import ReverseInliner, ReverseResult
from repro.annotations.translate import TranslateOptions
from repro.inlining.conventional import ConventionalInliner, InlineResult
from repro.inlining.heuristics import InlinePolicy
from repro.perfect.suite import Benchmark
from repro.polaris import Polaris, PolarisOptions, Report
from repro.program import Program

CONFIGS = ("none", "conventional", "annotation")


@dataclass
class Config:
    kind: str = "none"
    polaris: PolarisOptions = field(default_factory=PolarisOptions)
    inline_policy: InlinePolicy = field(default_factory=InlinePolicy)
    translate: TranslateOptions = field(default_factory=TranslateOptions)


@dataclass
class PipelineResult:
    config: str
    program: Program
    report: Report
    code_lines: int
    conventional_result: Optional[InlineResult] = None
    annotation_result: Optional[AnnotationInlineResult] = None
    reverse_result: Optional[ReverseResult] = None

    def parallel_origins(self) -> Set[str]:
        """Origins parallelized in execution-reachable units."""
        reachable = _reachable_units(self.program)
        return {v.origin for v in self.report.verdicts
                if v.parallelized and v.origin is not None
                and v.unit in reachable}


def _reachable_units(program: Program) -> Set[str]:
    graph = build_callgraph(program)
    roots = [u.name for u in program.units if u.kind == "PROGRAM"]
    seen: Set[str] = set(roots)
    stack = list(roots)
    while stack:
        name = stack.pop()
        for callee in graph.callees(name):
            if callee not in seen:
                seen.add(callee)
                stack.append(callee)
    return seen


def prepare_base(benchmark: Benchmark) -> Program:
    """Parse the benchmark and stamp loop origins (done once, before any
    configuration clones the program, so origins are comparable)."""
    program = benchmark.program()
    for unit in program.units:
        assign_origins(unit)
    return program


def run_config(benchmark: Benchmark, config: Config,
               base: Optional[Program] = None) -> PipelineResult:
    base = base if base is not None else prepare_base(benchmark)
    program = base.clone()
    conventional_result = None
    annotation_result = None
    reverse_result = None

    if config.kind == "conventional":
        policy = config.inline_policy
        if benchmark.library_units:
            policy = _policy_with_unavailable(policy,
                                              benchmark.library_units)
        conventional_result = ConventionalInliner(policy).run(program)
    elif config.kind == "annotation":
        registry = benchmark.registry()
        annotation_result = AnnotationInliner(
            registry, config.translate).run(program)

    report = Polaris(config.polaris).run(program)

    if config.kind == "annotation":
        reverse_result = ReverseInliner(benchmark.registry(),
                                        config.translate).run(program)

    return PipelineResult(config.kind, program, report,
                          program.total_lines(),
                          conventional_result, annotation_result,
                          reverse_result)


def run_all_configs(benchmark: Benchmark,
                    polaris: Optional[PolarisOptions] = None,
                    ) -> Dict[str, PipelineResult]:
    base = prepare_base(benchmark)
    polaris = polaris or PolarisOptions()
    out: Dict[str, PipelineResult] = {}
    for kind in CONFIGS:
        out[kind] = run_config(benchmark, Config(kind, polaris), base)
    return out


def _policy_with_unavailable(policy: InlinePolicy,
                             unavailable) -> InlinePolicy:
    """Wrap a policy so library procedures count as source-unavailable."""
    class _Wrapped(InlinePolicy):
        def rejection_reason(self, program, graph, callee_name, in_loop):
            if callee_name.upper() in unavailable:
                return "no-source"
            return InlinePolicy.rejection_reason(self, program, graph,
                                                 callee_name, in_loop)

    return _Wrapped(policy.max_statements, policy.allow_io,
                    policy.allow_calls, policy.require_loop_context)
