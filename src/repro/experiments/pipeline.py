"""The three-configuration evaluation pipeline (paper Figure 15 + the
Table II measurement protocol).

For one benchmark the pipeline runs:

* ``none`` — Polaris directly (no inlining);
* ``conventional`` — the Polaris default inliner, then Polaris;
* ``annotation`` — annotation-based inlining, Polaris, reverse inlining.

Counting protocol (the paper's): each *original* loop (origin identity)
counts once; a loop counts as parallelized in a configuration when any of
its copies in an *execution-reachable* unit received a directive.  A
procedure whose every call site was inlined away is dead code — its
still-parallelizable original no longer executes, which is exactly how
conventional inlining manifests ``#par-loss``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional, Set

from repro.analysis.callgraph import build_callgraph
from repro.analysis.loops import assign_origins
from repro.annotations.infer import ANNOTATION_MODES, infer_annotations
from repro.annotations.inliner import (AnnotationInlineResult,
                                       AnnotationInliner)
from repro.annotations.reverse import ReverseInliner, ReverseResult
from repro.annotations.translate import TranslateOptions
from repro.inlining.conventional import ConventionalInliner, InlineResult
from repro.inlining.demand import DemandInliner
from repro.inlining.heuristics import InlinePolicy
from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.perfect.suite import Benchmark, CacheStats
from repro.polaris import Polaris, PolarisOptions, Report
from repro.program import Program
from repro.trace import NULL_TRACER, SiteDecision, Tracer

CONFIGS = ("none", "conventional", "annotation")


@dataclass
class Config:
    kind: str = "none"
    polaris: PolarisOptions = field(default_factory=PolarisOptions)
    inline_policy: InlinePolicy = field(default_factory=InlinePolicy)
    translate: TranslateOptions = field(default_factory=TranslateOptions)
    #: the annotations axis (only meaningful for kind == "annotation"):
    #: "hand" uses the benchmark's hand-written annotations up front;
    #: "inferred" replaces them with inferred ones (hand ignored);
    #: "demand" merges both (hand wins) and inlines on demand during
    #: dependence analysis instead of up front
    annotations: str = "hand"


@dataclass
class PipelineResult:
    config: str
    program: Program
    report: Report
    code_lines: int
    conventional_result: Optional[InlineResult] = None
    annotation_result: Optional[AnnotationInlineResult] = None
    reverse_result: Optional[ReverseResult] = None
    #: which annotations-axis value produced this result
    annotations: str = "hand"
    #: lazily computed reachable-unit set (the callgraph of the finished
    #: program never changes afterwards, so one traversal serves every
    #: parallel_origins() call)
    _reachable: Optional[Set[str]] = field(default=None, repr=False)

    def reachable_units(self) -> Set[str]:
        if self._reachable is None:
            self._reachable = _reachable_units(self.program)
        return self._reachable

    def parallel_origins(self) -> Set[str]:
        """Origins parallelized in execution-reachable units."""
        reachable = self.reachable_units()
        return {v.origin for v in self.report.verdicts
                if v.parallelized and v.origin is not None
                and v.unit in reachable}


def _reachable_units(program: Program) -> Set[str]:
    graph = build_callgraph(program)
    roots = [u.name for u in program.units if u.kind == "PROGRAM"]
    seen: Set[str] = set(roots)
    stack = list(roots)
    while stack:
        name = stack.pop()
        for callee in graph.callees(name):
            if callee not in seen:
                seen.add(callee)
                stack.append(callee)
    return seen


#: source digest -> origin-stamped base program.  Stamping is
#: deterministic over a deterministic parse, so every configuration (in
#: every process) derives identical origin identities from its own copy;
#: the cached base itself is never mutated — callers always clone.
_BASE_CACHE: Dict[str, Program] = {}

#: hit/miss counters for the stamped-base cache (bench-gate observable)
BASE_CACHE_STATS = CacheStats()


def clear_base_cache() -> None:
    _BASE_CACHE.clear()


def prepare_base(benchmark: Benchmark) -> Program:
    """Parse the benchmark and stamp loop origins (done once, before any
    configuration clones the program, so origins are comparable)."""
    digest = benchmark.digest()
    lookups = obs_metrics.counter("repro_base_cache_total",
                                  "stamped-base cache lookups by outcome")
    base = _BASE_CACHE.get(digest)
    if base is None:
        BASE_CACHE_STATS.misses += 1
        lookups.inc(outcome="miss")
        base = benchmark.program()
        for unit in base.units:
            assign_origins(unit)
        _BASE_CACHE[digest] = base
    else:
        BASE_CACHE_STATS.memory_hits += 1
        lookups.inc(outcome="memory_hit")
    return base


def run_config(benchmark: Benchmark, config: Config,
               base: Optional[Program] = None,
               tracer: Optional[Tracer] = None) -> PipelineResult:
    # every log record inside the pipeline (and below it) carries the
    # benchmark/config correlation IDs, on top of whatever run_id/job_id
    # the caller established
    with obs_logging.log_context(benchmark=benchmark.name,
                                 config=config.kind):
        return _run_config(benchmark, config, base, tracer)


def _run_config(benchmark: Benchmark, config: Config,
                base: Optional[Program],
                tracer: Optional[Tracer]) -> PipelineResult:
    tracer = tracer or NULL_TRACER
    timings: Dict[str, float] = {}
    with tracer.span("pipeline", benchmark=benchmark.name,
                     config=config.kind):
        if base is None:
            t0 = perf_counter()
            with tracer.span("parse", benchmark=benchmark.name):
                base = prepare_base(benchmark)
            timings["parse"] = perf_counter() - t0
        with tracer.span("clone"):
            program = base.clone()
        conventional_result = None
        annotation_result = None
        reverse_result = None
        registry = None
        demand = None

        # before inlining/inference: inference-time fallback records are
        # site decisions of this run too and must be stamped below
        first_site = len(tracer.site_decisions)
        t0 = perf_counter()
        if config.kind == "conventional":
            policy = config.inline_policy
            if benchmark.library_units:
                policy = _policy_with_unavailable(policy,
                                                  benchmark.library_units)
            with tracer.span("inline", kind="conventional"):
                conventional_result = ConventionalInliner(policy).run(program)
            timings["inline"] = perf_counter() - t0
        elif config.kind == "annotation":
            registry, demand = _prepare_annotations(benchmark, config,
                                                    program, tracer,
                                                    timings)
            if demand is None:
                t0 = perf_counter()
                with tracer.span("inline", kind="annotation"):
                    annotation_result = AnnotationInliner(
                        registry, config.translate).run(program)
                timings["inline"] = perf_counter() - t0

        first_decision = len(tracer.decisions)
        report = Polaris(config.polaris,
                         demand=demand).run(program, tracer=tracer)
        if demand is not None:
            annotation_result = demand._ann_result

        if config.kind == "annotation":
            t0 = perf_counter()
            with tracer.span("reverse"):
                reverse_result = ReverseInliner(registry,
                                                config.translate).run(program)
            timings["reverse"] = perf_counter() - t0

    for phase, seconds in timings.items():
        report.add_timing(phase, seconds)
    result = PipelineResult(config.kind, program, report,
                            program.total_lines(),
                            conventional_result, annotation_result,
                            reverse_result)
    result.annotations = config.annotations
    if tracer.enabled:
        _stamp_decisions(tracer.decisions[first_decision:], benchmark.name,
                         config.kind, result.reachable_units())
        for d in tracer.site_decisions[first_site:]:
            d.benchmark = benchmark.name
            d.config = config.kind
    obs_logging.get_logger("repro.pipeline").info(
        "pipeline-done", parallel=len(report.parallel_origins()),
        lines=result.code_lines,
        seconds=round(sum(report.timings.values()), 4))
    return result


def _prepare_annotations(benchmark: Benchmark, config: Config,
                         program: Program, tracer: Tracer, timings):
    """Resolve the annotations axis for an ``annotation`` run.

    Returns ``(registry, demand)``: the registry the reverse inliner
    will use, and the :class:`DemandInliner` to hand to Polaris (None
    for the up-front modes)."""
    mode = config.annotations
    if mode == "hand":
        return benchmark.registry(), None
    if mode not in ANNOTATION_MODES:
        raise ValueError(f"unknown annotations mode {mode!r}")
    t0 = perf_counter()
    with tracer.span("infer", mode=mode):
        hand = benchmark.registry() if mode == "demand" else None
        inference = infer_annotations(program, hand=hand)
        registry = inference.registry()
    timings["infer"] = perf_counter() - t0
    if tracer.enabled:
        for name, reason in inference.fallbacks().items():
            tracer.site(SiteDecision("", name, 0, "fallback",
                                     source="inferred", reason=reason))
    if mode == "inferred":
        return registry, None
    policy = config.inline_policy
    if benchmark.library_units:
        policy = _policy_with_unavailable(policy, benchmark.library_units)
    hand_names = frozenset(hand.names()) if hand is not None else frozenset()
    demand = DemandInliner(registry, config.translate, policy,
                           inference=inference, hand_names=hand_names)
    return registry, demand


def _stamp_decisions(decisions, benchmark: str, kind: str,
                     reachable: Set[str]) -> None:
    """Attribute freshly recorded loop decisions to this pipeline run and
    mark whether each loop's unit is execution-reachable — the trace-side
    half of the Table II counting protocol (see
    :func:`repro.trace.count_parallel`)."""
    for d in decisions:
        d.benchmark = benchmark
        d.config = kind
        d.reachable = d.unit in reachable


def summarize_result(result: PipelineResult) -> Dict[str, object]:
    """JSON-safe summary of one pipeline run.

    This is what the service hands back to clients (and persists in its
    result cache): the optimized source itself plus the numbers Table II
    is built from.  Everything here survives both pickling across the
    worker-pool boundary and JSON serialization on the wire.
    """
    origins = sorted(result.parallel_origins())
    return {
        "config": result.config,
        "annotations": result.annotations,
        "parallel_count": len(origins),
        "parallel_origins": origins,
        "code_lines": result.code_lines,
        "timings": dict(result.report.timings),
        "serial_reasons": result.report.reasons_histogram(),
        "output": "".join(result.program.unparse().values()),
    }


def run_all_configs(benchmark: Benchmark,
                    polaris: Optional[PolarisOptions] = None,
                    tracer: Optional[Tracer] = None,
                    ) -> Dict[str, PipelineResult]:
    t0 = perf_counter()
    base = prepare_base(benchmark)
    parse_seconds = perf_counter() - t0
    polaris = polaris or PolarisOptions()
    out: Dict[str, PipelineResult] = {}
    for kind in CONFIGS:
        out[kind] = run_config(benchmark, Config(kind, polaris), base,
                               tracer=tracer)
    # the shared parse is real work one of the runs must account for,
    # or --profile would silently drop the phase on this path
    out[CONFIGS[0]].report.add_timing("parse", parse_seconds)
    return out


def _policy_with_unavailable(policy: InlinePolicy,
                             unavailable) -> InlinePolicy:
    """Wrap a policy so library procedures count as source-unavailable."""
    class _Wrapped(InlinePolicy):
        def rejection_reason(self, program, graph, callee_name, in_loop):
            if callee_name.upper() in unavailable:
                return "no-source"
            return InlinePolicy.rejection_reason(self, program, graph,
                                                 callee_name, in_loop)

    return _Wrapped(policy.max_statements, policy.allow_io,
                    policy.allow_calls, policy.require_loop_context)
