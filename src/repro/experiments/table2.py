"""Table II — automatically parallelized loops under the three inlining
configurations.

For every benchmark, runs the full pipeline per configuration and
reports, exactly as the paper does:

* ``#par-loops`` — distinct original loops parallelized (in
  execution-reachable code);
* ``#par-loss`` — loops parallelizable with no inlining but not in this
  configuration;
* ``#par-extra`` — loops parallelized beyond the no-inlining baseline;
* ``lines`` — source lines after optimization (comments removed; the
  structural OpenMP directives count, as in the paper).

The ``(benchmark x config)`` pipeline runs are independent, so
:func:`table2_rows` fans them out through
:mod:`repro.experiments.executor`; workers return only origin sets and
line counts, and rows are assembled in registry order, so the rendered
table is byte-identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.experiments.executor import merge_task_traces, run_tasks
from repro.experiments.pipeline import CONFIGS, Config, run_config
from repro.experiments.reporting import text_table
from repro.obs.profile import merge_test_stats
from repro.perfect import all_benchmarks
from repro.perfect.suite import Benchmark
from repro.polaris import PolarisOptions
from repro.polaris.report import ConfigComparison, merge_timings
from repro.trace import Tracer


@dataclass
class Table2Row:
    benchmark: str
    #: per config: ConfigComparison
    configs: Dict[str, ConfigComparison]
    lines: Dict[str, int]
    #: per-phase wall-clock seconds summed over this row's pipeline runs
    timings: Dict[str, float] = field(default_factory=dict)
    #: dependence-test family counters summed over this row's runs
    test_stats: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class Table2Task:
    """One executor work unit: a single (benchmark, config) pipeline."""

    benchmark: Benchmark
    kind: str
    polaris: Optional[PolarisOptions] = None
    #: record a worker-local trace and ship it back with the outcome
    trace: bool = False
    #: the annotations axis for ``annotation`` runs (hand/inferred/demand)
    annotations: str = "hand"


@dataclass(frozen=True)
class ConfigOutcome:
    """Picklable per-configuration summary returned by workers."""

    kind: str
    origins: FrozenSet[str]
    code_lines: int
    timings: Dict[str, float]
    #: worker-local :meth:`repro.trace.Tracer.export`, when requested
    trace: Optional[Dict[str, Any]] = None
    #: dependence-test family counters from this run's Polaris report
    test_stats: Dict[str, int] = field(default_factory=dict)


def run_config_task(task: Table2Task) -> ConfigOutcome:
    polaris = task.polaris if task.polaris is not None else PolarisOptions()
    tracer = Tracer(label=f"table2 {task.benchmark.name}/{task.kind}") \
        if task.trace else None
    result = run_config(task.benchmark,
                        Config(task.kind, polaris,
                               annotations=task.annotations),
                        tracer=tracer)
    return ConfigOutcome(task.kind, frozenset(result.parallel_origins()),
                         result.code_lines, dict(result.report.timings),
                         tracer.export() if tracer else None,
                         dict(result.report.test_stats))


def _assemble_row(name: str, outcomes: List[ConfigOutcome]) -> Table2Row:
    by_kind = {o.kind: o for o in outcomes}
    baseline = set(by_kind["none"].origins)
    configs = {kind: ConfigComparison.against_baseline(
        baseline, set(by_kind[kind].origins)) for kind in CONFIGS}
    lines = {kind: by_kind[kind].code_lines for kind in CONFIGS}
    timings: Dict[str, float] = {}
    test_stats: Dict[str, int] = {}
    for outcome in outcomes:
        merge_timings(timings, outcome.timings)
        merge_test_stats(test_stats, outcome.test_stats)
    return Table2Row(name, configs, lines, timings, test_stats)


def table2_row(benchmark: Benchmark,
               polaris: Optional[PolarisOptions] = None,
               tracer: Optional[Tracer] = None,
               annotations: str = "hand") -> Table2Row:
    trace = tracer is not None and tracer.enabled
    outcomes = [run_config_task(Table2Task(benchmark, kind, polaris,
                                           trace=trace,
                                           annotations=annotations))
                for kind in CONFIGS]
    merge_task_traces(tracer, [o.trace for o in outcomes])
    return _assemble_row(benchmark.name, outcomes)


def table2_outcomes(polaris: Optional[PolarisOptions] = None,
                    jobs: Optional[int] = None,
                    benchmarks: Optional[List[Benchmark]] = None,
                    tracer: Optional[Tracer] = None,
                    annotations: str = "hand",
                    ) -> Tuple[List[Table2Row], List[ConfigOutcome]]:
    """Rows plus the raw per-task worker outcomes they were merged from.

    The outcomes come back in task order (benchmark-major, config-minor)
    — one per ``(benchmark, config)`` — so callers can audit that row
    assembly neither drops nor double-counts worker-local data.
    """
    benchmarks = benchmarks if benchmarks is not None else all_benchmarks()
    trace = tracer is not None and tracer.enabled
    tasks = [Table2Task(b, kind, polaris, trace=trace,
                        annotations=annotations)
             for b in benchmarks for kind in CONFIGS]
    outcomes = run_tasks(run_config_task, tasks, jobs=jobs,
                         tracer=tracer, label="table2")
    merge_task_traces(tracer, [o.trace for o in outcomes])
    rows = [_assemble_row(b.name,
                          outcomes[i * len(CONFIGS):(i + 1) * len(CONFIGS)])
            for i, b in enumerate(benchmarks)]
    return rows, outcomes


def table2_rows(polaris: Optional[PolarisOptions] = None,
                jobs: Optional[int] = None,
                benchmarks: Optional[List[Benchmark]] = None,
                tracer: Optional[Tracer] = None,
                annotations: str = "hand") -> List[Table2Row]:
    rows, _outcomes = table2_outcomes(polaris, jobs, benchmarks, tracer,
                                      annotations=annotations)
    return rows


def render_table2(rows: Optional[List[Table2Row]] = None) -> str:
    rows = rows if rows is not None else table2_rows()
    headers = ["Application",
               "none:par", "none:lines",
               "conv:par", "conv:loss", "conv:extra", "conv:lines",
               "annot:par", "annot:loss", "annot:extra", "annot:lines"]
    body = []
    totals = {k: 0 for k in ("np", "cp", "cl", "ce", "ap", "al", "ae")}
    for r in rows:
        n, c, a = (r.configs[k] for k in ("none", "conventional",
                                          "annotation"))
        body.append([r.benchmark, n.par_loops, r.lines["none"],
                     c.par_loops, c.par_loss, c.par_extra,
                     r.lines["conventional"],
                     a.par_loops, a.par_loss, a.par_extra,
                     r.lines["annotation"]])
        totals["np"] += n.par_loops
        totals["cp"] += c.par_loops
        totals["cl"] += c.par_loss
        totals["ce"] += c.par_extra
        totals["ap"] += a.par_loops
        totals["al"] += a.par_loss
        totals["ae"] += a.par_extra
    body.append(["TOTAL", totals["np"], "", totals["cp"], totals["cl"],
                 totals["ce"], "", totals["ap"], totals["al"],
                 totals["ae"], ""])
    return text_table(
        headers, body,
        title="TABLE II: AUTOMATICALLY PARALLELIZED LOOPS "
              "(no-inlining / conventional / annotation-based)")
