"""Table II — automatically parallelized loops under the three inlining
configurations.

For every benchmark, runs the full pipeline per configuration and
reports, exactly as the paper does:

* ``#par-loops`` — distinct original loops parallelized (in
  execution-reachable code);
* ``#par-loss`` — loops parallelizable with no inlining but not in this
  configuration;
* ``#par-extra`` — loops parallelized beyond the no-inlining baseline;
* ``lines`` — source lines after optimization (comments removed; the
  structural OpenMP directives count, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments.pipeline import run_all_configs
from repro.experiments.reporting import text_table
from repro.perfect import all_benchmarks
from repro.perfect.suite import Benchmark
from repro.polaris import PolarisOptions
from repro.polaris.report import ConfigComparison


@dataclass
class Table2Row:
    benchmark: str
    #: per config: ConfigComparison
    configs: Dict[str, ConfigComparison]
    lines: Dict[str, int]


def table2_row(benchmark: Benchmark,
               polaris: Optional[PolarisOptions] = None) -> Table2Row:
    results = run_all_configs(benchmark, polaris)
    baseline = results["none"].parallel_origins()
    configs = {kind: ConfigComparison.against_baseline(
        baseline, r.parallel_origins()) for kind, r in results.items()}
    lines = {kind: r.code_lines for kind, r in results.items()}
    return Table2Row(benchmark.name, configs, lines)


def table2_rows(polaris: Optional[PolarisOptions] = None) -> List[Table2Row]:
    return [table2_row(b, polaris) for b in all_benchmarks()]


def render_table2(rows: Optional[List[Table2Row]] = None) -> str:
    rows = rows if rows is not None else table2_rows()
    headers = ["Application",
               "none:par", "none:lines",
               "conv:par", "conv:loss", "conv:extra", "conv:lines",
               "annot:par", "annot:loss", "annot:extra", "annot:lines"]
    body = []
    totals = {k: 0 for k in ("np", "cp", "cl", "ce", "ap", "al", "ae")}
    for r in rows:
        n, c, a = (r.configs[k] for k in ("none", "conventional",
                                          "annotation"))
        body.append([r.benchmark, n.par_loops, r.lines["none"],
                     c.par_loops, c.par_loss, c.par_extra,
                     r.lines["conventional"],
                     a.par_loops, a.par_loss, a.par_extra,
                     r.lines["annotation"]])
        totals["np"] += n.par_loops
        totals["cp"] += c.par_loops
        totals["cl"] += c.par_loss
        totals["ce"] += c.par_extra
        totals["ap"] += a.par_loops
        totals["al"] += a.par_loss
        totals["ae"] += a.par_extra
    body.append(["TOTAL", totals["np"], "", totals["cp"], totals["cl"],
                 totals["ce"], "", totals["ap"], totals["al"],
                 totals["ae"], ""])
    return text_table(
        headers, body,
        title="TABLE II: AUTOMATICALLY PARALLELIZED LOOPS "
              "(no-inlining / conventional / annotation-based)")
