"""Evaluation harness: the three-configuration pipeline, Table I/II and
Figure 20 generators, and the empirical tuning pass."""

from repro.experiments.pipeline import (Config, PipelineResult,  # noqa: F401
                                        run_config, run_all_configs)
