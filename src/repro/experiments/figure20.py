"""Figure 20 — runtime speedups of the automatically parallelized
benchmarks on the two machine models, under the three inlining
configurations, with empirical tuning applied (exactly the paper's
measurement protocol).

Speedup = serial simulated time / tuned parallel simulated time, per
benchmark x machine x configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.pipeline import CONFIGS, run_all_configs
from repro.experiments.reporting import bar_chart
from repro.experiments.tuning import TuningResult, tune
from repro.perfect import all_benchmarks
from repro.perfect.suite import Benchmark
from repro.runtime.machine import AMD_OPTERON, INTEL_MAC, MachineModel

MACHINES = (INTEL_MAC, AMD_OPTERON)


@dataclass
class SpeedupCell:
    benchmark: str
    machine: str
    config: str
    tuning: TuningResult

    @property
    def speedup(self) -> float:
        return self.tuning.speedup


def figure20_cells(benchmark: Benchmark,
                   machines: Sequence[MachineModel] = MACHINES,
                   ) -> List[SpeedupCell]:
    results = run_all_configs(benchmark)
    cells: List[SpeedupCell] = []
    for machine in machines:
        for config in CONFIGS:
            # tuning mutates the program: use a fresh clone per machine
            program = results[config].program.clone()
            tuning = tune(program, machine, benchmark.inputs)
            cells.append(SpeedupCell(benchmark.name, machine.name, config,
                                     tuning))
    return cells


def figure20_all(machines: Sequence[MachineModel] = MACHINES,
                 benchmarks: Optional[List[Benchmark]] = None,
                 ) -> List[SpeedupCell]:
    benchmarks = benchmarks if benchmarks is not None else all_benchmarks()
    cells: List[SpeedupCell] = []
    for b in benchmarks:
        cells.extend(figure20_cells(b, machines))
    return cells


def render_figure20(cells: List[SpeedupCell]) -> str:
    by_machine: Dict[str, List[SpeedupCell]] = {}
    for c in cells:
        by_machine.setdefault(c.machine, []).append(c)
    sections: List[str] = []
    for machine, group in by_machine.items():
        labels = [f"{c.benchmark:8s} {c.config}" for c in group]
        values = [c.speedup for c in group]
        sections.append(bar_chart(
            labels, values,
            title=f"FIGURE 20: speedups on {machine} "
                  f"(serial time / tuned parallel time)"))
    return "\n\n".join(sections)
