"""Figure 20 — runtime speedups of the automatically parallelized
benchmarks on the two machine models, under the three inlining
configurations, with empirical tuning applied (exactly the paper's
measurement protocol).

Speedup = serial simulated time / tuned parallel simulated time, per
benchmark x machine x configuration.

Each ``(benchmark x machine x config)`` cell is an independent executor
work unit (:class:`Figure20Task`): the worker runs the configuration's
pipeline (memoized per process, since both machines tune the same
optimized program) and then the tuning protocol on a fresh clone.  Cells
come back in task order, so the rendered figure is byte-identical for
any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.executor import merge_task_traces, run_tasks
from repro.experiments.pipeline import (CONFIGS, Config, PipelineResult,
                                        run_config)
from repro.experiments.reporting import bar_chart
from repro.experiments.tuning import TuningResult, tune
from repro.perfect import all_benchmarks
from repro.perfect.suite import Benchmark
from repro.runtime.machine import AMD_OPTERON, INTEL_MAC, MachineModel
from repro.trace import Tracer

MACHINES = (INTEL_MAC, AMD_OPTERON)


@dataclass
class SpeedupCell:
    benchmark: str
    machine: str
    config: str
    tuning: TuningResult
    #: per-phase wall-clock seconds this cell actually spent (pipeline
    #: phases only on the cell that ran them; 'tune' always)
    timings: Dict[str, float] = field(default_factory=dict)
    #: worker-local :meth:`repro.trace.Tracer.export`, when requested
    trace: Optional[Dict[str, Any]] = None

    @property
    def speedup(self) -> float:
        return self.tuning.speedup


@dataclass(frozen=True)
class Figure20Task:
    """One executor work unit: a (benchmark, machine, config) cell."""

    benchmark: Benchmark
    machine: MachineModel
    kind: str
    #: record a worker-local trace and ship it back with the cell
    trace: bool = False


#: (source digest, config kind) -> finished pipeline result, so the cells
#: for both machine models (and repeated calls) share one pipeline run
#: per process
_PIPELINE_CACHE: Dict[Tuple[str, str], PipelineResult] = {}


def clear_pipeline_cache() -> None:
    _PIPELINE_CACHE.clear()


def run_cell_task(task: Figure20Task) -> SpeedupCell:
    tracer = Tracer(label=f"figure20 {task.benchmark.name}/"
                          f"{task.machine.name}/{task.kind}") \
        if task.trace else None
    key = (task.benchmark.digest(), task.kind)
    result = _PIPELINE_CACHE.get(key)
    if result is None:
        result = run_config(task.benchmark, Config(task.kind),
                            tracer=tracer)
        _PIPELINE_CACHE[key] = result
        timings = dict(result.report.timings)
    else:
        timings = {}  # pipeline time already attributed to an earlier cell
    t0 = perf_counter()
    # tuning mutates the program: use a fresh clone per machine
    program = result.program.clone()
    if tracer is not None:
        with tracer.span("tune", benchmark=task.benchmark.name,
                         machine=task.machine.name, config=task.kind):
            tuning = tune(program, task.machine, task.benchmark.inputs)
    else:
        tuning = tune(program, task.machine, task.benchmark.inputs)
    timings["tune"] = timings.get("tune", 0.0) + (perf_counter() - t0)
    return SpeedupCell(task.benchmark.name, task.machine.name, task.kind,
                       tuning, timings,
                       tracer.export() if tracer else None)


def figure20_cells(benchmark: Benchmark,
                   machines: Sequence[MachineModel] = MACHINES,
                   jobs: Optional[int] = None,
                   tracer: Optional[Tracer] = None) -> List[SpeedupCell]:
    trace = tracer is not None and tracer.enabled
    tasks = [Figure20Task(benchmark, machine, kind, trace=trace)
             for machine in machines for kind in CONFIGS]
    cells = run_tasks(run_cell_task, tasks, jobs=jobs,
                      tracer=tracer, label="figure20")
    merge_task_traces(tracer, [c.trace for c in cells])
    return cells


def figure20_all(machines: Sequence[MachineModel] = MACHINES,
                 benchmarks: Optional[List[Benchmark]] = None,
                 jobs: Optional[int] = None,
                 tracer: Optional[Tracer] = None) -> List[SpeedupCell]:
    benchmarks = benchmarks if benchmarks is not None else all_benchmarks()
    trace = tracer is not None and tracer.enabled
    tasks = [Figure20Task(b, machine, kind, trace=trace)
             for b in benchmarks
             for machine in machines for kind in CONFIGS]
    cells = run_tasks(run_cell_task, tasks, jobs=jobs,
                      tracer=tracer, label="figure20")
    merge_task_traces(tracer, [c.trace for c in cells])
    return cells


def render_figure20(cells: List[SpeedupCell]) -> str:
    by_machine: Dict[str, List[SpeedupCell]] = {}
    for c in cells:
        by_machine.setdefault(c.machine, []).append(c)
    sections: List[str] = []
    for machine, group in by_machine.items():
        labels = [f"{c.benchmark:8s} {c.config}" for c in group]
        values = [c.speedup for c in group]
        sections.append(bar_chart(
            labels, values,
            title=f"FIGURE 20: speedups on {machine} "
                  f"(serial time / tuned parallel time)"))
    return "\n\n".join(sections)
