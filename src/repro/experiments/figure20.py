"""Figure 20 — runtime speedups of the automatically parallelized
benchmarks on the two machine models, under the three inlining
configurations, with empirical tuning applied (exactly the paper's
measurement protocol).

Speedup = serial simulated time / tuned parallel simulated time, per
benchmark x machine x configuration.

Each ``(benchmark x machine x config)`` cell is an independent executor
work unit (:class:`Figure20Task`): the worker runs the configuration's
pipeline (memoized per process, since both machines tune the same
optimized program) and then the tuning protocol on a fresh clone.  Cells
come back in task order, so the rendered figure is byte-identical for
any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.executor import run_tasks
from repro.experiments.pipeline import (CONFIGS, Config, PipelineResult,
                                        run_config)
from repro.experiments.reporting import bar_chart
from repro.experiments.tuning import TuningResult, tune
from repro.perfect import all_benchmarks
from repro.perfect.suite import Benchmark
from repro.runtime.machine import AMD_OPTERON, INTEL_MAC, MachineModel

MACHINES = (INTEL_MAC, AMD_OPTERON)


@dataclass
class SpeedupCell:
    benchmark: str
    machine: str
    config: str
    tuning: TuningResult
    #: per-phase wall-clock seconds this cell actually spent (pipeline
    #: phases only on the cell that ran them; 'tune' always)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        return self.tuning.speedup


@dataclass(frozen=True)
class Figure20Task:
    """One executor work unit: a (benchmark, machine, config) cell."""

    benchmark: Benchmark
    machine: MachineModel
    kind: str


#: (source digest, config kind) -> finished pipeline result, so the cells
#: for both machine models (and repeated calls) share one pipeline run
#: per process
_PIPELINE_CACHE: Dict[Tuple[str, str], PipelineResult] = {}


def clear_pipeline_cache() -> None:
    _PIPELINE_CACHE.clear()


def run_cell_task(task: Figure20Task) -> SpeedupCell:
    key = (task.benchmark.digest(), task.kind)
    result = _PIPELINE_CACHE.get(key)
    if result is None:
        result = run_config(task.benchmark, Config(task.kind))
        _PIPELINE_CACHE[key] = result
        timings = dict(result.report.timings)
    else:
        timings = {}  # pipeline time already attributed to an earlier cell
    t0 = perf_counter()
    # tuning mutates the program: use a fresh clone per machine
    program = result.program.clone()
    tuning = tune(program, task.machine, task.benchmark.inputs)
    timings["tune"] = timings.get("tune", 0.0) + (perf_counter() - t0)
    return SpeedupCell(task.benchmark.name, task.machine.name, task.kind,
                       tuning, timings)


def figure20_cells(benchmark: Benchmark,
                   machines: Sequence[MachineModel] = MACHINES,
                   jobs: Optional[int] = None) -> List[SpeedupCell]:
    tasks = [Figure20Task(benchmark, machine, kind)
             for machine in machines for kind in CONFIGS]
    return run_tasks(run_cell_task, tasks, jobs=jobs)


def figure20_all(machines: Sequence[MachineModel] = MACHINES,
                 benchmarks: Optional[List[Benchmark]] = None,
                 jobs: Optional[int] = None) -> List[SpeedupCell]:
    benchmarks = benchmarks if benchmarks is not None else all_benchmarks()
    tasks = [Figure20Task(b, machine, kind)
             for b in benchmarks
             for machine in machines for kind in CONFIGS]
    return run_tasks(run_cell_task, tasks, jobs=jobs)


def render_figure20(cells: List[SpeedupCell]) -> str:
    by_machine: Dict[str, List[SpeedupCell]] = {}
    for c in cells:
        by_machine.setdefault(c.machine, []).append(c)
    sections: List[str] = []
    for machine, group in by_machine.items():
        labels = [f"{c.benchmark:8s} {c.config}" for c in group]
        values = [c.speedup for c in group]
        sections.append(bar_chart(
            labels, values,
            title=f"FIGURE 20: speedups on {machine} "
                  f"(serial time / tuned parallel time)"))
    return "\n\n".join(sections)
