"""Table I — summary of the PERFECT benchmarks."""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments.reporting import text_table
from repro.perfect import all_benchmarks


def table1_rows() -> List[Tuple[str, str]]:
    return [(b.name, b.description) for b in all_benchmarks()]


def render_table1() -> str:
    return text_table(["Applications", "Descriptions"], table1_rows(),
                      title="TABLE I: SUMMARY OF THE PERFECT BENCHMARKS")
