"""Table I — summary of the PERFECT benchmarks."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.executor import run_tasks
from repro.experiments.reporting import text_table
from repro.perfect import all_benchmarks
from repro.perfect.suite import Benchmark
from repro.trace import Tracer


def _describe(benchmark: Benchmark) -> Tuple[str, str]:
    return (benchmark.name, benchmark.description)


def table1_rows(jobs: Optional[int] = None,
                tracer: Optional[Tracer] = None) -> List[Tuple[str, str]]:
    return run_tasks(_describe, all_benchmarks(), jobs=jobs,
                     tracer=tracer, label="table1")


def render_table1(jobs: Optional[int] = None,
                  tracer: Optional[Tracer] = None) -> str:
    return text_table(["Applications", "Descriptions"],
                      table1_rows(jobs, tracer),
                      title="TABLE I: SUMMARY OF THE PERFECT BENCHMARKS")
