"""The annotations-axis ablation: hand vs inferred vs demand.

For each benchmark, runs the ``annotation`` pipeline once per axis value
and compares ``#par-loops`` (the Table II counting protocol) against the
hand-written annotations the paper assumes:

* ``inf:par`` / ``inf:recov%`` — loops recovered by pure inference and
  the recovery rate against hand-written annotations;
* ``inf:flips`` — loops inference parallelizes that hand-written
  annotations do **not** (soundness: must be 0 — inference may only
  lose precision, never invent parallelism the hand summaries reject);
* ``dem:par`` / ``dem:extra`` — demand-driven inlining, which merges
  hand annotations, inferred gap-fillers, and body inlining, so it can
  legitimately exceed the hand-only number.

The ``(benchmark x mode)`` runs are independent and fan out through
:mod:`repro.experiments.executor`, like Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional

from repro.annotations.infer import ANNOTATION_MODES
from repro.experiments.executor import merge_task_traces, run_tasks
from repro.experiments.pipeline import Config, run_config
from repro.experiments.reporting import text_table
from repro.perfect import all_benchmarks
from repro.perfect.suite import Benchmark
from repro.polaris import PolarisOptions
from repro.trace import Tracer


@dataclass(frozen=True)
class AblationTask:
    """One executor work unit: benchmark x annotations mode."""

    benchmark: Benchmark
    mode: str
    polaris: Optional[PolarisOptions] = None
    trace: bool = False


@dataclass(frozen=True)
class AblationOutcome:
    """Picklable per-mode summary returned by workers."""

    mode: str
    origins: FrozenSet[str]
    code_lines: int
    trace: Optional[Dict[str, Any]] = None


@dataclass
class AblationRow:
    benchmark: str
    #: parallel origin sets per mode
    origins: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def par(self, mode: str) -> int:
        return len(self.origins[mode])

    def flips(self) -> int:
        """Loops inference parallelizes that hand annotations reject."""
        return len(self.origins["inferred"] - self.origins["hand"])

    def demand_extra(self) -> int:
        return len(self.origins["demand"] - self.origins["hand"])

    def recovery(self) -> Optional[float]:
        hand = self.par("hand")
        if hand == 0:
            return None
        return len(self.origins["inferred"] & self.origins["hand"]) / hand


def run_ablation_task(task: AblationTask) -> AblationOutcome:
    polaris = task.polaris if task.polaris is not None else PolarisOptions()
    tracer = Tracer(label=f"ablation {task.benchmark.name}/{task.mode}") \
        if task.trace else None
    result = run_config(task.benchmark,
                        Config("annotation", polaris,
                               annotations=task.mode),
                        tracer=tracer)
    return AblationOutcome(task.mode, frozenset(result.parallel_origins()),
                           result.code_lines,
                           tracer.export() if tracer else None)


def ablation_rows(polaris: Optional[PolarisOptions] = None,
                  jobs: Optional[int] = None,
                  benchmarks: Optional[List[Benchmark]] = None,
                  tracer: Optional[Tracer] = None) -> List[AblationRow]:
    benchmarks = benchmarks if benchmarks is not None else all_benchmarks()
    trace = tracer is not None and tracer.enabled
    tasks = [AblationTask(b, mode, polaris, trace=trace)
             for b in benchmarks for mode in ANNOTATION_MODES]
    outcomes = run_tasks(run_ablation_task, tasks, jobs=jobs,
                         tracer=tracer, label="ablation")
    merge_task_traces(tracer, [o.trace for o in outcomes])
    rows: List[AblationRow] = []
    n = len(ANNOTATION_MODES)
    for i, b in enumerate(benchmarks):
        row = AblationRow(b.name)
        for outcome in outcomes[i * n:(i + 1) * n]:
            row.origins[outcome.mode] = outcome.origins
        rows.append(row)
    return rows


def render_ablation(rows: Optional[List[AblationRow]] = None,
                    jobs: Optional[int] = None) -> str:
    rows = rows if rows is not None else ablation_rows(jobs=jobs)
    headers = ["Application", "hand:par", "inf:par", "inf:recov%",
               "inf:flips", "dem:par", "dem:extra"]
    body: List[List[object]] = []
    tot = {"hand": 0, "inf": 0, "recov": 0, "flips": 0, "dem": 0,
           "extra": 0}
    for r in rows:
        recov = r.recovery()
        body.append([r.benchmark, r.par("hand"), r.par("inferred"),
                     f"{100 * recov:.0f}" if recov is not None else "-",
                     r.flips(), r.par("demand"), r.demand_extra()])
        tot["hand"] += r.par("hand")
        tot["inf"] += r.par("inferred")
        tot["recov"] += len(r.origins["inferred"] & r.origins["hand"])
        tot["flips"] += r.flips()
        tot["dem"] += r.par("demand")
        tot["extra"] += r.demand_extra()
    total_recov = (f"{100 * tot['recov'] / tot['hand']:.0f}"
                   if tot["hand"] else "-")
    body.append(["TOTAL", tot["hand"], tot["inf"], total_recov,
                 tot["flips"], tot["dem"], tot["extra"]])
    return text_table(
        headers, body,
        title="ANNOTATIONS ABLATION: #PAR-LOOPS UNDER "
              "hand / inferred / demand (annotation config)")
