"""Empirical performance tuning (paper Section IV-B).

"To avoid degradation of performance by excessive parallelization of
loops, we used empirical performance tuning to disable a selected set of
loops from being parallelized if their parallelization incurs a slowdown
of the overall execution time."

Greedy procedure on the optimized program: measure the simulated time;
for each parallel directive (worst offenders first: smallest loops), try
running with that directive disabled; keep the removal whenever it
improves end-to-end time.  Operates on the final (reverse-inlined) AST,
so it applies identically to all three configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.fortran import ast
from repro.program import Program
from repro.runtime.backend import make_interpreter
from repro.runtime.machine import MachineModel


@dataclass
class TuningResult:
    initial_cost: float
    tuned_cost: float
    serial_cost: float
    disabled: List[str] = field(default_factory=list)
    kept: List[str] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        return self.serial_cost / self.tuned_cost if self.tuned_cost else 1.0

    @property
    def untuned_speedup(self) -> float:
        return (self.serial_cost / self.initial_cost
                if self.initial_cost else 1.0)


def _directive_sites(program: Program):
    """(container list, index, OmpParallelDo) for every directive."""
    sites = []

    def scan(body: List[ast.Stmt]) -> None:
        for i, s in enumerate(body):
            if isinstance(s, ast.OmpParallelDo):
                sites.append((body, i, s))
                scan(s.loop.body)
            else:
                for child in ast.stmt_children(s):
                    scan(child)

    for unit in program.units:
        scan(unit.body)
    return sites


def _measure(program: Program, machine: Optional[MachineModel],
             inputs: Sequence[float]):
    interp = make_interpreter(program, machine=machine,
                              honor_directives=machine is not None,
                              inputs=list(inputs))
    cost = interp.run().cost
    return cost, interp.omp_stats


def tune(program: Program, machine: MachineModel,
         inputs: Sequence[float] = (), max_rounds: int = 4) -> TuningResult:
    """Disable harmful directives in place.

    Instead of re-measuring per directive (one execution each), a single
    instrumented run yields every directive's accumulated serial-body vs
    parallel cost; every directive whose parallel execution is not a net
    win is disabled, and the process repeats (disabling an outer region
    changes the fork costs of the regions nested inside it) until a
    fixed point, typically 2-3 executions total.
    """
    serial, _ = _measure(program, None, inputs)
    initial, stats = _measure(program, machine, inputs)
    best = initial
    disabled: List[str] = []
    for _ in range(max_rounds):
        harmful_ids = {key for key, (s_cost, p_cost) in stats.items()
                       if p_cost >= s_cost}
        if not harmful_ids:
            break
        changed = False
        for body, idx, omp in _directive_sites(program):
            if isinstance(body[idx], ast.OmpParallelDo) \
                    and id(body[idx]) in harmful_ids:
                label = f"{omp.loop.var}@{getattr(omp.loop, 'origin', '?')}"
                body[idx] = omp.loop
                disabled.append(label)
                changed = True
        if not changed:
            break
        best, stats = _measure(program, machine, inputs)
    kept = [f"{omp.loop.var}@{getattr(omp.loop, 'origin', '?')}"
            for body, idx, omp in _directive_sites(program)
            if isinstance(body[idx], ast.OmpParallelDo)]
    return TuningResult(initial, best, serial, disabled, kept)
