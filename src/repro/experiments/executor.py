"""Parallel experiment executor.

The evaluation protocol (Table II, Figure 20, the ablations) decomposes
into independent ``(benchmark x config x machine)`` work units; this
module fans them out across a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the *assembled* artifacts byte-identical to a serial run:

* task lists are built up front in a deterministic order and results come
  back in submission order (``pool.map`` semantics), so parallelism never
  reorders a table row or a figure bar;
* workers receive only picklable task descriptors and return only
  picklable summary data (origin sets, line counts, tuning results) —
  never live ASTs;
* ``jobs=1`` (the default), a single task, or any pool-infrastructure
  failure (no ``fork``/semaphores in the sandbox, unpicklable work, a
  broken pool) all degrade gracefully to an in-process serial loop;
* a worker process never spawns a nested pool: :func:`resolve_jobs`
  answers 1 inside a worker regardless of flags or environment.

Worker count resolution order: explicit ``jobs`` argument (the CLI's
``-j/--jobs``), then the ``REPRO_JOBS`` environment variable, then 1
(serial).  A value of 0 or less means "one worker per CPU".
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import (Any, Callable, Dict, Iterable, List, Optional,
                    TypeVar)

from repro.obs import logging as obs_logging
from repro.obs import metrics as obs_metrics
from repro.trace import NULL_TRACER, Tracer

_log = obs_logging.get_logger("repro.executor")

T = TypeVar("T")
R = TypeVar("R")

#: environment variable consulted when no explicit job count is given
JOBS_ENV = "REPRO_JOBS"

#: set inside pool workers so nested run_tasks calls stay serial
_IN_WORKER_ENV = "_REPRO_POOL_WORKER"


class JobsError(ValueError):
    """An unusable worker-count setting (bad ``-j`` value or REPRO_JOBS)."""


def in_worker() -> bool:
    """True inside a pool worker process."""
    return bool(os.environ.get(_IN_WORKER_ENV))


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``REPRO_JOBS`` > 1 (serial).

    ``jobs == 0`` requests one worker per CPU.  A non-integer
    ``REPRO_JOBS`` or a negative count (either path) raises
    :class:`JobsError` with an actionable message rather than surfacing a
    bare traceback.  Inside a pool worker the answer is always 1 so
    workers never fork nested pools.
    """
    if in_worker():
        return 1
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            raise JobsError(
                f"{JOBS_ENV}={raw!r} is not an integer; use a worker "
                f"count >= 1, or 0 for one worker per CPU") from None
    if jobs < 0:
        raise JobsError(
            f"job count must be >= 0, got {jobs} "
            f"(0 means one worker per CPU)")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _mark_worker() -> None:  # pragma: no cover - runs in child processes
    os.environ[_IN_WORKER_ENV] = "1"


def _observed_task(fn: Callable[[T], R], ctx: Dict[str, object],
                   log_mode: str, log_level: str, task: T):
    """Worker-side wrapper around one task.

    Re-establishes the parent's log configuration and correlation
    context (CLI flags do not survive the process boundary, and a
    spawned worker starts with a fresh contextvars world), runs the
    task, and ships back ``(result, metrics-delta)`` — the delta of the
    worker's default registry around this one task, so long-lived
    workers never double-report and the parent can merge deltas exactly
    like PR 3 merges trace spans.
    """
    obs_logging.configure(mode=log_mode, level=log_level)
    registry = obs_metrics.get_registry()
    before = registry.export()
    hist = registry.histogram("repro_executor_task_seconds",
                              "per-task wall-clock in executor workers")
    with obs_logging.log_context(**ctx):
        with hist.time():
            result = fn(task)
    return result, obs_metrics.MetricsRegistry.delta(before,
                                                     registry.export())


def _run_serial(fn: Callable[[T], R], tasks: List[T]) -> List[R]:
    """In-process loop: metrics land directly in this registry."""
    hist = obs_metrics.histogram(
        "repro_executor_task_seconds",
        "per-task wall-clock in executor workers")
    out: List[R] = []
    for t in tasks:
        with hist.time():
            out.append(fn(t))
    return out


def run_tasks(fn: Callable[[T], R], tasks: Iterable[T],
              jobs: Optional[int] = None, chunksize: int = 1,
              tracer: Optional[Tracer] = None,
              label: str = "tasks") -> List[R]:
    """Map ``fn`` over ``tasks``, preserving task order in the result.

    With an effective worker count of 1 (or a single task) the map runs
    serially in-process.  Otherwise the tasks fan out over a process
    pool; any pool-infrastructure failure — pool startup, pickling of
    ``fn``/tasks/results, a worker dying — falls back to the serial loop,
    so callers always get the same result list.  ``fn`` must be a
    module-level callable and tasks/results picklable for the parallel
    path to engage.  (``chunksize`` is retained for signature
    compatibility; tasks are submitted individually so queue depth is
    observable.)

    ``tracer`` (optional) records one span over the whole batch plus an
    instant event if the pool degrades to the serial fallback — the
    fan-out itself becomes visible on the trace timeline.  Pool workers
    additionally inherit the caller's log context (so worker records
    carry the parent ``run_id``) and return per-task metric deltas that
    are merged into this process's default registry, keeping counter
    values identical for any ``-j``.
    """
    tracer = tracer or NULL_TRACER
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    batches = obs_metrics.counter(
        "repro_executor_batches_total",
        "task batches by execution mode (serial/pool/fallback)")
    obs_metrics.counter("repro_executor_tasks_total",
                        "tasks executed per batch label").inc(
                            len(tasks), label=label)
    pending = obs_metrics.gauge("repro_executor_pending_tasks",
                                "tasks submitted but not yet finished")
    with tracer.span(f"run_tasks {label}", cat="executor",
                     tasks=len(tasks), jobs=jobs):
        if jobs <= 1 or len(tasks) <= 1:
            batches.inc(mode="serial")
            return _run_serial(fn, tasks)
        _log.debug("batch-start", label=label, tasks=len(tasks), jobs=jobs)
        wrapped = partial(_observed_task, fn, obs_logging.current_context(),
                          obs_logging.configured_mode(),
                          obs_logging.configured_level())
        workers = min(jobs, len(tasks))
        obs_metrics.gauge("repro_executor_workers",
                          "worker processes in the most recent pool "
                          "batch").set(workers)
        try:
            with ProcessPoolExecutor(max_workers=workers,
                                     initializer=_mark_worker) as pool:
                pending.inc(len(tasks))
                futures = []
                for t in tasks:
                    future = pool.submit(wrapped, t)
                    future.add_done_callback(lambda _f: pending.dec())
                    futures.append(future)
                # collect everything before merging any delta, so a
                # failure mid-batch leaves the registry untouched for
                # the serial rerun below (no double counting)
                pairs = [f.result() for f in futures]
        except (BrokenProcessPool, pickle.PicklingError, AttributeError,
                TypeError, OSError, ImportError):
            # pool could not be started or could not transport the work
            # (sandboxed semaphores, unpicklable closures, killed workers):
            # the tasks themselves are pure, so redo them serially
            pending.set(0)
            tracer.instant("serial-fallback", cat="executor",
                           tasks=len(tasks), jobs=jobs)
            _log.warning("serial-fallback", label=label, tasks=len(tasks),
                         jobs=jobs)
            batches.inc(mode="fallback")
            return _run_serial(fn, tasks)
        batches.inc(mode="pool")
        registry = obs_metrics.get_registry()
        for _result, delta in pairs:
            registry.merge(delta)
        return [result for result, _delta in pairs]


def merge_task_traces(tracer: Optional[Tracer],
                      exports: Iterable[Optional[Dict[str, Any]]]) -> None:
    """Fold worker-local trace exports back into the parent trace.

    ``exports`` follows :func:`run_tasks` result order (one entry per
    task, ``None`` where the task was not traced).  Each export keeps
    the process lane of the worker that really ran it; tasks executed
    in-process (serial runs, fallback) land on the parent's own lane.
    """
    if tracer is None or not tracer.enabled:
        return
    for exported in exports:
        tracer.merge(exported)


# ---------------------------------------------------------------------------
# persistent worker pool (the serving path)
# ---------------------------------------------------------------------------

class WorkerCrashError(RuntimeError):
    """A pool worker died mid-task (killed, OOM, segfault).

    The task itself may be fine — callers that know their tasks are pure
    (the service's job dispatcher) retry on this.
    """


class WorkerTimeout(RuntimeError):
    """A task exceeded its deadline; its worker was abandoned."""


class WorkerPool:
    """A long-lived, crash-tolerant wrapper over ProcessPoolExecutor.

    Unlike :func:`run_tasks` (one batch, assembled results), the service
    keeps a pool alive across many independent jobs and needs per-task
    deadlines plus crash *reporting* instead of silent serial fallback:

    * ``run(fn, arg, timeout=...)`` blocks the calling thread until the
      task finishes — concurrency comes from several dispatcher threads
      sharing one pool;
    * a worker death surfaces as :class:`WorkerCrashError` and the pool
      is rebuilt, so the *next* task runs normally (ProcessPoolExecutor
      marks itself broken forever after one crash);
    * a deadline miss surfaces as :class:`WorkerTimeout`; the busy
      worker cannot be interrupted, so the pool is recycled and the
      stale worker left to finish in the background;
    * if pool infrastructure is unavailable (sandboxes without
      semaphores) the pool degrades to inline execution in the calling
      thread — deadlines then apply only while a task is still queued,
      and a task can signal a simulated crash by raising
      :class:`WorkerCrashError` itself (the retry path stays testable).
    """

    def __init__(self, workers: int = 1, inline: Optional[bool] = None):
        self.workers = max(1, workers)
        self._lock = threading.Lock()
        self._pool: Optional[ProcessPoolExecutor] = None
        if inline is None:
            inline = in_worker()  # never nest pools
        self._inline = inline

    @property
    def inline(self) -> bool:
        return self._inline

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        with self._lock:
            if self._inline:
                return None
            if self._pool is None:
                try:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.workers, initializer=_mark_worker)
                except (OSError, ImportError, ValueError):
                    self._inline = True
                    return None
            return self._pool

    def _recycle(self, broken: Optional[ProcessPoolExecutor]) -> None:
        """Discard a broken/abandoned pool so the next run starts fresh."""
        with self._lock:
            if self._pool is broken and broken is not None:
                self._pool = None
                try:
                    broken.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass

    def run(self, fn: Callable[[T], R], arg: T,
            timeout: Optional[float] = None) -> R:
        """Execute ``fn(arg)``, blocking until done or ``timeout`` seconds.

        Raises :class:`WorkerTimeout` on deadline miss and
        :class:`WorkerCrashError` when the worker process dies; any
        exception raised by ``fn`` itself propagates unchanged.
        """
        pool = self._ensure_pool()
        if pool is None:
            return fn(arg)  # inline mode; WorkerCrashError may propagate
        future = pool.submit(fn, arg)
        try:
            return future.result(timeout=timeout)
        except FutureTimeoutError:
            future.cancel()
            self._recycle(pool)
            raise WorkerTimeout(
                f"task exceeded its {timeout:.3g}s deadline") from None
        except BrokenProcessPool:
            self._recycle(pool)
            raise WorkerCrashError("worker process died mid-task") from None

    def shutdown(self) -> None:
        with self._lock:
            if self._pool is not None:
                try:
                    self._pool.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
                self._pool = None
