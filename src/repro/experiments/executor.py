"""Parallel experiment executor.

The evaluation protocol (Table II, Figure 20, the ablations) decomposes
into independent ``(benchmark x config x machine)`` work units; this
module fans them out across a :class:`~concurrent.futures.ProcessPoolExecutor`
while keeping the *assembled* artifacts byte-identical to a serial run:

* task lists are built up front in a deterministic order and results come
  back in submission order (``pool.map`` semantics), so parallelism never
  reorders a table row or a figure bar;
* workers receive only picklable task descriptors and return only
  picklable summary data (origin sets, line counts, tuning results) —
  never live ASTs;
* ``jobs=1`` (the default), a single task, or any pool-infrastructure
  failure (no ``fork``/semaphores in the sandbox, unpicklable work, a
  broken pool) all degrade gracefully to an in-process serial loop;
* a worker process never spawns a nested pool: :func:`resolve_jobs`
  answers 1 inside a worker regardless of flags or environment.

Worker count resolution order: explicit ``jobs`` argument (the CLI's
``-j/--jobs``), then the ``REPRO_JOBS`` environment variable, then 1
(serial).  A value of 0 or less means "one worker per CPU".
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: environment variable consulted when no explicit job count is given
JOBS_ENV = "REPRO_JOBS"

#: set inside pool workers so nested run_tasks calls stay serial
_IN_WORKER_ENV = "_REPRO_POOL_WORKER"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: argument > ``REPRO_JOBS`` > 1 (serial).

    ``jobs <= 0`` requests one worker per CPU.  Inside a pool worker the
    answer is always 1 so workers never fork nested pools.
    """
    if os.environ.get(_IN_WORKER_ENV):
        return 1
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            jobs = int(raw)
        except ValueError:
            return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _mark_worker() -> None:  # pragma: no cover - runs in child processes
    os.environ[_IN_WORKER_ENV] = "1"


def run_tasks(fn: Callable[[T], R], tasks: Iterable[T],
              jobs: Optional[int] = None, chunksize: int = 1) -> List[R]:
    """Map ``fn`` over ``tasks``, preserving task order in the result.

    With an effective worker count of 1 (or a single task) the map runs
    serially in-process.  Otherwise the tasks fan out over a process
    pool; any pool-infrastructure failure — pool startup, pickling of
    ``fn``/tasks/results, a worker dying — falls back to the serial loop,
    so callers always get the same result list.  ``fn`` must be a
    module-level callable and tasks/results picklable for the parallel
    path to engage.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(t) for t in tasks]
    try:
        with ProcessPoolExecutor(max_workers=min(jobs, len(tasks)),
                                 initializer=_mark_worker) as pool:
            return list(pool.map(fn, tasks, chunksize=chunksize))
    except (BrokenProcessPool, pickle.PicklingError, AttributeError,
            TypeError, OSError, ImportError):
        # pool could not be started or could not transport the work
        # (sandboxed semaphores, unpicklable closures, killed workers):
        # the tasks themselves are pure, so redo them serially
        return [fn(t) for t in tasks]
