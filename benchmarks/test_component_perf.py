"""Micro-benchmarks of the compiler components (frontend, dependence
tester, inliners, interpreter) on realistic inputs."""

import pytest

from repro.analysis.affine import extract
from repro.analysis.dependence import DependenceTester, LoopCtx
from repro.annotations import AnnotationInliner, ReverseInliner
from repro.fortran.parser import parse_expression, parse_source
from repro.fortran.unparser import unparse
from repro.perfect import get_benchmark
from repro.polaris import Polaris
from repro.program import Program
from repro.runtime import Interpreter


@pytest.fixture(scope="module")
def dyfesm_source():
    return "\n".join(get_benchmark("dyfesm").sources.values())


def test_parse_speed(benchmark, dyfesm_source):
    tree = benchmark(parse_source, dyfesm_source)
    assert tree.units


def test_unparse_roundtrip_speed(benchmark, dyfesm_source):
    tree = parse_source(dyfesm_source)
    text = benchmark(unparse, tree)
    assert "PROGRAM DYFESM" in text


def test_dependence_tester_speed(benchmark):
    tester = DependenceTester()
    loops = [LoopCtx("K", 1, 100), LoopCtx("J", 1, 16)]
    a = [extract(parse_expression("J"), ["K", "J"]),
         extract(parse_expression("64*IB+K"), ["K", "J"])]
    dirs = {"K": "<", "J": "*"}

    def run_many():
        hits = 0
        for _ in range(500):
            if tester.may_depend(a, a, loops, dirs):
                hits += 1
        return hits

    assert benchmark(run_many) == 0  # all independent


def test_polaris_speed(benchmark):
    bench = get_benchmark("arc2d")

    def analyze():
        prog = bench.program()
        return Polaris().run(prog)

    report = benchmark(analyze)
    assert report.verdicts


def test_annotation_roundtrip_speed(benchmark):
    bench = get_benchmark("dyfesm")
    registry = bench.registry()

    def roundtrip():
        prog = bench.program()
        AnnotationInliner(registry).run(prog)
        Polaris().run(prog)
        return ReverseInliner(registry).run(prog)

    rev = benchmark(roundtrip)
    assert rev.reversed_count == 2  # one FSMP site + one ASSEM site


def test_interpreter_speed(benchmark):
    prog = get_benchmark("flo52q").program()

    def execute():
        return Interpreter(prog).run()

    result = benchmark(execute)
    assert result.output


def test_table2_pipeline_speed(benchmark):
    """End-to-end Table II generation (all 12 benchmarks x 3 configs),
    cold caches each round so the number tracks the full pipeline cost
    across PRs.  Honors REPRO_JOBS, so a multicore host can benchmark
    the parallel executor path too."""
    from repro.experiments import pipeline
    from repro.experiments.table2 import render_table2, table2_rows
    from repro.perfect import suite

    def full_table():
        suite.clear_program_cache()
        pipeline.clear_base_cache()
        return render_table2(table2_rows())

    text = benchmark(full_table)
    assert "TABLE II" in text and "TOTAL" in text


def test_table2_pipeline_speed_warm_cache(benchmark):
    """Same pipeline with warm parse/base caches: the steady-state cost
    a long-running service would pay per Table II regeneration."""
    from repro.experiments.table2 import render_table2, table2_rows

    text = benchmark(lambda: render_table2(table2_rows()))
    assert "TABLE II" in text
