"""Regenerates Table I (benchmark summary) and times the suite loader."""

from benchmarks.conftest import emit
from repro.experiments.table1 import render_table1, table1_rows
from repro.perfect import all_benchmarks


def test_table1(benchmark, out_dir):
    rows = benchmark(table1_rows)
    assert len(rows) == 12
    emit(out_dir, "table1.txt", render_table1())


def test_suite_parses(benchmark):
    def load_all():
        return [b.program() for b in all_benchmarks()]

    programs = benchmark(load_all)
    assert len(programs) == 12
    assert all(p.main is not None for p in programs)
