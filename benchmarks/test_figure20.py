"""Regenerates Figure 20: tuned speedups per benchmark x machine x
configuration on the simulated Intel Mac (8 threads) and AMD Opteron
(4 threads).

The timed section measures the tune-and-run protocol on one application;
the full figure is produced once and written to
``benchmarks/out/figure20.txt``.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.figure20 import (figure20_all, figure20_cells,
                                        render_figure20)
from repro.perfect import get_benchmark
from repro.runtime.machine import INTEL_MAC


@pytest.fixture(scope="module")
def cells():
    return figure20_all()


def test_figure20_generation(cells, out_dir, benchmark):
    text = benchmark(render_figure20, cells)
    emit(out_dir, "figure20.txt", text)
    assert len(cells) == 12 * 2 * 3


def test_figure20_shape_claims(cells, benchmark):
    by_key = benchmark(lambda: {(c.benchmark, c.machine, c.config): c
                                for c in cells})
    benchmarks = {c.benchmark for c in cells}
    machines = {c.machine for c in cells}
    ann_total = conv_total = none_total = 0.0
    for b in benchmarks:
        for m in machines:
            none = by_key[(b, m, "none")].speedup
            conv = by_key[(b, m, "conventional")].speedup
            ann = by_key[(b, m, "annotation")].speedup
            none_total += none
            conv_total += conv
            ann_total += ann
            # annotation-based inlining achieves the best performance
            # (paper Section IV-B); per-cell we allow 5% measurement
            # granularity (an inlined body dodges call overhead, which is
            # exactly the within-noise variation the paper's bars show)
            assert ann >= none * 0.95, (b, m, ann, none)
            assert ann >= conv * 0.95, (b, m, ann, conv)
            # tuning never leaves the program slower than serial
            assert ann >= 0.999
    # the aggregate claim is strict: annotation wins suite-wide
    assert ann_total > conv_total
    assert ann_total > none_total


def test_tuning_prevents_slowdowns(cells, benchmark):
    benchmark(lambda: [c.tuning.speedup for c in cells])
    # the untuned programs often run SLOWER than serial (the paper's
    # motivation for the empirical tuning step); tuned never do
    untuned_slowdowns = sum(1 for c in cells
                            if c.tuning.untuned_speedup < 0.999)
    assert untuned_slowdowns > 0
    assert all(c.speedup >= 0.999 for c in cells)


def test_tuning_speed(benchmark):
    bench = get_benchmark("adm")

    def tune_adm():
        return figure20_cells(bench, machines=[INTEL_MAC])

    cells = benchmark(tune_adm)
    assert len(cells) == 3
