"""Regenerates Table II: parallelized-loop counts and code sizes under the
three inlining configurations, for all 12 benchmarks.

The timed section is one representative full pipeline (DYFESM, the
heaviest application); the full table is generated once per session and
written to ``benchmarks/out/table2.txt``.
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.table2 import render_table2, table2_row, table2_rows
from repro.perfect import get_benchmark


@pytest.fixture(scope="module")
def rows():
    return table2_rows()


def test_table2_generation(rows, out_dir, benchmark):
    text = benchmark(render_table2, rows)
    emit(out_dir, "table2.txt", text)
    assert len(rows) == 12


def test_table2_shape_claims(rows, benchmark):
    """The paper's aggregate claims hold in shape."""
    benchmark(render_table2, rows)
    ann_extra = sum(r.configs["annotation"].par_extra for r in rows)
    conv_extra = sum(r.configs["conventional"].par_extra for r in rows)
    conv_loss = sum(r.configs["conventional"].par_loss for r in rows)
    ann_loss = sum(r.configs["annotation"].par_loss for r in rows)
    helped = sum(1 for r in rows if r.configs["annotation"].par_extra > 0)
    assert ann_loss == 0                 # annotation never loses loops
    assert ann_extra > conv_extra        # 37 vs 12 in the paper
    assert conv_loss > 0                 # 90 in the paper
    assert 4 <= helped < 12              # 6 of 12 in the paper

    # conventional inlining grows code; annotation-based stays ~flat
    conv_growth = sum(r.lines["conventional"] for r in rows) / \
        sum(r.lines["none"] for r in rows)
    ann_growth = sum(r.lines["annotation"] for r in rows) / \
        sum(r.lines["none"] for r in rows)
    assert conv_growth > 1.01
    assert ann_growth < conv_growth
    assert ann_growth < 1.10


def test_pipeline_speed_dyfesm(benchmark):
    bench = get_benchmark("dyfesm")
    row = benchmark(table2_row, bench)
    assert row.configs["annotation"].par_extra >= 2
