"""Shared fixtures for the benchmark/experiment harness.

Run with ``pytest benchmarks/ --benchmark-only``.  Beyond timing, these
benches *regenerate the paper's artifacts*: each table/figure bench
writes its rendered output to ``benchmarks/out/`` and prints it, so a
complete run reproduces Table I, Table II and Figure 20.
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture(scope="session")
def out_dir():
    os.makedirs(OUT_DIR, exist_ok=True)
    return OUT_DIR


def emit(out_dir: str, name: str, text: str) -> None:
    path = os.path.join(out_dir, name)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
