"""Ablation benches for the design choices DESIGN.md calls out.

1. conventional-inlining size threshold (more inlining => more growth,
   never fewer losses);
2. the ``unique`` base (must exceed inner subscript ranges);
3. the dependence-test family (GCD-only is sound but strictly weaker);
4. machine fork overhead (higher overhead => tuning disables more loops).
"""

import pytest

from benchmarks.conftest import emit
from repro.experiments.executor import run_tasks
from repro.experiments.pipeline import Config, prepare_base, run_config
from repro.experiments.reporting import text_table
from repro.experiments.tuning import tune
from repro.inlining.heuristics import InlinePolicy
from repro.annotations.translate import TranslateOptions
from repro.perfect import get_benchmark
from repro.polaris import PolarisOptions
from repro.polaris.report import ConfigComparison
from repro.runtime.machine import MachineModel


def comparison(bench, config, base=None):
    base = base if base is not None else prepare_base(bench)
    none = run_config(bench, Config("none", config.polaris), base)
    result = run_config(bench, config, base)
    return ConfigComparison.against_baseline(
        none.parallel_origins(), result.parallel_origins()), result


# -- executor work units (module-level so they pickle into pool workers) --

def _threshold_case(task):
    """One conventional-inlining run at a given size threshold."""
    name, threshold = task
    bench = get_benchmark(name)
    cfg = Config("conventional",
                 inline_policy=InlinePolicy(max_statements=threshold))
    cmp_, result = comparison(bench, cfg)
    return [threshold, result.conventional_result.inlined_count,
            cmp_.par_loss, result.code_lines]


def _dependence_origins(task):
    """Parallel origins of a no-inlining run with/without Banerjee."""
    name, use_banerjee = task
    bench = get_benchmark(name)
    result = run_config(bench, Config(
        "none", PolarisOptions(use_banerjee=use_banerjee)))
    return frozenset(result.parallel_origins())


class TestInlineThresholdAblation:
    def test_threshold_sweep(self, out_dir, benchmark):
        bench = get_benchmark("mdg")  # its INTERF has ~157 statements
        benchmark(prepare_base, bench)
        rows = run_tasks(_threshold_case,
                         [("mdg", t) for t in (50, 150, 400)])
        emit(out_dir, "ablation_threshold.txt", text_table(
            ["max stmts", "#inlined", "#par-loss", "lines"], rows,
            title="ABLATION: conventional inlining size threshold (MDG)"))
        # the default threshold excludes INTERF; raising it inlines INTERF
        # and blows the code up without gaining parallel loops
        assert rows[1][1] == 0
        assert rows[2][1] >= 1
        assert rows[2][3] > rows[1][3] * 1.5

    def test_threshold_timing(self, benchmark):
        bench = get_benchmark("mdg")
        base = prepare_base(bench)
        cfg = Config("conventional",
                     inline_policy=InlinePolicy(max_statements=400))
        benchmark(lambda: run_config(bench, cfg, base))


class TestUniqueBaseAblation:
    @pytest.mark.parametrize("base_value,expect_parallel", [
        (4, False),    # not injective over the 1..40 inner range
        (64, True),
        (1024, True),
    ])
    def test_unique_base(self, base_value, expect_parallel, benchmark):
        bench = benchmark(get_benchmark, "trfd")
        cfg = Config("annotation",
                     translate=TranslateOptions(unique_base=base_value))
        cmp_, result = comparison(bench, cfg)
        orbital = [v for v in result.report.verdicts
                   if v.unit == "TRFD" and v.var == "MI"]
        assert orbital
        assert orbital[0].parallelized == expect_parallel

    def test_unique_base_report(self, out_dir, benchmark):
        rows = []
        for base_value in (4, 16, 64, 256, 1024):
            bench = benchmark.pedantic(get_benchmark, args=("trfd",),
                                       rounds=1) \
                if base_value == 4 else get_benchmark("trfd")
            cfg = Config("annotation",
                         translate=TranslateOptions(unique_base=base_value))
            cmp_, _ = comparison(bench, cfg)
            rows.append([base_value, cmp_.par_extra])
        emit(out_dir, "ablation_unique_base.txt", text_table(
            ["unique base", "#par-extra (TRFD)"], rows,
            title="ABLATION: unique() lowering base "
                  "(injectivity over inner ranges required)"))


class TestDependenceTestAblation:
    def test_gcd_only_weaker(self, out_dir, benchmark):
        rows = []
        total_full = total_gcd = 0
        benchmark.pedantic(prepare_base,
                           args=(get_benchmark("flo52q"),), rounds=1)
        names = ("dyfesm", "arc2d", "bdna", "flo52q")
        tasks = [(name, use_banerjee)
                 for name in names for use_banerjee in (True, False)]
        origins = dict(zip(tasks, run_tasks(_dependence_origins, tasks)))
        for name in names:
            full = origins[(name, True)]
            gcd = origins[(name, False)]
            nf, ng = len(full), len(gcd)
            rows.append([name.upper(), nf, ng])
            total_full += nf
            total_gcd += ng
            # GCD-only must be conservative: never parallelize more
            assert gcd <= full
        emit(out_dir, "ablation_dependence.txt", text_table(
            ["benchmark", "#par (full tests)", "#par (GCD only)"], rows,
            title="ABLATION: dependence test family"))
        assert total_gcd < total_full

    def test_dependence_timing(self, benchmark):
        bench = get_benchmark("arc2d")
        base = prepare_base(bench)
        benchmark(lambda: run_config(
            bench, Config("none", PolarisOptions(use_banerjee=True)), base))


class TestOverheadSensitivity:
    def test_fork_overhead_sweep(self, out_dir, benchmark):
        bench = get_benchmark("bdna")
        base = prepare_base(bench)
        result = benchmark.pedantic(
            run_config, args=(bench, Config("annotation"), base), rounds=1)
        rows = []
        prev_disabled = -1
        for overhead in (200.0, 2000.0, 20000.0):
            machine = MachineModel("sweep", threads=8,
                                   fork_join_overhead=overhead)
            tuning = tune(result.program.clone(), machine, bench.inputs)
            rows.append([int(overhead), len(tuning.disabled),
                         f"{tuning.speedup:.3f}"])
            assert len(tuning.disabled) >= prev_disabled
            prev_disabled = len(tuning.disabled)
        emit(out_dir, "ablation_overhead.txt", text_table(
            ["fork overhead", "#disabled", "tuned speedup"], rows,
            title="ABLATION: machine fork/join overhead vs tuning (BDNA)"))


class TestExactTestAblation:
    COUPLED = ("      SUBROUTINE S(A)\n"
               "      DIMENSION A(64,64)\n"
               "      DO 10 I = 1, 30\n"
               "        DO 20 J = 1, 30\n"
               "          A(I+J, I-J+31) = A(I+J, I-J+31)*0.5\n"
               "   20   CONTINUE\n"
               "   10 CONTINUE\n"
               "      END\n")

    def test_exact_vs_per_dimension(self, out_dir, benchmark):
        from repro.polaris import Polaris
        from repro.program import Program

        def run_exact():
            prog = Program.from_source(self.COUPLED)
            return Polaris(PolarisOptions(use_exact=True)).run(prog)

        report = benchmark(run_exact)
        n_exact = report.parallel_count()
        prog = Program.from_source(self.COUPLED)
        n_coarse = Polaris(PolarisOptions(use_exact=False)) \
            .run(prog).parallel_count()
        rows = [["per-dimension (paper-era)", n_coarse],
                ["joint Fourier-Motzkin", n_exact]]
        emit(out_dir, "ablation_exact.txt", text_table(
            ["dependence tests", "#par (coupled-subscript kernel)"], rows,
            title="ABLATION: per-dimension vs joint exact testing"))
        assert n_exact > n_coarse
