"""Figures 10-11 and 14: indirect one-to-one subscripts and `unique`.

Shows why ``RHSB(ICOND(I,ID))`` defeats dependence analysis, and how the
``unique`` operator's injective linear lowering makes the surrounding
loop parallel — including the ablation showing the lowering base must
exceed the inner subscript range.

Run:  python examples/indirect_subscripts.py
"""

from repro.annotations import AnnotationInliner, AnnotationRegistry
from repro.annotations.translate import TranslateOptions
from repro.fortran.unparser import unparse
from repro.polaris import Polaris
from repro.program import Program

SOURCE = """
      PROGRAM DRV
      COMMON /R/ RHSB(9999), XE(16)
      COMMON /C/ ICOND(16,500)
      DO 3 ID = 1, 500
        DO 3 I = 1, 16
          ICOND(I,ID) = (ID-1)*16 + I
    3 CONTINUE
      DO 30 K = 1, 60
        CALL ASSEM(K)
   30 CONTINUE
      END
      SUBROUTINE ASSEM(ID)
      COMMON /R/ RHSB(9999), XE(16)
      COMMON /C/ ICOND(16,500)
      DO 10 I = 1, 16
        RHSB(ICOND(I,ID)) = RHSB(ICOND(I,ID)) + XE(I)
   10 CONTINUE
      END
"""

ANNOTATIONS = """
# ICOND holds a one-to-one map: (ID, I) addresses a unique element
subroutine ASSEM(ID) {
  do (I = 1:16)
    RHSB[unique(ID, I)] = unknown(RHSB[unique(ID, I)], XE[I]);
}
"""


def k_loop_verdict(program):
    report = Polaris().run(program)
    return [v for v in report.verdicts
            if v.unit == "DRV" and v.var == "K"][0]


def main() -> None:
    registry = AnnotationRegistry.from_text(ANNOTATIONS)

    v = k_loop_verdict(Program.from_source(SOURCE))
    print(f"no inlining          : {v.describe()}")

    for base in (4, 64):
        prog = Program.from_source(SOURCE)
        AnnotationInliner(registry,
                          TranslateOptions(unique_base=base)).run(prog)
        v = k_loop_verdict(prog)
        print(f"annotation (base {base:4d}): {v.describe()}")

    print()
    print("With base 64 the unique() lowering is injective over the inner")
    print("range (I in 1..16), so the Banerjee bounds separate iterations;")
    print("base 4 is not injective and the analysis stays conservative —")
    print("the DESIGN.md ablation, demonstrated.")
    print()
    prog = Program.from_source(SOURCE)
    AnnotationInliner(registry).run(prog)
    print("The lowered call site (unique -> 64*ID + I):")
    print(unparse(prog.unit("DRV")))


if __name__ == "__main__":
    main()
