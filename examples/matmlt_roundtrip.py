"""Figures 4-5 and 16-19: the MATMLT linearization pathology and the
annotation round trip, printed stage by stage like the paper's figures.

Run:  python examples/matmlt_roundtrip.py
"""

from repro.annotations import (AnnotationInliner, AnnotationRegistry,
                               ReverseInliner)
from repro.fortran.unparser import unparse
from repro.inlining import ConventionalInliner
from repro.polaris import Polaris
from repro.program import Program

SOURCE = """
      PROGRAM DRIVER
      COMMON /M/ PP(4,4,15), PHIT(4,4), TM1(4,4,15)
      CALL STEP(PP, PHIT, TM1, 4, 15)
      END
      SUBROUTINE STEP(PP, PHIT, TM1, N1, NS)
      DIMENSION PP(N1,N1,NS), PHIT(N1,N1), TM1(N1,N1,NS)
      DO 15 KS = 2, NS
        CALL MATMLT(PP(1,1,KS-1), PHIT(1,1), TM1(1,1,KS), N1*N1)
   15 CONTINUE
      DO 25 J = 1, N1
        DO 24 I = 1, N1
          PHIT(I,J) = PHIT(I,J)*0.5
   24   CONTINUE
   25 CONTINUE
      END
      SUBROUTINE MATMLT(M1, M2, M3, L)
      DIMENSION M1(L), M2(L), M3(L)
      DO 22 K = 1, L
        M3(K) = M1(K)*0.5 + M2(K)*0.25
   22 CONTINUE
      END
"""

ANNOTATIONS = """
# Figure 16: declare the true shapes; no linearization needed
subroutine MATMLT(M1, M2, M3, L) {
  dimension M1[L], M2[L], M3[L];
  M3[*] = unknown(M1[*], M2[*]);
}
"""


def show(title, text):
    print("=" * 70)
    print(title)
    print("=" * 70)
    print(text)


def main() -> None:
    registry = AnnotationRegistry.from_text(ANNOTATIONS)

    # --- the conventional path (Figures 4-5) ---
    conv = Program.from_source(SOURCE)
    ConventionalInliner().run(conv)
    show("Conventional inlining linearizes STEP's arrays caller-wide "
         "(Fig 4-5)", unparse(conv.unit("STEP")))
    report = Polaris().run(conv)
    for v in report.verdicts:
        if v.unit == "STEP":
            print("  ", v.describe())
    print()

    # --- the annotation path (Figures 16-19) ---
    prog = Program.from_source(SOURCE)
    AnnotationInliner(registry).run(prog)
    show("After annotation-based inlining (Fig 18: tagged block, "
         "generated loops)", unparse(prog.unit("STEP")))

    Polaris().run(prog)
    show("After parallelization (Fig 17: directives inside and outside "
         "the tags)", unparse(prog.unit("STEP")))

    ReverseInliner(registry).run(prog)
    show("After reverse inlining (Fig 19: the original call restored)",
         unparse(prog.unit("STEP")))


if __name__ == "__main__":
    main()
