"""Figures 2-3: how conventional inlining LOSES parallelism.

``PCINIT``'s loops parallelize in place (its array formals cannot alias
and the ``I = I + 1`` induction substitutes away).  The call site passes
indirect references into the global pool ``T``; inlining substitutes them
forward, creating the subscripted subscripts ``T(IX(7)+J)`` vs
``T(IX(8)+J)`` that no dependence test can separate — the inlined copies
go serial.

Run:  python examples/loss_of_parallelism.py
"""

from repro.analysis.loops import assign_origins
from repro.fortran.unparser import unparse
from repro.inlining import ConventionalInliner
from repro.polaris import Polaris
from repro.program import Program

SOURCE = """
      PROGRAM MAIN
      COMMON /BLK/ T(100000), IX(64)
      COMMON /FRC/ FX(1000), FY(1000)
      IX(7) = 1000
      IX(8) = 2500
      DO 5 KS = 1, 10
        CALL PCINIT(T(IX(7)+1), T(IX(8)+1), 900)
    5 CONTINUE
      END
      SUBROUTINE PCINIT(X2, Y2, NSP)
      DIMENSION X2(*), Y2(*)
      COMMON /FRC/ FX(1000), FY(1000)
      I = 0
      DO 200 J = 1, NSP
        I = I + 1
        X2(I) = FX(I)*2.0
        Y2(I) = FY(I)*2.0
  200 CONTINUE
      END
"""


def main() -> None:
    print("Before inlining: PCINIT's loop parallelizes in place")
    print("-" * 60)
    base = Program.from_source(SOURCE)
    for u in base.units:
        assign_origins(u)
    for v in Polaris().run(base).verdicts:
        print("  ", v.describe())

    print()
    print("After conventional inlining: the copy in MAIN goes serial")
    print("-" * 60)
    prog = Program.from_source(SOURCE)
    for u in prog.units:
        assign_origins(u)
    ConventionalInliner().run(prog)
    print(unparse(prog.unit("MAIN")))
    for v in Polaris().run(prog).verdicts:
        print("  ", v.describe())
    print()
    print("Note the subscripted subscripts T(IX(7)+1+(J$I1-1)) above —")
    print("the paper's Section II-A1 pathology, reproduced mechanically.")


if __name__ == "__main__":
    main()
