"""Figures 6-9 and 13: summarizing the opaque compositional subroutine
FSMP so the element loop parallelizes.

Runs the DYFESM benchmark's FSMP scenario through all three
configurations and prints who can parallelize the Figure-7 K loop.

Run:  python examples/fsmp_opaque.py
"""

from repro.experiments import run_all_configs
from repro.perfect import get_benchmark
from repro.runtime import INTEL_MAC, diff_test


def main() -> None:
    bench = get_benchmark("dyfesm")
    results = run_all_configs(bench)

    print("The Figure-7 element loop (DO K ... CALL FSMP(ID, IDE)):")
    print("-" * 64)
    for config, result in results.items():
        verdicts = [v for v in result.report.verdicts
                    if v.unit == "DYFESM" and v.var == "K"]
        for v in verdicts[:1]:
            state = "PARALLEL" if v.parallelized else \
                f"serial ({v.reason}: {v.detail})"
            print(f"  {config:14s} -> {state}")

    conv = results["conventional"].conventional_result
    fsmp = [s for s in conv.sites if s.callee == "FSMP"][0]
    print()
    print(f"Why conventional inlining skipped FSMP: {fsmp.reason!r} "
          f"(the paper's Section II-B1 exclusion)")

    print()
    print("Annotation configuration, verified end to end:")
    check = diff_test(results["annotation"].program, INTEL_MAC)
    print("  differential test:", check.explain())
    omp = results["annotation"]
    k = [v for v in omp.report.verdicts
         if v.unit == "DYFESM" and v.var == "K" and v.parallelized][0]
    print(f"  privatized temporaries: {', '.join(k.private)}")
    print("  (XY/WTDET/P are the paper's Figure 8-9 global temporary "
          "arrays,")
    print("   summarized as atomic values by the Figure-13 annotation)")


if __name__ == "__main__":
    main()
