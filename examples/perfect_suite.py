"""Run the full evaluation on one PERFECT substitute (or all of them).

Reproduces that benchmark's Table II row and Figure 20 bars, with the
runtime verification the paper performed by hand.

Run:  python examples/perfect_suite.py [BENCHMARK ...]
      python examples/perfect_suite.py DYFESM ARC2D
      python examples/perfect_suite.py --all
"""

import sys

from repro.experiments.figure20 import figure20_cells, render_figure20
from repro.experiments.table2 import render_table2, table2_row
from repro.perfect import benchmark_names, get_benchmark
from repro.runtime import INTEL_MAC, diff_test
from repro.experiments import run_all_configs


def run_one(name: str) -> None:
    bench = get_benchmark(name)
    print("#" * 70)
    print(f"# {bench.name}: {bench.description}")
    print("#" * 70)
    row = table2_row(bench)
    print(render_table2([row]))
    print()

    # runtime verification of the annotation configuration
    results = run_all_configs(bench)
    check = diff_test(results["annotation"].program, INTEL_MAC,
                      inputs=list(bench.inputs))
    print(f"runtime verification : {check.explain()}")
    print()
    print(render_figure20(figure20_cells(bench)))
    print()


def main() -> None:
    args = sys.argv[1:]
    if "--all" in args:
        names = benchmark_names()
    elif args:
        names = [a.upper() for a in args]
    else:
        names = ["DYFESM"]
    for name in names:
        run_one(name)


if __name__ == "__main__":
    main()
