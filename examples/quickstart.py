"""Quickstart: annotate one subroutine, parallelize, reverse-inline, run.

This walks the full Figure-15 pipeline on a tiny program whose hot loop
calls an opaque subroutine:

1. without help, the auto-parallelizer must keep the loop serial;
2. a three-line annotation summarizes the callee's side effects;
3. annotation-based inlining + parallelization + reverse inlining yields
   the original program plus one OpenMP directive;
4. the differential tester proves the parallel program equivalent, and
   the simulated 8-thread machine shows the speedup.

Run:  python examples/quickstart.py
"""

from repro.annotations import (AnnotationInliner, AnnotationRegistry,
                               ReverseInliner)
from repro.fortran.unparser import unparse
from repro.polaris import Polaris
from repro.program import Program
from repro.runtime import INTEL_MAC, Interpreter, diff_test

SOURCE = """
      PROGRAM QUICK
      COMMON /DATA/ A(200,64), ROW(64)
      DO 10 I = 1, 200
        CALL SMOOTH(I, 64)
   10 CONTINUE
      TOTAL = 0.0
      DO 20 I = 1, 200
        TOTAL = TOTAL + A(I,32)
   20 CONTINUE
      WRITE(6,*) TOTAL
      END
      SUBROUTINE SMOOTH(I, N)
      COMMON /DATA/ A(200,64), ROW(64)
      DO 5 J = 1, N
        ROW(J) = I*0.5 + J
    5 CONTINUE
      DO 6 J = 1, N
        A(I,J) = ROW(J)*0.25
    6 CONTINUE
      RETURN
      END
"""

# the developer's summary: SMOOTH scratches ROW, then writes row I of A
ANNOTATIONS = """
subroutine SMOOTH(I, N) {
  ROW = unknown(I, N);
  do (J = 1:N)
    A[I, J] = unknown(ROW, J);
}
"""


def main() -> None:
    registry = AnnotationRegistry.from_text(ANNOTATIONS)

    print("=" * 70)
    print("1. Without annotations: the call keeps the I loop serial")
    print("=" * 70)
    baseline = Program.from_source(SOURCE)
    report = Polaris().run(baseline)
    for v in report.verdicts:
        print("  ", v.describe())

    print()
    print("=" * 70)
    print("2-3. Annotation-based inlining -> Polaris -> reverse inlining")
    print("=" * 70)
    program = Program.from_source(SOURCE)
    AnnotationInliner(registry).run(program)
    report = Polaris().run(program)
    ReverseInliner(registry).run(program)
    for v in report.verdicts:
        print("  ", v.describe())
    print()
    print("Final program (the original source + OpenMP):")
    print(unparse(program.files[0]))

    print("=" * 70)
    print("4. Runtime verification and simulated speedup")
    print("=" * 70)
    check = diff_test(program, INTEL_MAC)
    print("  differential test:", check.explain())
    serial = Interpreter(program, honor_directives=False).run()
    parallel = Interpreter(program, machine=INTEL_MAC).run()
    print(f"  serial cost   : {serial.cost:12.0f} work units")
    print(f"  parallel cost : {parallel.cost:12.0f} work units "
          f"({INTEL_MAC.threads} threads)")
    print(f"  speedup       : {serial.cost / parallel.cost:.2f}x")


if __name__ == "__main__":
    main()
