"""Legacy setup shim.

The execution environment has no network and no `wheel` package, so the
PEP-517 editable-install path (which builds a wheel) is unavailable.  This
shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` (and
plain ``pip install -e .`` configured via setup.cfg) fall back to
``setup.py develop``, which needs only setuptools.
"""

from setuptools import setup

setup()
